"""SQL tokenizer.

Produces a flat token stream; keywords are case-insensitive, identifiers
keep their case, strings use single quotes with ``''`` escaping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

#: Keywords recognised by the parser (upper-cased).
KEYWORDS = frozenset(
    {"SELECT", "FROM", "WHERE", "AND", "IN", "BETWEEN", "AS", "NOT", "COUNT", "GROUP", "BY"}
)

#: Multi- and single-character operators/punctuation, longest first.
SYMBOLS = ("<>", "<=", ">=", "!=", "=", "<", ">", ",", "(", ")", ".", "*")


class SqlLexError(ValueError):
    """Raised on malformed SQL input."""


@dataclass(frozen=True)
class Token:
    """One lexical token: a kind tag, its value, and its source position."""

    kind: str  # "keyword" | "identifier" | "number" | "string" | "symbol" | "end"
    value: str
    position: int

    def matches(self, kind: str, value: str | None = None) -> bool:
        if self.kind != kind:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*, appending a terminating ``end`` token."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "'":
            start = index
            index += 1
            chunks: list[str] = []
            while True:
                if index >= length:
                    raise SqlLexError(f"unterminated string literal at {start}")
                if text[index] == "'":
                    if index + 1 < length and text[index + 1] == "'":
                        chunks.append("'")
                        index += 2
                        continue
                    index += 1
                    break
                chunks.append(text[index])
                index += 1
            tokens.append(Token("string", "".join(chunks), start))
            continue
        if char.isdigit() or (
            char in "+-" and index + 1 < length and text[index + 1].isdigit()
        ):
            start = index
            index += 1
            seen_dot = False
            while index < length and (text[index].isdigit() or (text[index] == "." and not seen_dot)):
                if text[index] == ".":
                    # A dot not followed by a digit belongs to qualification.
                    if index + 1 >= length or not text[index + 1].isdigit():
                        break
                    seen_dot = True
                index += 1
            tokens.append(Token("number", text[start:index], start))
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            word = text[start:index]
            if word.upper() in KEYWORDS:
                tokens.append(Token("keyword", word.upper(), start))
            else:
                tokens.append(Token("identifier", word, start))
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, index):
                tokens.append(Token("symbol", symbol, index))
                index += len(symbol)
                break
        else:
            raise SqlLexError(f"unexpected character {char!r} at position {index}")
    tokens.append(Token("end", "", length))
    return tokens
