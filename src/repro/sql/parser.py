"""Recursive-descent parser for the supported SQL subset.

Grammar (conjunctive, the paper's query class, plus COUNT/GROUP BY)::

    select    := SELECT ('*' | item (',' item)*)
                 FROM table_ref (',' table_ref)*
                 [WHERE predicate (AND predicate)*]
                 [GROUP BY column (',' column)*]
    item      := column | COUNT '(' '*' ')'        -- COUNT at most once
    table_ref := identifier [[AS] identifier]
    column    := identifier ['.' identifier]
    predicate := operand op operand
               | column [NOT] IN '(' literal (',' literal)* ')'
               | column BETWEEN literal AND literal
    operand   := column | literal
    op        := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
"""

from __future__ import annotations

from typing import Union

from repro.sql.ast import (
    BetweenPredicate,
    ColumnRef,
    Comparison,
    InPredicate,
    Literal,
    Predicate,
    SelectStatement,
    TableRef,
)
from repro.sql.lexer import Token, tokenize


class SqlParseError(ValueError):
    """Raised when the token stream does not match the grammar."""


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    # -- token plumbing -------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self.current
        self._index += 1
        return token

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.current
        if not token.matches(kind, value):
            wanted = value or kind
            raise SqlParseError(
                f"expected {wanted!r} at position {token.position}, "
                f"got {token.value!r}"
            )
        return self.advance()

    def accept(self, kind: str, value: str | None = None) -> bool:
        if self.current.matches(kind, value):
            self.advance()
            return True
        return False

    # -- grammar --------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        self.expect("keyword", "SELECT")
        columns: tuple[ColumnRef, ...]
        count_star = False
        if self.accept("symbol", "*"):
            columns = ()
        else:
            refs: list[ColumnRef] = []
            while True:
                if self.accept("keyword", "COUNT"):
                    if count_star:
                        raise SqlParseError("COUNT(*) may appear at most once")
                    self.expect("symbol", "(")
                    self.expect("symbol", "*")
                    self.expect("symbol", ")")
                    count_star = True
                else:
                    refs.append(self._column())
                if not self.accept("symbol", ","):
                    break
            columns = tuple(refs)

        self.expect("keyword", "FROM")
        tables = [self._table_ref()]
        while self.accept("symbol", ","):
            tables.append(self._table_ref())

        predicates: list[Predicate] = []
        if self.accept("keyword", "WHERE"):
            predicates.append(self._predicate())
            while self.accept("keyword", "AND"):
                predicates.append(self._predicate())

        group_by: tuple[ColumnRef, ...] = ()
        if self.accept("keyword", "GROUP"):
            self.expect("keyword", "BY")
            groups = [self._column()]
            while self.accept("symbol", ","):
                groups.append(self._column())
            group_by = tuple(groups)

        self.expect("end")
        bindings = [t.binding for t in tables]
        if len(set(bindings)) != len(bindings):
            raise SqlParseError(f"duplicate table bindings in FROM: {bindings}")
        if group_by and not columns and not count_star:
            raise SqlParseError(
                "GROUP BY requires an explicit column list (or COUNT(*))"
            )
        return SelectStatement(
            columns, tuple(tables), tuple(predicates), count_star, group_by
        )

    def _table_ref(self) -> TableRef:
        name = self.expect("identifier").value
        alias = None
        if self.accept("keyword", "AS"):
            alias = self.expect("identifier").value
        elif self.current.kind == "identifier":
            alias = self.advance().value
        return TableRef(name, alias)

    def _column(self) -> ColumnRef:
        first = self.expect("identifier").value
        if self.accept("symbol", "."):
            second = self.expect("identifier").value
            return ColumnRef(second, table=first)
        return ColumnRef(first)

    def _literal(self) -> Literal:
        token = self.current
        if token.kind == "number":
            self.advance()
            text = token.value
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "string":
            self.advance()
            return Literal(token.value)
        raise SqlParseError(
            f"expected a literal at position {token.position}, got {token.value!r}"
        )

    def _operand(self) -> Union[ColumnRef, Literal]:
        if self.current.kind == "identifier":
            return self._column()
        return self._literal()

    def _predicate(self) -> Predicate:
        if self.current.kind != "identifier":
            # Literal-first comparison, e.g. 5 < r.a
            left = self._literal()
            operator = self.expect("symbol").value
            right = self._operand()
            return Comparison(left, operator, right)

        column = self._column()
        if self.accept("keyword", "NOT"):
            self.expect("keyword", "IN")
            return self._in_predicate(column, negated=True)
        if self.accept("keyword", "IN"):
            return self._in_predicate(column, negated=False)
        if self.accept("keyword", "BETWEEN"):
            low = self._literal()
            self.expect("keyword", "AND")
            high = self._literal()
            return BetweenPredicate(column, low, high)
        operator_token = self.current
        if operator_token.kind != "symbol" or operator_token.value not in (
            "=", "<>", "!=", "<", "<=", ">", ">=",
        ):
            raise SqlParseError(
                f"expected a comparison operator at position "
                f"{operator_token.position}, got {operator_token.value!r}"
            )
        self.advance()
        right = self._operand()
        return Comparison(column, operator_token.value, right)

    def _in_predicate(self, column: ColumnRef, *, negated: bool) -> InPredicate:
        self.expect("symbol", "(")
        values = [self._literal()]
        while self.accept("symbol", ","):
            values.append(self._literal())
        self.expect("symbol", ")")
        return InPredicate(column, tuple(values), negated=negated)


def parse_select(sql: str) -> SelectStatement:
    """Parse one SELECT statement."""
    return _Parser(tokenize(sql)).parse_select()
