"""A small SQL front-end over the engine.

Supports the query class the paper studies — tree (function-free) equality
joins plus selections — through a conventional pipeline: lexer → recursive
descent parser → planner (histogram-backed estimation + DP join ordering)
→ execution.  The entry point is :class:`~repro.sql.database.Database`:

>>> db = Database()
>>> db.add(relation)                                # doctest: +SKIP
>>> db.analyze()                                    # doctest: +SKIP
>>> db.execute("SELECT * FROM r WHERE r.a = 3")     # doctest: +SKIP
"""

from __future__ import annotations

from repro.sql.ast import (
    BetweenPredicate,
    ColumnRef,
    Comparison,
    InPredicate,
    Literal,
    SelectStatement,
    TableRef,
)
from repro.sql.lexer import SqlLexError, Token, tokenize
from repro.sql.parser import SqlParseError, parse_select
from repro.sql.planner import PlannedQuery, SqlPlanError, plan_query
from repro.sql.database import Database

__all__ = [
    "BetweenPredicate",
    "ColumnRef",
    "Comparison",
    "InPredicate",
    "Literal",
    "SelectStatement",
    "TableRef",
    "SqlLexError",
    "Token",
    "tokenize",
    "SqlParseError",
    "parse_select",
    "PlannedQuery",
    "SqlPlanError",
    "plan_query",
    "Database",
]
