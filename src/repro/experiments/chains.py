"""Multi-join chain experiments — Figures 6 and 7 (Section 5.2).

For each query class (low / mixed / high skew) and each chain length, the
harness samples queries with random per-relation Zipf skews, builds one
histogram per relation *from its frequency set alone* (the practical regime
of Theorem 3.3), and averages the relative error ``E[|S − S'| / S]`` over
random arrangements of the frequency sets — the paper uses twenty
permutations.

The compared histograms are the trivial, v-optimal serial, and v-optimal
end-biased histograms: the paper notes the experiment "does not include any
actually optimal histogram" because per-query optimality would need the
joint-frequency matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.biased import v_opt_bias_hist
from repro.core.frequency import FrequencySet
from repro.core.histogram import Histogram
from repro.core.serial import v_optimal_serial_histogram
from repro.core.estimator import relative_error
from repro.experiments.config import ChainExperimentConfig
from repro.experiments.selfjoin import HistogramType
from repro.queries.chain import ChainQuery
from repro.queries.workload import QueryClass, sample_chain_query
from repro.util.rng import RandomSource, derive_rng
from repro.util.validation import ensure_positive_int

#: Histogram types compared in Figures 6-7.
CHAIN_HISTOGRAM_TYPES: tuple[HistogramType, ...] = (
    HistogramType.TRIVIAL,
    HistogramType.END_BIASED,
    HistogramType.SERIAL,
)


def _factory_for(histogram_type: HistogramType, buckets: int) -> Callable[[FrequencySet], Histogram]:
    """Per-relation histogram factory from a frequency set alone."""
    if histogram_type is HistogramType.TRIVIAL:
        return lambda fset: Histogram.single_bucket(fset.frequencies)
    if histogram_type is HistogramType.END_BIASED:
        return lambda fset: v_opt_bias_hist(
            fset.frequencies, min(buckets, fset.size)
        )
    if histogram_type is HistogramType.SERIAL:
        return lambda fset: v_optimal_serial_histogram(
            fset.frequencies, min(buckets, fset.size), method="dp"
        )
    raise ValueError(
        f"{histogram_type} buckets over the value order and cannot be built "
        "from a frequency set alone"
    )


def mean_relative_error(
    query: ChainQuery,
    histogram_type: HistogramType,
    buckets: int,
    *,
    permutations: int = 20,
    rng: RandomSource = None,
) -> float:
    """``E[|S − S'| / S]`` over random arrangements of one query's sets."""
    permutations = ensure_positive_int(permutations, "permutations")
    buckets = ensure_positive_int(buckets, "buckets")
    gen = derive_rng(rng)
    histograms = query.build_histograms(_factory_for(histogram_type, buckets))
    errors = np.empty(permutations)
    for t in range(permutations):
        arrangement = query.sample_arrangement(gen)
        exact = query.exact_size(arrangement)
        estimate = query.estimate_size(arrangement, histograms)
        errors[t] = relative_error(exact, estimate)
    return float(errors.mean())


@dataclass(frozen=True)
class ChainErrorPoint:
    """One point of Figure 6/7: mean relative error per histogram type."""

    parameter: float
    query_class: QueryClass
    errors: dict[HistogramType, float]

    def error(self, histogram_type: HistogramType) -> float:
        return self.errors[histogram_type]


def _sweep_chain(
    parameter_values: Sequence[int],
    num_joins_for,
    buckets_for,
    config: ChainExperimentConfig,
    classes: Sequence[QueryClass],
    types: Sequence[HistogramType],
) -> list[ChainErrorPoint]:
    points = []
    for query_class in classes:
        # Fresh, seeded stream per class so classes are comparable runs.
        gen = derive_rng(config.seed)
        for value in parameter_values:
            num_joins = num_joins_for(value)
            buckets = buckets_for(value)
            per_type = {t: 0.0 for t in types}
            for _ in range(config.queries_per_class):
                query = sample_chain_query(
                    num_joins,
                    query_class,
                    gen,
                    domain=config.domain,
                    total=config.total,
                )
                for histogram_type in types:
                    per_type[histogram_type] += mean_relative_error(
                        query,
                        histogram_type,
                        buckets,
                        permutations=config.permutations,
                        rng=gen,
                    )
            for histogram_type in types:
                per_type[histogram_type] /= config.queries_per_class
            points.append(ChainErrorPoint(float(value), query_class, per_type))
    return points


def sweep_joins(
    config: Optional[ChainExperimentConfig] = None,
    *,
    classes: Sequence[QueryClass] = tuple(QueryClass),
    types: Sequence[HistogramType] = CHAIN_HISTOGRAM_TYPES,
) -> list[ChainErrorPoint]:
    """Figure 6: mean relative error vs number of joins (β = 5)."""
    config = config or ChainExperimentConfig()
    return _sweep_chain(
        config.join_sweep,
        lambda n: int(n),
        lambda n: config.buckets,
        config,
        classes,
        types,
    )


def sweep_chain_buckets(
    config: Optional[ChainExperimentConfig] = None,
    *,
    classes: Sequence[QueryClass] = tuple(QueryClass),
    types: Sequence[HistogramType] = CHAIN_HISTOGRAM_TYPES,
) -> list[ChainErrorPoint]:
    """Figure 7: mean relative error vs number of buckets (five joins)."""
    config = config or ChainExperimentConfig()
    return _sweep_chain(
        config.bucket_sweep,
        lambda beta: config.num_joins,
        lambda beta: int(beta),
        config,
        classes,
        types,
    )
