"""Experiment harnesses regenerating every table and figure of the paper."""

from __future__ import annotations

from repro.experiments.config import (
    ChainExperimentConfig,
    SelfJoinExperimentConfig,
    TimingExperimentConfig,
)
from repro.experiments.selfjoin import (
    HistogramType,
    SigmaPoint,
    build_histogram,
    self_join_sigmas,
    sweep_buckets,
    sweep_domain_size,
    sweep_skew,
)
from repro.experiments.chains import (
    CHAIN_HISTOGRAM_TYPES,
    ChainErrorPoint,
    mean_relative_error,
    sweep_chain_buckets,
    sweep_joins,
)
from repro.experiments.timing import TimingRow, construction_timing_table, time_construction
from repro.experiments.arrangements import ArrangementStudy, optimal_biased_pair_study
from repro.experiments.planrank import (
    PLAN_RANK_KINDS,
    PlanRankResult,
    plan_ranking_study,
)
from repro.experiments.propagation import GrowthFit, fit_error_growth
from repro.experiments.trees import StarErrorPoint, sweep_star_leaves, tree_mean_relative_error
from repro.experiments.report import format_series, format_table, series_rows, write_csv

__all__ = [
    "ChainExperimentConfig",
    "SelfJoinExperimentConfig",
    "TimingExperimentConfig",
    "HistogramType",
    "SigmaPoint",
    "build_histogram",
    "self_join_sigmas",
    "sweep_buckets",
    "sweep_domain_size",
    "sweep_skew",
    "CHAIN_HISTOGRAM_TYPES",
    "ChainErrorPoint",
    "mean_relative_error",
    "sweep_chain_buckets",
    "sweep_joins",
    "TimingRow",
    "construction_timing_table",
    "time_construction",
    "ArrangementStudy",
    "optimal_biased_pair_study",
    "format_series",
    "format_table",
    "series_rows",
    "write_csv",
    "PLAN_RANK_KINDS",
    "PlanRankResult",
    "plan_ranking_study",
    "GrowthFit",
    "fit_error_growth",
    "StarErrorPoint",
    "sweep_star_leaves",
    "tree_mean_relative_error",
]
