"""Experiment configurations with the paper's default parameters.

Each figure/table of Section 5 is driven by one config dataclass; the
defaults encode the parameters stated in the paper, and the benchmark
harness scales *trial counts* (never the parameters themselves) where noted
to keep wall-clock reasonable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class SelfJoinExperimentConfig:
    """Parameters of the Figures 3-5 self-join σ experiments.

    The paper fixes the relation size at ``T = 1000`` ("provably no effect"),
    sweeps β in [1, 30] at ``M = 100, z = 1`` (Figure 3), M in [10, 200] at
    ``β = 5, z = 1`` (Figure 4), and z in [0, 4.5] at ``β = 5, M = 100``
    (Figure 5).  *trials* controls the Monte-Carlo averaging of the
    arrangement-dependent equi-width/equi-depth histograms.
    """

    total: float = 1000.0
    domain_size: int = 100
    z: float = 1.0
    buckets: int = 5
    bucket_sweep: tuple[int, ...] = tuple(range(1, 31))
    serial_bucket_limit: int = 30
    domain_sweep: tuple[int, ...] = (10, 20, 30, 40, 50, 75, 100, 150, 200)
    z_sweep: tuple[float, ...] = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5)
    trials: int = 50
    seed: int = 1995


@dataclass(frozen=True)
class ChainExperimentConfig:
    """Parameters of the Figures 6-7 multi-join experiments.

    The paper uses β = 5 when sweeping joins, 5 joins when sweeping β,
    join domains of 10 values (interior frequency sets of 100 entries),
    and averages the relative error over twenty random arrangements of the
    frequency sets.
    """

    domain: int = 10
    total: float = 1000.0
    buckets: int = 5
    join_sweep: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)
    bucket_sweep: tuple[int, ...] = (1, 2, 3, 5, 10, 15, 20, 30)
    num_joins: int = 5
    permutations: int = 20
    queries_per_class: int = 5
    seed: int = 1995


@dataclass(frozen=True)
class TimingExperimentConfig:
    """Parameters of the Table 1 construction-cost experiment.

    The exhaustive V-OptHist sizes are small because its cost is
    ``C(M−1, β−1)`` — the very blow-up the table demonstrates; the paper
    likewise could not report large serial configurations.  End-biased sizes
    follow the paper's 100 .. 1M sweep.
    """

    serial_sizes: tuple[int, ...] = (10, 15, 20, 25, 30)
    serial_buckets: tuple[int, ...] = (3, 5)
    end_biased_sizes: tuple[int, ...] = (100, 1_000, 10_000, 100_000, 1_000_000)
    end_biased_buckets: int = 10
    z: float = 1.0
    total: float = 1_000_000.0
    repeats: int = 3
    seed: int = 1995
