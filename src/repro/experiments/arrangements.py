"""Arrangement study — the Section 3.1 experiment on non-extreme cases.

Theorem 3.1 covers extreme (size-maximising) arrangements only.  The paper
reports an experiment on arbitrary arrangements of two Zipf frequency sets
under a two-way join: searching all *biased* histogram pairs for the one
minimising ``|S − S'|`` with full knowledge of the arrangement, they find
that "in approximately 90% of all arrangements ... at least one of the two
histograms [is] end-biased" and "in about 20% ... both histograms are
end-biased", with the optimal pair usually placing the same domain values
in the univalued buckets.

:func:`optimal_biased_pair_study` reruns that experiment: it enumerates (or
samples) relative arrangements, solves each one exactly by enumerating all
``C(M, β−1)²`` biased pairs, and reports the three fractions.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, permutations
from typing import Optional, Sequence

import numpy as np

from repro.core.frequency import FrequencyLike, as_frequency_array
from repro.core.histogram import Histogram
from repro.util.rng import RandomSource, derive_rng
from repro.util.validation import ensure_positive_int


@dataclass(frozen=True)
class _BiasedCandidates:
    """All biased histograms of one frequency vector, precomputed."""

    singleton_sets: list[frozenset[int]]
    approximations: np.ndarray  # (candidates, M)
    end_biased: np.ndarray  # (candidates,) bool


def _biased_candidates(frequencies: np.ndarray, buckets: int) -> _BiasedCandidates:
    size = frequencies.size
    singles = buckets - 1
    singleton_sets = []
    approx_rows = []
    end_flags = []
    for chosen in combinations(range(size), singles):
        chosen_set = frozenset(chosen)
        rest = [i for i in range(size) if i not in chosen_set]
        approx = frequencies.astype(float).copy()
        approx[rest] = frequencies[rest].mean()
        groups = [(i,) for i in chosen] + [tuple(rest)]
        hist = Histogram(frequencies, groups, kind="biased")
        singleton_sets.append(chosen_set)
        approx_rows.append(approx)
        end_flags.append(hist.is_end_biased())
    return _BiasedCandidates(
        singleton_sets, np.array(approx_rows), np.array(end_flags, dtype=bool)
    )


@dataclass(frozen=True)
class ArrangementStudy:
    """Outcome of the Section 3.1 arrangement experiment."""

    arrangements: int
    at_least_one_end_biased: float
    both_end_biased: float
    aligned_singletons: float

    def __str__(self) -> str:
        return (
            f"arrangements={self.arrangements}  "
            f">=1 end-biased: {self.at_least_one_end_biased:.1%}  "
            f"both end-biased: {self.both_end_biased:.1%}  "
            f"aligned singletons: {self.aligned_singletons:.1%}"
        )


def optimal_biased_pair_study(
    freqs_left: FrequencyLike,
    freqs_right: FrequencyLike,
    buckets: int,
    *,
    max_arrangements: Optional[int] = None,
    rng: RandomSource = None,
    tie_tolerance: float = 1e-9,
) -> ArrangementStudy:
    """Solve every arrangement for its optimal biased histogram pair.

    Enumerates all relative permutations when the domain is small enough
    (and *max_arrangements* is ``None`` or not exceeded), otherwise samples
    *max_arrangements* random permutations.  For each arrangement, all
    biased pairs are scored by ``|S − S'|`` and a property counts as
    satisfied when **some** minimising pair satisfies it (ties are rare but
    possible with symmetric frequency sets).
    """
    a = as_frequency_array(freqs_left)
    b = as_frequency_array(freqs_right)
    if a.size != b.size:
        raise ValueError(f"join-domain sizes must match, got {a.size} and {b.size}")
    buckets = ensure_positive_int(buckets, "buckets")
    if buckets < 2 or buckets > a.size:
        raise ValueError(
            f"buckets must lie in [2, {a.size}] for a biased histogram, got {buckets}"
        )

    left = _biased_candidates(a, buckets)
    right = _biased_candidates(b, buckets)

    size = a.size
    import math

    total_perms = math.factorial(size)
    if max_arrangements is None or total_perms <= max_arrangements:
        taus = [np.array(p) for p in permutations(range(size))]
    else:
        gen = derive_rng(rng)
        taus = [gen.permutation(size) for _ in range(max_arrangements)]

    one_end = 0
    both_end = 0
    aligned = 0
    for tau in taus:
        exact = float(np.dot(a, b[tau]))
        # estimates[i, j] = approx_left[i] . approx_right[j][tau]
        estimates = left.approximations @ right.approximations[:, tau].T
        errors = np.abs(estimates - exact)
        best = errors.min()
        winners = np.argwhere(errors <= best + tie_tolerance)
        saw_one = saw_both = saw_aligned = False
        for i, j in winners:
            li_end = bool(left.end_biased[i])
            rj_end = bool(right.end_biased[j])
            saw_one = saw_one or li_end or rj_end
            saw_both = saw_both or (li_end and rj_end)
            mapped = frozenset(int(tau[k]) for k in left.singleton_sets[i])
            saw_aligned = saw_aligned or (mapped == right.singleton_sets[j])
            if saw_one and saw_both and saw_aligned:
                break
        one_end += saw_one
        both_end += saw_both
        aligned += saw_aligned

    count = len(taus)
    return ArrangementStudy(
        arrangements=count,
        at_least_one_end_biased=one_end / count,
        both_end_biased=both_end / count,
        aligned_singletons=aligned / count,
    )
