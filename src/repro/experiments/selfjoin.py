"""Self-join σ experiments — Figures 3, 4, and 5 (Section 5.1).

The five histogram types of the paper are compared on self-join queries:
σ = sqrt(E[(S − S')²]) where S is the exact self-join size of a Zipf
frequency set and S' the estimate through each histogram.

For the *frequency-based* types (trivial, optimal serial, optimal
end-biased) the error is arrangement-independent and given in closed form by
Proposition 3.1.  For equi-width and equi-depth — which bucket over the
natural value order — the paper assumes "no correlation between the natural
ordering of the domain values and the ordering of their frequencies", so σ
is averaged over random value↔frequency associations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.biased import v_opt_bias_hist
from repro.core.frequency import AttributeDistribution, FrequencyLike, as_frequency_array
from repro.core.heuristic import equi_depth_histogram, equi_width_histogram, trivial_histogram
from repro.core.histogram import Histogram
from repro.core.serial import v_optimal_serial_histogram
from repro.data.zipf import zipf_frequencies
from repro.experiments.config import SelfJoinExperimentConfig
from repro.util.rng import RandomSource, derive_rng
from repro.util.validation import ensure_positive_int


class HistogramType(enum.Enum):
    """The five histogram types compared in Section 5.1."""

    TRIVIAL = "trivial"
    EQUI_WIDTH = "equi-width"
    EQUI_DEPTH = "equi-depth"
    END_BIASED = "end-biased"
    SERIAL = "serial"

    @property
    def arrangement_dependent(self) -> bool:
        """True for histograms bucketing over the natural value order."""
        return self in (HistogramType.EQUI_WIDTH, HistogramType.EQUI_DEPTH)


ALL_TYPES: tuple[HistogramType, ...] = tuple(HistogramType)


def build_histogram(
    histogram_type: HistogramType,
    distribution: AttributeDistribution,
    buckets: int,
    *,
    serial_method: str = "dp",
) -> Histogram:
    """Build one histogram of *histogram_type* over *distribution*.

    ``serial_method`` selects the V-OptHist implementation; the figure
    sweeps default to the dynamic program because the exhaustive search is
    exponential (the paper could only plot the serial curve to β = 5 for
    the same reason).
    """
    buckets = ensure_positive_int(buckets, "buckets")
    if histogram_type is HistogramType.TRIVIAL:
        return trivial_histogram(distribution)
    if histogram_type is HistogramType.EQUI_WIDTH:
        return equi_width_histogram(distribution, buckets)
    if histogram_type is HistogramType.EQUI_DEPTH:
        return equi_depth_histogram(distribution, buckets)
    if histogram_type is HistogramType.END_BIASED:
        return v_opt_bias_hist(distribution.frequencies, buckets, values=distribution.values)
    if histogram_type is HistogramType.SERIAL:
        return v_optimal_serial_histogram(
            distribution.frequencies, buckets, values=distribution.values, method=serial_method
        )
    raise ValueError(f"unknown histogram type {histogram_type!r}")


def self_join_sigmas(
    frequencies: FrequencyLike,
    buckets: int,
    *,
    types: Sequence[HistogramType] = ALL_TYPES,
    trials: int = 50,
    rng: RandomSource = None,
    serial_method: str = "dp",
) -> dict[HistogramType, float]:
    """σ of each histogram type for the self-join of one frequency set."""
    freqs = as_frequency_array(frequencies)
    buckets = ensure_positive_int(buckets, "buckets")
    trials = ensure_positive_int(trials, "trials")
    gen = derive_rng(rng)
    exact = float(np.dot(freqs, freqs))
    base = AttributeDistribution(range(freqs.size), freqs)

    sigmas: dict[HistogramType, float] = {}
    for histogram_type in types:
        if buckets > freqs.size:
            sigmas[histogram_type] = float("nan")
            continue
        if histogram_type.arrangement_dependent:
            squared = np.empty(trials)
            for t in range(trials):
                arrangement = base.permuted(gen)
                hist = build_histogram(histogram_type, arrangement, buckets)
                approx = hist.approximate_frequencies()
                squared[t] = (exact - float(np.dot(approx, approx))) ** 2
            sigmas[histogram_type] = float(np.sqrt(squared.mean()))
        else:
            hist = build_histogram(
                histogram_type, base, buckets, serial_method=serial_method
            )
            # Deterministic: σ equals the absolute error of Proposition 3.1.
            sigmas[histogram_type] = abs(exact - hist.self_join_estimate())
    return sigmas


@dataclass(frozen=True)
class SigmaPoint:
    """One x-axis point of a σ sweep: parameter value and per-type σ."""

    parameter: float
    sigmas: dict[HistogramType, float]

    def sigma(self, histogram_type: HistogramType) -> float:
        return self.sigmas[histogram_type]


def _sweep(
    parameter_values: Sequence[float],
    frequencies_for,
    buckets_for,
    config: SelfJoinExperimentConfig,
    types: Sequence[HistogramType],
) -> list[SigmaPoint]:
    gen = derive_rng(config.seed)
    points = []
    for value in parameter_values:
        freqs = frequencies_for(value)
        buckets = buckets_for(value)
        active_types = [
            t
            for t in types
            if not (
                t is HistogramType.SERIAL and buckets > config.serial_bucket_limit
            )
        ]
        sigmas = self_join_sigmas(
            freqs,
            buckets,
            types=active_types,
            trials=config.trials,
            rng=gen,
        )
        points.append(SigmaPoint(float(value), sigmas))
    return points


def sweep_buckets(
    config: Optional[SelfJoinExperimentConfig] = None,
    *,
    types: Sequence[HistogramType] = ALL_TYPES,
) -> list[SigmaPoint]:
    """Figure 3: σ as a function of the number of buckets (M = 100, z = 1)."""
    config = config or SelfJoinExperimentConfig()
    freqs = zipf_frequencies(config.total, config.domain_size, config.z)
    return _sweep(
        config.bucket_sweep,
        lambda beta: freqs,
        lambda beta: int(beta),
        config,
        types,
    )


def sweep_domain_size(
    config: Optional[SelfJoinExperimentConfig] = None,
    *,
    types: Sequence[HistogramType] = ALL_TYPES,
) -> list[SigmaPoint]:
    """Figure 4: σ as a function of the join-domain size (β = 5, z = 1)."""
    config = config or SelfJoinExperimentConfig()
    return _sweep(
        config.domain_sweep,
        lambda m: zipf_frequencies(config.total, int(m), config.z),
        lambda m: config.buckets,
        config,
        types,
    )


def sweep_skew(
    config: Optional[SelfJoinExperimentConfig] = None,
    *,
    types: Sequence[HistogramType] = ALL_TYPES,
) -> list[SigmaPoint]:
    """Figure 5: σ as a function of the Zipf skew z (β = 5, M = 100)."""
    config = config or SelfJoinExperimentConfig()
    return _sweep(
        config.z_sweep,
        lambda z: zipf_frequencies(config.total, config.domain_size, float(z)),
        lambda z: config.buckets,
        config,
        types,
    )
