"""Plan-ranking study — the paper's closing open question.

"The one on top of our list deals with identifying optimal histograms for
... different parameters of interest (e.g., operator cost or ranking of
alternative access plans, which determines the final decision of the
optimizer)."  This experiment measures, for each histogram kind, how well
the *ranking* of all alternative plans by estimated cost agrees with their
ranking by true cost:

* **hit rate** — how often the estimated-best plan is the true-best plan;
* **regret** — true cost of the chosen plan over the true optimum;
* **rank correlation** (Spearman) between estimated and true plan costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.relation import Relation
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.enumeration import enumerate_plans
from repro.optimizer.joinorder import JoinEdge, JoinGraph
from repro.optimizer.truth import CountedTruth
from repro.util.rng import RandomSource, derive_rng
from repro.util.validation import ensure_positive_int

#: Histogram kinds compared by the study.
PLAN_RANK_KINDS = ("trivial", "equi-depth", "end-biased", "serial")


@dataclass(frozen=True)
class PlanRankResult:
    """Aggregate ranking quality of one histogram kind."""

    kind: str
    databases: int
    plans_per_database: float
    hit_rate: float
    mean_regret: float
    mean_rank_correlation: float


def _random_chain_database(
    rng, domain: int, cardinalities: Sequence[int], *, correlated: bool = False
) -> JoinGraph:
    """A chain of ``len(cardinalities)`` relations with Zipf join columns.

    Relation ``R_j`` joins ``R_{j+1}`` on attribute ``a{j}``; interior
    relations carry two independently generated join columns.  With
    *correlated*, hot values share identities across every join (value 0 is
    hottest everywhere) — the adversarial-but-realistic case where skew
    compounds and the expected-value unbiasedness of Theorem 3.2 no longer
    rescues weak histograms.
    """

    def zipf_column(total, z):
        freqs = quantize_to_integers(zipf_frequencies(total, domain, z))
        column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
        if not correlated:
            rng.shuffle(column)
        return column

    z_choices = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0)

    def z():
        return float(z_choices[rng.integers(0, len(z_choices))])

    count = len(cardinalities)
    if count < 2:
        raise ValueError("a chain database needs at least two relations")
    relations = []
    for position, rows in enumerate(cardinalities):
        columns = {}
        if position > 0:
            columns[f"a{position - 1}"] = zipf_column(rows, z())
        if position < count - 1:
            columns[f"a{position}"] = zipf_column(rows, z())
        relations.append(Relation.from_columns(f"R{position}", columns))
    edges = [
        JoinEdge(f"R{j}", f"a{j}", f"R{j + 1}", f"a{j}") for j in range(count - 1)
    ]
    return JoinGraph(relations, edges)


def plan_ranking_study(
    *,
    databases: int = 10,
    domain: int = 8,
    cardinalities: Sequence[int] = (250, 200, 220, 180),
    buckets: int = 6,
    kinds: Sequence[str] = PLAN_RANK_KINDS,
    correlated: bool = False,
    rng: RandomSource = None,
) -> list[PlanRankResult]:
    """Run the plan-ranking study over several random databases."""
    databases = ensure_positive_int(databases, "databases")
    gen = derive_rng(rng)
    cost_model = CostModel()

    per_kind = {
        kind: {"hits": 0, "regret": [], "rho": [], "plans": []} for kind in kinds
    }
    for _ in range(databases):
        # Jitter cardinalities per database so plan rankings actually vary.
        jittered = [
            max(20, int(c * gen.uniform(0.3, 2.0))) for c in cardinalities
        ]
        graph = _random_chain_database(gen, domain, jittered, correlated=correlated)

        # True cost of every plan shape is estimator-independent, so compute
        # it once per database from any enumeration (plan structure only).
        reference_catalog = StatsCatalog()
        for relation in graph.relations.values():
            for attr in relation.schema.names:
                analyze_relation(
                    relation, attr, reference_catalog, kind="trivial", buckets=buckets
                )
        reference_plans = enumerate_plans(
            graph, CardinalityEstimator(reference_catalog)
        )
        truth = CountedTruth(graph)
        true_costs = {}
        for plan in reference_plans:
            sizes = truth.plan_rows(plan)
            true_costs[_shape_key(plan)] = cost_model.plan_cost(
                plan, row_source=lambda node: sizes[node]
            )
        best_true = min(true_costs.values())

        for kind in kinds:
            catalog = StatsCatalog()
            for relation in graph.relations.values():
                for attr in relation.schema.names:
                    analyze_relation(relation, attr, catalog, kind=kind, buckets=buckets)
            plans = enumerate_plans(graph, CardinalityEstimator(catalog))
            estimated = {
                _shape_key(plan): cost_model.plan_cost(plan) for plan in plans
            }
            # Align plan shapes between enumerations.
            shapes = sorted(estimated)
            est_vector = [estimated[s] for s in shapes]
            true_vector = [true_costs[s] for s in shapes]
            chosen = min(shapes, key=lambda s: estimated[s])
            stats_for_kind = per_kind[kind]
            stats_for_kind["plans"].append(len(shapes))
            stats_for_kind["hits"] += true_costs[chosen] <= best_true * (1 + 1e-9)
            stats_for_kind["regret"].append(true_costs[chosen] / best_true)
            if len(shapes) > 1 and np.std(est_vector) > 0 and np.std(true_vector) > 0:
                rho = stats.spearmanr(est_vector, true_vector).statistic
                stats_for_kind["rho"].append(float(rho))

    results = []
    for kind in kinds:
        data = per_kind[kind]
        results.append(
            PlanRankResult(
                kind=kind,
                databases=databases,
                plans_per_database=float(np.mean(data["plans"])),
                hit_rate=data["hits"] / databases,
                mean_regret=float(np.mean(data["regret"])),
                mean_rank_correlation=(
                    float(np.mean(data["rho"])) if data["rho"] else float("nan")
                ),
            )
        )
    return results


def _shape_key(plan) -> tuple:
    """Structural identity of a plan (ignores estimated cardinalities)."""
    from repro.optimizer.plans import JoinPlan, ScanPlan

    if isinstance(plan, ScanPlan):
        return ("scan", plan.relation)
    if isinstance(plan, JoinPlan):
        left = _shape_key(plan.left)
        right = _shape_key(plan.right)
        # Join output is orientation-independent for cost purposes here, so
        # canonicalise both the children and the attribute pair.
        ordered = tuple(sorted((left, right)))
        attrs = tuple(sorted((plan.left_attribute, plan.right_attribute)))
        return ("join",) + attrs + ordered
    raise TypeError(f"unknown plan node {type(plan).__name__}")
