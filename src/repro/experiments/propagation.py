"""Error-propagation analysis over chain length.

The paper motivates itself with Ioannidis & Christodoulakis (SIGMOD 1991):
"errors in query result size estimates may increase exponentially with the
number of joins".  This module quantifies that statement on the Figure 6
data: it fits ``log(error) ≈ a + g·joins`` per histogram type and query
class, so the per-join error *growth factor* ``e^g`` can be reported and
compared — the practical payoff of better histograms is a smaller base of
the exponential.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.experiments.chains import ChainErrorPoint
from repro.experiments.selfjoin import HistogramType
from repro.queries.workload import QueryClass


@dataclass(frozen=True)
class GrowthFit:
    """Exponential-growth fit of error vs number of joins."""

    query_class: QueryClass
    histogram_type: HistogramType
    growth_factor: float  # multiplicative error growth per extra join
    r_squared: float
    points_used: int


def fit_error_growth(
    points: Sequence[ChainErrorPoint],
    *,
    min_error: float = 1e-12,
) -> list[GrowthFit]:
    """Fit per-(class, type) exponential growth to Figure 6 sweep output.

    Points with error below *min_error* are dropped (log-undefined); a fit
    needs at least three surviving points.
    """
    fits: list[GrowthFit] = []
    classes = sorted({p.query_class for p in points}, key=lambda c: c.value)
    for query_class in classes:
        class_points = [p for p in points if p.query_class is query_class]
        if not class_points:
            continue
        for histogram_type in class_points[0].errors:
            xs, ys = [], []
            for point in class_points:
                error = point.errors.get(histogram_type)
                if error is not None and error > min_error:
                    xs.append(point.parameter)
                    ys.append(np.log(error))
            if len(xs) < 3:
                continue
            xs_arr = np.asarray(xs)
            ys_arr = np.asarray(ys)
            slope, intercept = np.polyfit(xs_arr, ys_arr, 1)
            predicted = slope * xs_arr + intercept
            residual = float(np.sum((ys_arr - predicted) ** 2))
            total = float(np.sum((ys_arr - ys_arr.mean()) ** 2))
            r_squared = 1.0 - residual / total if total > 0 else 1.0
            fits.append(
                GrowthFit(
                    query_class=query_class,
                    histogram_type=histogram_type,
                    growth_factor=float(np.exp(slope)),
                    r_squared=r_squared,
                    points_used=len(xs),
                )
            )
    return fits
