"""Tree-query experiments: the paper's "straightforward" generalisation.

Extends the Section 5.2 methodology from chains to star queries — the
opposite extreme of tree shapes, where one hub relation participates in
every join and carries a high-dimensional frequency tensor.  The same
practical recipe applies: build each relation's v-optimal histogram from
its frequency set alone (Theorem 3.3's tensor analogue) and average the
relative error over random arrangements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.biased import v_opt_bias_hist
from repro.core.frequency import FrequencySet
from repro.core.histogram import Histogram
from repro.core.serial import v_optimal_serial_histogram
from repro.core.estimator import relative_error
from repro.experiments.selfjoin import HistogramType
from repro.queries.tree import TreeQuery, make_zipf_star
from repro.queries.workload import QueryClass
from repro.util.rng import RandomSource, derive_rng
from repro.util.validation import ensure_positive_int

#: Histogram types compared on tree queries (frequency-set-only builds).
TREE_HISTOGRAM_TYPES: tuple[HistogramType, ...] = (
    HistogramType.TRIVIAL,
    HistogramType.END_BIASED,
    HistogramType.SERIAL,
)


def _factory(histogram_type: HistogramType, buckets: int):
    if histogram_type is HistogramType.TRIVIAL:
        return lambda fset: Histogram.single_bucket(fset.frequencies)
    if histogram_type is HistogramType.END_BIASED:
        return lambda fset: v_opt_bias_hist(fset.frequencies, min(buckets, fset.size))
    if histogram_type is HistogramType.SERIAL:
        return lambda fset: v_optimal_serial_histogram(
            fset.frequencies, min(buckets, fset.size), method="dp"
        )
    raise ValueError(f"{histogram_type} cannot be built from a frequency set alone")


def tree_mean_relative_error(
    query: TreeQuery,
    histogram_type: HistogramType,
    buckets: int,
    *,
    permutations: int = 20,
    rng: RandomSource = None,
) -> float:
    """``E[|S − S'| / S]`` over random arrangements of a tree query."""
    permutations = ensure_positive_int(permutations, "permutations")
    gen = derive_rng(rng)
    histograms = query.build_histograms(_factory(histogram_type, buckets))
    errors = np.empty(permutations)
    for t in range(permutations):
        arrangement = query.sample_arrangement(gen)
        exact = query.exact_size(arrangement)
        estimate = query.estimate_size(arrangement, histograms)
        errors[t] = relative_error(exact, estimate)
    return float(errors.mean())


@dataclass(frozen=True)
class StarErrorPoint:
    """One point of the star sweep: leaves joined to the hub."""

    num_leaves: int
    query_class: QueryClass
    errors: dict[HistogramType, float]


def sweep_star_leaves(
    leaf_counts: Sequence[int] = (1, 2, 3, 4),
    *,
    classes: Sequence[QueryClass] = (QueryClass.LOW_SKEW, QueryClass.HIGH_SKEW),
    buckets: int = 5,
    domain: int = 5,
    total: float = 1000.0,
    permutations: int = 15,
    queries_per_class: int = 3,
    types: Sequence[HistogramType] = TREE_HISTOGRAM_TYPES,
    seed: int = 1995,
) -> list[StarErrorPoint]:
    """Mean relative error of star queries as the hub's degree grows.

    The hub's frequency set has ``domain**leaves`` entries, so its histogram
    compresses ever more cells into the same β buckets — the tensor
    analogue of Figure 6's error growth with query size.
    """
    points = []
    for query_class in classes:
        gen = derive_rng(seed)
        choices = query_class.z_choices
        for leaves in leaf_counts:
            per_type = {t: 0.0 for t in types}
            for _ in range(queries_per_class):
                z_values = [
                    float(choices[gen.integers(0, len(choices))])
                    for _ in range(leaves + 1)
                ]
                query = make_zipf_star(
                    leaves, domain=domain, total=total, z_values=z_values
                )
                for histogram_type in types:
                    per_type[histogram_type] += tree_mean_relative_error(
                        query,
                        histogram_type,
                        buckets,
                        permutations=permutations,
                        rng=gen,
                    )
            for histogram_type in types:
                per_type[histogram_type] /= queries_per_class
            points.append(StarErrorPoint(int(leaves), query_class, per_type))
    return points
