"""Construction-cost experiment — Table 1 (Section 4.3).

Times the optimal-histogram construction algorithms on Zipf frequency sets:
the exhaustive ``V-OptHist`` (cost ``C(M−1, β−1)``, exploding with both the
set cardinality and the bucket count) against the near-linear
``V-OptBiasHist``.  Absolute seconds differ from the paper's DEC ALPHA, but
the *shape* — drastic growth for serial, flat for end-biased — is a property
of the algorithms and reproduces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.biased import v_opt_bias_hist
from repro.core.serial import serial_partition_count, v_opt_hist_exhaustive
from repro.data.zipf import zipf_frequencies
from repro.experiments.config import TimingExperimentConfig
from repro.util.validation import ensure_positive_int


def time_construction(builder: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-*repeats* wall-clock seconds for one construction call."""
    repeats = ensure_positive_int(repeats, "repeats")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        builder()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass(frozen=True)
class TimingRow:
    """One Table 1 row: timings for a frequency-set cardinality.

    ``serial_seconds`` maps a serial bucket count to its exhaustive
    V-OptHist time (``None`` when the configuration was skipped as
    infeasible, as the paper also had to); ``end_biased_seconds`` is the
    V-OptBiasHist time.
    """

    set_size: int
    serial_seconds: dict[int, Optional[float]]
    end_biased_seconds: Optional[float]
    serial_partitions: dict[int, int]


def construction_timing_table(
    config: Optional[TimingExperimentConfig] = None,
    *,
    max_partitions: int = 5_000_000,
) -> list[TimingRow]:
    """Regenerate Table 1: construction cost of serial vs end-biased optima.

    Serial configurations whose partition count exceeds *max_partitions* are
    skipped (reported as ``None``) — the blow-up itself is the result.
    """
    config = config or TimingExperimentConfig()
    sizes = sorted(set(config.serial_sizes) | set(config.end_biased_sizes))
    rows = []
    for size in sizes:
        freqs = zipf_frequencies(config.total, size, config.z)
        serial_seconds: dict[int, Optional[float]] = {}
        serial_partitions: dict[int, int] = {}
        for beta in config.serial_buckets:
            partitions = serial_partition_count(size, beta)
            serial_partitions[beta] = partitions
            if size in config.serial_sizes and 0 < partitions <= max_partitions:
                serial_seconds[beta] = time_construction(
                    lambda f=freqs, b=beta: v_opt_hist_exhaustive(f, b),
                    config.repeats,
                )
            else:
                serial_seconds[beta] = None
        if size in config.end_biased_sizes:
            end_biased = time_construction(
                lambda f=freqs: v_opt_bias_hist(f, config.end_biased_buckets),
                config.repeats,
            )
        else:
            end_biased = None
        rows.append(TimingRow(size, serial_seconds, end_biased, serial_partitions))
    return rows
