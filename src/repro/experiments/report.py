"""Plain-text rendering of experiment results.

The benchmark harness prints every regenerated table/figure as an ASCII
table so the rows/series the paper reports can be read straight from the
benchmark log (and are captured in ``bench_output.txt``).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union


def _format_cell(value, width: int, precision: int) -> str:
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan".rjust(width)
        return f"{value:.{precision}f}".rjust(width)
    return str(value).rjust(width)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render *rows* under *headers* as a fixed-width ASCII table."""
    rows = [list(row) for row in rows]
    widths = [len(h) for h in headers]
    rendered_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        rendered = [_format_cell(cell, widths[i], precision) for i, cell in enumerate(row)]
        widths = [max(widths[i], len(rendered[i])) for i in range(len(headers))]
        rendered_rows.append(row)
    # Second pass with final widths.
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(
                _format_cell(cell, widths[i], precision) for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def write_csv(
    path: Union[str, Path],
    headers: Sequence[str],
    rows: Iterable[Sequence],
) -> Path:
    """Write *rows* under *headers* as CSV; ``None`` cells become empty.

    Lets the benchmark harness persist every regenerated table for external
    plotting alongside the ASCII rendering.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            row = list(row)
            if len(row) != len(headers):
                raise ValueError(
                    f"row has {len(row)} cells but there are {len(headers)} headers"
                )
            writer.writerow(["" if cell is None else cell for cell in row])
    return path


def series_rows(series: dict[str, dict[float, float]]) -> tuple[list[str], list[list]]:
    """Convert a named-series mapping into (headers, rows) for CSV export."""
    xs = sorted({x for points in series.values() for x in points})
    headers = ["x"] + list(series)
    rows = [[x] + [series[name].get(x) for name in series] for x in xs]
    return headers, rows


def format_series(
    x_label: str,
    series: dict[str, dict[float, float]],
    *,
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render named y-series over a shared x-axis as a table.

    *series* maps a series name to ``{x: y}``; missing points render as "-".
    """
    xs = sorted({x for points in series.values() for x in points})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row = [x] + [series[name].get(x) for name in series]
        rows.append(row)
    return format_table(headers, rows, precision=precision, title=title)
