"""The asynchronous client SDK flavor.

Same SDK as :mod:`repro.net.client` — same :class:`~repro.net.client.BatchCall`
core, same frames, same bit-identical answers — over asyncio streams::

    from repro.net import connect_async

    client = await connect_async("127.0.0.1", 9919, token="s3cret")
    try:
        estimates = await client.estimate_batch(probes)
    finally:
        await client.close()

or as an async context manager::

    async with AsyncEstimationClient(host, port, token=token) as client:
        async for start, chunk in client.stream_batch(probes):
            ...
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Callable, Optional, Sequence

import numpy as np

from repro.net import protocol
from repro.net.client import (
    DEFAULT_BACKOFF,
    DEFAULT_JITTER,
    DEFAULT_MAX_ELAPSED,
    DEFAULT_RETRIES,
    DEFAULT_TIMEOUT,
    AuthenticationError,
    BatchCall,
    ClientError,
    ConnectionFailedError,
    ProtocolError,
    RetrySchedule,
)
from repro.obs import tracing
from repro.obs.tracing import span
from repro.serve.service import Probe, ProbeTrace


class AsyncEstimationClient:
    """Asyncio SDK flavor; one instance owns one connection.

    Not safe for concurrent use from multiple tasks — frames of
    interleaved requests would interleave on one stream.  Create one
    client per task (the server handles many connections concurrently);
    that is also how the concurrency benchmark drives it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        token: Optional[str] = None,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        jitter: float = DEFAULT_JITTER,
        max_elapsed: Optional[float] = DEFAULT_MAX_ELAPSED,
        on_error: Optional[str] = None,
    ):
        self.host = host
        self.port = int(port)
        self.token = token
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.jitter = float(jitter)
        self.max_elapsed = max_elapsed
        #: Default ``on_error`` policy sent with every batch.
        self.on_error = on_error
        self.tenant: Optional[str] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._next_id = 1
        #: Negotiated wire schema (see the sync flavor's docstring).
        self._wire_version = protocol.WIRE_SCHEMA_VERSION

    @property
    def wire_version(self) -> int:
        """The negotiated wire schema version for this connection."""
        return self._wire_version

    # -- connection lifecycle ------------------------------------------

    @property
    def connected(self) -> bool:
        """True while a handshaken connection is held."""
        return self._writer is not None

    async def connect(self) -> "AsyncEstimationClient":
        """Open the connection and handshake; retried with backoff."""
        if self._writer is not None:
            return self
        failure: Optional[Exception] = None
        schedule = self._schedule()
        attempt = 0
        while True:
            try:
                await self._open_once()
                return self
            except AuthenticationError:
                raise
            except (OSError, asyncio.TimeoutError, ClientError) as exc:
                failure = exc
                await self._teardown()
                delay = schedule.next_delay(attempt)
                if delay is None:
                    break
                await asyncio.sleep(delay)
                attempt += 1
        raise ConnectionFailedError(
            f"could not connect to {self.host}:{self.port} after "
            f"{attempt + 1} attempts ({schedule.elapsed():.1f}s): {failure}"
        ) from failure

    def _schedule(self) -> RetrySchedule:
        return RetrySchedule(
            self.retries,
            self.backoff,
            jitter=self.jitter,
            max_elapsed=self.max_elapsed,
        )

    async def _open_once(self) -> None:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), timeout=self.timeout
        )
        self._reader, self._writer = reader, writer
        try:
            await self._send(
                protocol.hello_request(token=self.token, version=self._wire_version)
            )
            welcome = await self._recv_frame()
            protocol.check_version(welcome)
            if welcome.get("op") == "error":
                code = str(welcome.get("code", "error"))
                if code == protocol.REASON_AUTH_FAILED:
                    raise AuthenticationError(
                        f"server refused token: {welcome.get('detail', '')}"
                    )
                if (
                    code == "wire-version"
                    and self._wire_version > protocol.MIN_WIRE_SCHEMA_VERSION
                ):
                    # Older server: downgrade and redo the handshake.
                    self._wire_version = protocol.MIN_WIRE_SCHEMA_VERSION
                    await self._teardown()
                    await self._open_once()
                    return
                raise ProtocolError(f"handshake failed: {welcome}")
            if welcome.get("op") != "welcome":
                raise ProtocolError(
                    f"expected a welcome frame, got {welcome.get('op')!r}"
                )
            self.tenant = welcome.get("tenant")
        except BaseException:
            await self._teardown()
            raise

    async def _teardown(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def close(self) -> None:
        """Close the connection (reconnects transparently on next use)."""
        await self._teardown()

    async def __aenter__(self) -> "AsyncEstimationClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- wire helpers ---------------------------------------------------

    async def _send(self, obj: dict) -> None:
        assert self._writer is not None
        self._writer.write(protocol.encode_frame(obj))
        await self._writer.drain()

    async def _recv_frame(self) -> dict:
        assert self._reader is not None
        try:
            prefix = await asyncio.wait_for(
                self._reader.readexactly(4), timeout=self.timeout
            )
            length = protocol.read_frame_length(prefix)
            payload = await asyncio.wait_for(
                self._reader.readexactly(length), timeout=self.timeout
            )
        except asyncio.IncompleteReadError as exc:
            raise ConnectionFailedError("server closed the connection") from exc
        return protocol.decode_frame(payload)

    # -- operations -----------------------------------------------------

    async def ping(self) -> bool:
        """Round-trip a ping frame; True on pong."""
        await self.connect()
        await self._send(protocol.message("ping", version=self._wire_version))
        return (await self._recv_frame()).get("op") == "pong"

    async def estimate_batch(
        self,
        probes: Sequence[Probe],
        *,
        on_error: Optional[str] = None,
        trace: Optional[Callable[[ProbeTrace], None]] = None,
    ) -> np.ndarray:
        """Submit one batch; returns the assembled float64 vector.

        Same semantics (and same bits) as the sync flavor: idempotent
        resubmission on connection failure, :class:`RemoteBatchError`
        passed through untouched.
        """
        probes = list(probes)
        failure: Optional[Exception] = None
        schedule = self._schedule()
        attempt = 0
        # Detached span: concurrent tasks share this thread, so a
        # stack-based span would leak into sibling tasks' parentage.
        context = tracing.current_trace_context()
        if context is None:
            context = tracing.new_trace()
        with span(
            "net.client.batch",
            context=context,
            host=self.host,
            port=self.port,
            probes=len(probes),
        ) as client_span:
            while True:
                await self.connect()
                call = BatchCall(
                    probes,
                    request_id=self._take_id(),
                    on_error=on_error if on_error is not None else self.on_error,
                    trace=trace,
                    trace_context=client_span.context,
                    wire_version=self._wire_version,
                )
                try:
                    await self._send(call.request())
                    while not call.consume(await self._recv_frame()):
                        pass
                    return call.result()
                except (ConnectionFailedError, OSError, asyncio.TimeoutError) as exc:
                    failure = exc
                    await self._teardown()
                    delay = schedule.next_delay(attempt)
                    if delay is None:
                        break
                    await asyncio.sleep(delay)
                    attempt += 1
        raise ConnectionFailedError(
            f"batch submission to {self.host}:{self.port} failed after "
            f"{attempt + 1} attempts ({schedule.elapsed():.1f}s): {failure}"
        ) from failure

    async def stream_batch(
        self,
        probes: Sequence[Probe],
        *,
        on_error: Optional[str] = None,
        trace: Optional[Callable[[ProbeTrace], None]] = None,
    ) -> AsyncIterator[tuple[int, np.ndarray]]:
        """Yield ``(start, estimates_slice)`` chunks as they arrive.

        No mid-stream retry, matching the sync flavor: once chunks have
        been yielded the consumer owns partial state.
        """
        await self.connect()
        call = BatchCall(
            list(probes),
            request_id=self._take_id(),
            on_error=on_error if on_error is not None else self.on_error,
            trace=trace,
            # Matches the sync flavor: no client span around a generator,
            # but the stream joins the surrounding trace when one exists.
            trace_context=tracing.current_trace_context(),
            wire_version=self._wire_version,
        )
        try:
            await self._send(call.request())
            done = False
            while not done:
                frame = await self._recv_frame()
                done = call.consume(frame)
                chunk = protocol.decode_estimates(frame["estimates"])
                yield int(frame.get("start", 0)), chunk
        except (ConnectionFailedError, OSError, asyncio.TimeoutError):
            await self._teardown()
            raise

    def _take_id(self) -> int:
        request_id = self._next_id
        self._next_id += 1
        return request_id


async def connect_async(
    host: str,
    port: int,
    *,
    token: Optional[str] = None,
    timeout: float = DEFAULT_TIMEOUT,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF,
    jitter: float = DEFAULT_JITTER,
    max_elapsed: Optional[float] = DEFAULT_MAX_ELAPSED,
    on_error: Optional[str] = None,
) -> AsyncEstimationClient:
    """Connect an :class:`AsyncEstimationClient` (and handshake)."""
    client = AsyncEstimationClient(
        host,
        port,
        token=token,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        jitter=jitter,
        max_elapsed=max_elapsed,
        on_error=on_error,
    )
    return await client.connect()
