"""Network serving tier: the estimation service behind a real wire boundary.

The paper's practicality argument (Section 4) is that histogram cost is
paid at *construction*, not lookup — which makes the compiled serving
state of :class:`~repro.serve.EstimationService` cheap enough to put
behind a network protocol and share across processes and machines.  This
package is that boundary:

* :mod:`repro.net.protocol` — the **versioned wire schema**: every probe
  shape, trace record, and recovery report gains ``to_wire`` /
  ``from_wire`` codecs with a schema-version tag, NaN/±inf rejection at
  encode time, and tagged value encoding so non-numeric (and mixed)
  domains round-trip exactly.  Result vectors travel as raw float64
  bytes, so an answer served over the wire is **bit-identical** to the
  in-process answer.
* :mod:`repro.net.server` — an asyncio server speaking length-prefixed
  JSON frames (plus a one-shot HTTP/JSON shim on the same port) with
  per-tenant token auth, quota/backpressure admission that degrades
  per-probe through typed ``REASON_*`` reasons (never connection drops),
  and chunked streaming of large batch results.
* :mod:`repro.net.client` / :mod:`repro.net.aio` — the client SDK, sync
  and async flavors sharing one frame/assembly core: connect with
  retry-and-backoff, batch submit, streaming iteration, and surfaced
  degradation traces.

See ``docs/NETWORK.md`` for the wire schema spec, framing, auth/quota
semantics, and SDK quickstarts.
"""

from __future__ import annotations

from repro.net.aio import AsyncEstimationClient, connect_async
from repro.net.client import (
    AuthenticationError,
    ClientError,
    ConnectionFailedError,
    EstimationClient,
    ProtocolError,
    RemoteBatchError,
    RetrySchedule,
    connect,
)
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    MIN_WIRE_SCHEMA_VERSION,
    REASON_AUTH_FAILED,
    REASON_WIRE_DECODE,
    SUPPORTED_WIRE_VERSIONS,
    WIRE_SCHEMA_VERSION,
    FrameDecoder,
    WireCodecError,
    WireVersionError,
    decode_estimates,
    decode_frame,
    decode_value,
    encode_estimates,
    encode_frame,
    encode_value,
    probe_from_wire,
    probe_to_wire,
    probes_from_wire,
    probes_to_wire,
    recovery_report_from_wire,
    recovery_report_to_wire,
    trace_context_from_wire,
    trace_context_to_wire,
    trace_from_wire,
    trace_to_wire,
)
from repro.net.server import (
    DEFAULT_CHUNK_PROBES,
    EstimationServer,
    ReadinessCheck,
    ServerHandle,
    TenantConfig,
    agent_lease_check,
    serve_in_thread,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "MIN_WIRE_SCHEMA_VERSION",
    "REASON_AUTH_FAILED",
    "REASON_WIRE_DECODE",
    "SUPPORTED_WIRE_VERSIONS",
    "WIRE_SCHEMA_VERSION",
    "DEFAULT_CHUNK_PROBES",
    "ReadinessCheck",
    "agent_lease_check",
    "AsyncEstimationClient",
    "AuthenticationError",
    "ClientError",
    "ConnectionFailedError",
    "EstimationClient",
    "EstimationServer",
    "FrameDecoder",
    "ProtocolError",
    "RemoteBatchError",
    "RetrySchedule",
    "ServerHandle",
    "TenantConfig",
    "WireCodecError",
    "WireVersionError",
    "connect",
    "connect_async",
    "decode_estimates",
    "decode_frame",
    "decode_value",
    "encode_estimates",
    "encode_frame",
    "encode_value",
    "probe_from_wire",
    "probe_to_wire",
    "probes_from_wire",
    "probes_to_wire",
    "recovery_report_from_wire",
    "recovery_report_to_wire",
    "serve_in_thread",
    "trace_context_from_wire",
    "trace_context_to_wire",
    "trace_from_wire",
    "trace_to_wire",
]
