"""The versioned wire schema shared verbatim by the server and the SDK.

Serialization-first redesign of the probe API: every probe shape
(:class:`~repro.serve.EqualityProbe`, :class:`~repro.serve.RangeProbe`,
:class:`~repro.serve.JoinProbe`), the :class:`~repro.serve.ProbeTrace`
record, and the :class:`~repro.engine.persist.RecoveryReport` summary
gain ``to_wire`` / ``from_wire`` codecs here.  Both ends of the wire use
*these exact functions*, so an in-process answer and an over-the-wire
answer are built from identical probe objects — the foundation of the
bit-identity guarantee in ``docs/NETWORK.md``.

Design rules
------------

* **Versioned.** Every envelope carries ``{"v": WIRE_SCHEMA_VERSION}``;
  decoding a frame from a different major version raises
  :class:`WireVersionError` instead of guessing.
* **Lossless values.** JSON alone cannot round-trip Python probe values
  (it conflates ``1`` and ``1.0``, loses tuples, and cannot carry NaN).
  Values travel in a tagged encoding — plain JSON strings for the common
  string-domain case, ``{"t": <type>, "v": ...}`` otherwise — with
  floats as C99 hex literals (``float.hex``) so every finite float64
  round-trips bit-exactly.  Non-numeric and mixed domains (strings,
  bytes, tuples, ``None`` bounds) are first-class.
* **NaN/±inf rejected at encode.** A NaN probe value is almost always a
  data bug, and NaN never equals anything (the probe could only return
  0).  :func:`encode_value` raises :class:`WireCodecError` for
  non-finite floats so the mistake surfaces at the call site, not as a
  silent zero three machines away.
* **Bit-exact result vectors.** Estimate vectors are float64 and *may*
  legitimately contain NaN (the ``on_error="nan"`` policy), so they
  travel as base64 of the raw little-endian float64 buffer
  (:func:`encode_estimates`), never as JSON numbers.
* **Length-prefixed frames.** A frame is a 4-byte big-endian length
  followed by UTF-8 JSON (``allow_nan=False``).  :class:`FrameDecoder`
  reassembles frames incrementally from arbitrary byte chunks for the
  sync client; the asyncio side reads the prefix directly.
"""

from __future__ import annotations

import base64
import json
import struct
from typing import Any, Iterable, Optional, Sequence

import numpy as np

from repro.engine.persist import QuarantinedEntry, RecoveryReport
from repro.obs.tracing import TraceContext
from repro.serve.service import (
    EqualityProbe,
    JoinProbe,
    Probe,
    ProbeTrace,
    RangeProbe,
)

#: Current wire schema version.  Bump on any incompatible change to the
#: envelope, the probe encodings, or the value tagging.
#:
#: * v1 — framed protocol + HTTP shim, probe/value codecs, chunked
#:   streaming.
#: * v2 — adds the *optional* ``trace_context`` field on batch requests
#:   (framed and HTTP).  Responses are unchanged; a v2 speaker answers a
#:   v1 peer with v1-stamped frames, bit-identically to a v1 build.
WIRE_SCHEMA_VERSION = 2

#: Every wire schema version this build can speak.  A v2 server accepts
#: v1 hellos/requests (and mirrors the peer's version in its responses);
#: a v2 client downgrades to v1 when an old server refuses its hello.
SUPPORTED_WIRE_VERSIONS = frozenset({1, 2})

#: The lowest version still supported (the downgrade target).
MIN_WIRE_SCHEMA_VERSION = min(SUPPORTED_WIRE_VERSIONS)

#: First wire schema version that carries ``trace_context`` on batches.
TRACE_CONTEXT_MIN_VERSION = 2

#: Hard bound on one frame's JSON payload (16 MiB).  A length prefix
#: beyond this is treated as a protocol error — it is far more likely a
#: corrupt or non-protocol peer than a legitimate 16 MiB batch chunk.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Degradation reason for probes rejected by server-side admission
#: control before reaching the service (also see the service-level
#: ``REASON_QUOTA_EXCEEDED`` / ``REASON_BACKPRESSURE``).
REASON_AUTH_FAILED = "auth-failed"
#: Degradation reason for a probe entry that could not be decoded from
#: its wire form (the rest of the batch is still answered).
REASON_WIRE_DECODE = "wire-decode-failed"

_LENGTH = struct.Struct(">I")


class WireCodecError(ValueError):
    """A value, probe, or frame could not be encoded/decoded."""


class WireVersionError(WireCodecError):
    """The peer speaks a different wire schema version."""


# ---------------------------------------------------------------------------
# Tagged value codec
# ---------------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """Encode one probe value (or range bound) into its wire form.

    Strings pass through unchanged (the common non-numeric-domain case);
    every other supported type is tagged.  Raises :class:`WireCodecError`
    for NaN/±inf floats and for unsupported types.
    """
    if isinstance(value, str):
        return value
    if value is None:
        return {"t": "null"}
    # bool must precede int: isinstance(True, int) is True.
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    if isinstance(value, int):
        return {"t": "int", "v": str(value)}
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise WireCodecError(
                f"non-finite probe value {value!r} is not encodable; NaN/±inf "
                "never match stored data — fix the producer instead"
            )
        return {"t": "float", "v": value.hex()}
    if isinstance(value, (bytes, bytearray)):
        return {"t": "bytes", "v": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, tuple):
        return {"t": "tuple", "v": [encode_value(item) for item in value]}
    raise WireCodecError(
        f"probe values of type {type(value).__name__} have no wire encoding; "
        "supported: str, int, float, bool, bytes, tuple, None"
    )


def decode_value(wire: Any) -> Any:
    """Invert :func:`encode_value`; raises :class:`WireCodecError` on junk."""
    if isinstance(wire, str):
        return wire
    if not isinstance(wire, dict):
        raise WireCodecError(
            f"malformed wire value {wire!r}: expected a string or a tagged object"
        )
    tag = wire.get("t")
    if tag == "null":
        return None
    if tag == "bool":
        payload = wire.get("v")
        if not isinstance(payload, bool):
            raise WireCodecError(f"malformed bool wire value {wire!r}")
        return payload
    if tag == "int":
        try:
            return int(wire["v"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WireCodecError(f"malformed int wire value {wire!r}") from exc
    if tag == "float":
        try:
            return float.fromhex(wire["v"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WireCodecError(f"malformed float wire value {wire!r}") from exc
    if tag == "bytes":
        try:
            return base64.b64decode(wire["v"], validate=True)
        except (KeyError, TypeError, ValueError) as exc:
            raise WireCodecError(f"malformed bytes wire value {wire!r}") from exc
    if tag == "tuple":
        payload = wire.get("v")
        if not isinstance(payload, list):
            raise WireCodecError(f"malformed tuple wire value {wire!r}")
        return tuple(decode_value(item) for item in payload)
    raise WireCodecError(f"unknown wire value tag {tag!r}")


# ---------------------------------------------------------------------------
# Probe codecs
# ---------------------------------------------------------------------------

_PROBE_KINDS = ("equality", "range", "join")


def probe_to_wire(probe: Probe) -> dict:
    """One probe's wire form (no envelope; see :func:`probes_to_wire`)."""
    if isinstance(probe, EqualityProbe):
        return {
            "kind": "equality",
            "relation": probe.relation,
            "attribute": probe.attribute,
            "value": encode_value(probe.value),
        }
    if isinstance(probe, RangeProbe):
        return {
            "kind": "range",
            "relation": probe.relation,
            "attribute": probe.attribute,
            "low": encode_value(probe.low),
            "high": encode_value(probe.high),
            "include_low": probe.include_low,
            "include_high": probe.include_high,
        }
    if isinstance(probe, JoinProbe):
        return {
            "kind": "join",
            "left_relation": probe.left_relation,
            "left_attribute": probe.left_attribute,
            "right_relation": probe.right_relation,
            "right_attribute": probe.right_attribute,
        }
    raise WireCodecError(
        f"unsupported probe type {type(probe).__name__}; expected "
        "EqualityProbe, RangeProbe, or JoinProbe"
    )


def _require_str(wire: dict, field: str) -> str:
    value = wire.get(field)
    if not isinstance(value, str):
        raise WireCodecError(
            f"probe field {field!r} must be a string, got {value!r}"
        )
    return value


def probe_from_wire(wire: Any) -> Probe:
    """Rebuild one probe from its wire form."""
    if not isinstance(wire, dict):
        raise WireCodecError(f"malformed wire probe {wire!r}: expected an object")
    kind = wire.get("kind")
    if kind == "equality":
        return EqualityProbe(
            relation=_require_str(wire, "relation"),
            attribute=_require_str(wire, "attribute"),
            value=decode_value(wire.get("value", {"t": "null"})),
        )
    if kind == "range":
        include_low = wire.get("include_low", True)
        include_high = wire.get("include_high", True)
        if not isinstance(include_low, bool) or not isinstance(include_high, bool):
            raise WireCodecError(
                f"range probe inclusivity flags must be booleans, got "
                f"{include_low!r}/{include_high!r}"
            )
        return RangeProbe(
            relation=_require_str(wire, "relation"),
            attribute=_require_str(wire, "attribute"),
            low=decode_value(wire.get("low", {"t": "null"})),
            high=decode_value(wire.get("high", {"t": "null"})),
            include_low=include_low,
            include_high=include_high,
        )
    if kind == "join":
        return JoinProbe(
            left_relation=_require_str(wire, "left_relation"),
            left_attribute=_require_str(wire, "left_attribute"),
            right_relation=_require_str(wire, "right_relation"),
            right_attribute=_require_str(wire, "right_attribute"),
        )
    raise WireCodecError(
        f"unknown probe kind {kind!r}; expected one of {_PROBE_KINDS}"
    )


def probes_to_wire(probes: Iterable[Probe]) -> list[dict]:
    """Encode a probe sequence (the payload of a batch request)."""
    return [probe_to_wire(probe) for probe in probes]


def probes_from_wire(wire: Sequence[Any]) -> list[Probe]:
    """Decode a batch request payload; raises on the first bad entry.

    The server decodes entries individually instead (so one poisoned
    entry degrades alone); this strict form is for replayable artifacts
    (``repro serve-stats --probes-from``) where silence would hide bugs.
    """
    if not isinstance(wire, (list, tuple)):
        raise WireCodecError(
            f"probe list must be a JSON array, got {type(wire).__name__}"
        )
    return [probe_from_wire(item) for item in wire]


# ---------------------------------------------------------------------------
# Trace and recovery-report codecs
# ---------------------------------------------------------------------------


def trace_to_wire(trace: ProbeTrace) -> dict:
    """Wire form of one degradation/fallback trace record.

    The served ``value`` uses the same hex-float encoding as probe
    values but *allows* NaN (legitimate under ``on_error="nan"``) —
    ``float.hex`` round-trips it exactly.
    """
    if not isinstance(trace, ProbeTrace):
        raise WireCodecError(
            f"expected a ProbeTrace, got {type(trace).__name__}"
        )
    return {
        "kind": trace.kind,
        "relation": trace.relation,
        "attribute": trace.attribute,
        "reason": trace.reason,
        "value": float(trace.value).hex(),
        "degraded": trace.degraded,
        "position": trace.position,
    }


def trace_from_wire(wire: Any) -> ProbeTrace:
    """Rebuild one :class:`~repro.serve.ProbeTrace` from its wire form."""
    if not isinstance(wire, dict):
        raise WireCodecError(f"malformed wire trace {wire!r}")
    try:
        position = wire.get("position")
        if position is not None:
            position = int(position)
        attribute = wire.get("attribute")
        if attribute is not None and not isinstance(attribute, str):
            raise WireCodecError(f"malformed trace attribute {attribute!r}")
        return ProbeTrace(
            kind=str(wire["kind"]),
            relation=str(wire["relation"]),
            attribute=attribute,
            reason=str(wire["reason"]),
            value=float.fromhex(wire["value"]),
            degraded=bool(wire["degraded"]),
            position=position,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireCodecError(f"malformed wire trace {wire!r}") from exc


def recovery_report_to_wire(report: RecoveryReport) -> dict:
    """Summary wire form of a crash-recovery report.

    Carries everything :meth:`EstimationService.apply_recovery` consumes
    (the quarantine list and journal-replay counters) plus the health
    flags — **not** the recovered catalog itself, which stays with the
    process that owns the statistics directory.  This is how a serving
    node tells its peers (or an operator console) what recovery withheld.
    """
    if not isinstance(report, RecoveryReport):
        raise WireCodecError(
            f"expected a RecoveryReport, got {type(report).__name__}"
        )
    return {
        "v": WIRE_SCHEMA_VERSION,
        "snapshot_path": report.snapshot_path,
        "snapshot_found": report.snapshot_found,
        "snapshot_ok": report.snapshot_ok,
        "entries_loaded": report.entries_loaded,
        "quarantined": [
            {
                "relation": item.relation,
                "attribute": item.attribute,
                "reason": item.reason,
            }
            for item in report.quarantined
        ],
        "journal_path": report.journal_path,
        "journal_torn": report.journal_torn,
        "journal_replayed": report.journal_replayed,
        "journal_fenced": report.journal_fenced,
        "journal_orphaned": report.journal_orphaned,
        "journal_anomalies": report.journal_anomalies,
    }


def recovery_report_from_wire(wire: Any) -> RecoveryReport:
    """Rebuild a summary :class:`RecoveryReport` from its wire form.

    The attached catalog is a fresh empty :class:`StatsCatalog` — the
    wire form is a *summary*; feed the report to ``apply_recovery`` (which
    only reads the quarantine list and counters), not to serving.
    """
    from repro.engine.catalog import StatsCatalog

    if not isinstance(wire, dict):
        raise WireCodecError(f"malformed wire recovery report {wire!r}")
    check_version(wire)
    try:
        quarantined = [
            QuarantinedEntry(
                relation=item.get("relation"),
                attribute=item.get("attribute"),
                reason=str(item.get("reason", "unknown")),
            )
            for item in wire.get("quarantined", [])
        ]
        return RecoveryReport(
            catalog=StatsCatalog(),
            snapshot_path=str(wire["snapshot_path"]),
            snapshot_found=bool(wire.get("snapshot_found", True)),
            snapshot_ok=bool(wire.get("snapshot_ok", True)),
            entries_loaded=int(wire.get("entries_loaded", 0)),
            quarantined=quarantined,
            journal_path=wire.get("journal_path"),
            journal_torn=bool(wire.get("journal_torn", False)),
            journal_replayed=int(wire.get("journal_replayed", 0)),
            journal_fenced=int(wire.get("journal_fenced", 0)),
            journal_orphaned=int(wire.get("journal_orphaned", 0)),
            journal_anomalies=int(wire.get("journal_anomalies", 0)),
        )
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise WireCodecError(
            f"malformed wire recovery report {wire!r}"
        ) from exc


# ---------------------------------------------------------------------------
# Result-vector codec
# ---------------------------------------------------------------------------


def encode_estimates(estimates: np.ndarray) -> dict:
    """Base64 of the raw little-endian float64 buffer — bit-exact, NaN-safe."""
    array = np.ascontiguousarray(estimates, dtype="<f8")
    return {
        "dtype": "<f8",
        "n": int(array.size),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_estimates(wire: Any) -> np.ndarray:
    """Invert :func:`encode_estimates`."""
    if not isinstance(wire, dict) or wire.get("dtype") != "<f8":
        raise WireCodecError(f"malformed estimates payload {wire!r}")
    try:
        raw = base64.b64decode(wire["data"], validate=True)
        count = int(wire["n"])
    except (KeyError, TypeError, ValueError) as exc:
        raise WireCodecError(f"malformed estimates payload {wire!r}") from exc
    if len(raw) != count * 8:
        raise WireCodecError(
            f"estimates payload length mismatch: {len(raw)} bytes for n={count}"
        )
    return np.frombuffer(raw, dtype="<f8").astype(np.float64, copy=True)


# ---------------------------------------------------------------------------
# Envelopes and framing
# ---------------------------------------------------------------------------


def message(op: str, *, version: Optional[int] = None, **fields: Any) -> dict:
    """A protocol envelope: ``op`` plus the schema-version tag.

    *version* overrides the stamped schema version — how a v2 speaker
    answers a v1 peer with frames the old build accepts verbatim.
    """
    body = {"v": WIRE_SCHEMA_VERSION if version is None else int(version), "op": op}
    body.update(fields)
    return body


def check_version(wire: dict) -> int:
    """Raise :class:`WireVersionError` unless *wire* tags a supported version.

    Returns the (validated) version so callers can mirror it back.
    """
    version = wire.get("v")
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise WireVersionError(
            f"peer speaks wire schema version {version!r}, this build speaks "
            f"{sorted(SUPPORTED_WIRE_VERSIONS)}"
        )
    return int(version)


def trace_context_to_wire(context: TraceContext) -> dict:
    """The wire form of a trace context (v2+ ``trace_context`` field)."""
    body = {"trace_id": context.trace_id, "span_id": context.span_id}
    if not context.sampled:
        body["sampled"] = False
    return body


def trace_context_from_wire(wire: Any) -> Optional[TraceContext]:
    """Decode an optional ``trace_context`` field.

    ``None`` input means the peer sent no context (start a new trace) and
    maps to ``None``.  A malformed field raises :class:`WireCodecError`.
    """
    if wire is None:
        return None
    if not isinstance(wire, dict):
        raise WireCodecError(
            f"trace_context must be an object, got {type(wire).__name__}"
        )
    trace_id = wire.get("trace_id", "")
    span_id = wire.get("span_id", "")
    sampled = wire.get("sampled", True)
    if not isinstance(trace_id, str) or not trace_id:
        raise WireCodecError(
            f"trace_context.trace_id must be a non-empty string, got {trace_id!r}"
        )
    if not isinstance(span_id, str):
        raise WireCodecError(
            f"trace_context.span_id must be a string, got {span_id!r}"
        )
    if not isinstance(sampled, bool):
        raise WireCodecError(
            f"trace_context.sampled must be a boolean, got {sampled!r}"
        )
    return TraceContext(trace_id=trace_id, span_id=span_id, sampled=sampled)


def encode_frame(obj: dict) -> bytes:
    """Length-prefixed UTF-8 JSON frame (``allow_nan=False`` throughout)."""
    payload = json.dumps(
        obj, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise WireCodecError(
            f"frame payload of {len(payload)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES}); chunk the batch"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> dict:
    """Decode one frame *payload* (without the length prefix)."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireCodecError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise WireCodecError(
            f"frame payload must be a JSON object, got {type(obj).__name__}"
        )
    return obj


class FrameDecoder:
    """Incremental frame reassembly from arbitrary byte chunks.

    Feed it whatever ``recv`` returned; it yields every complete frame
    and buffers the rest.  Used by the sync client (the asyncio side
    reads exact lengths directly from the stream).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next incomplete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[dict]:
        """Absorb *data*; return every frame it completed, in order."""
        self._buffer.extend(data)
        frames: list[dict] = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                return frames
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise WireCodecError(
                    f"frame length prefix {length} exceeds MAX_FRAME_BYTES "
                    f"({MAX_FRAME_BYTES}); peer is not speaking this protocol"
                )
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                return frames
            payload = bytes(self._buffer[_LENGTH.size : end])
            del self._buffer[:end]
            frames.append(decode_frame(payload))


def read_frame_length(prefix: bytes) -> int:
    """Validate and unpack a 4-byte length prefix (asyncio read path)."""
    if len(prefix) != _LENGTH.size:
        raise WireCodecError(
            f"truncated frame length prefix ({len(prefix)} bytes)"
        )
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise WireCodecError(
            f"frame length prefix {length} exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES}); peer is not speaking this protocol"
        )
    return length


def batch_request(
    probes_wire: Sequence[dict],
    *,
    request_id: int,
    on_error: Optional[str] = None,
    want_traces: bool = False,
    trace_context: Optional[TraceContext] = None,
    version: Optional[int] = None,
) -> dict:
    """The batch-submit envelope both SDK flavors send.

    ``trace_context`` joins the request into an existing trace; it is
    only emitted at wire schema v2+ (and never as ``null`` — a request
    without a context simply omits the field, so v1 peers see the exact
    bytes a v1 build would send).
    """
    body = message(
        "batch",
        version=version,
        id=int(request_id),
        probes=list(probes_wire),
        traces=bool(want_traces),
    )
    if on_error is not None:
        body["on_error"] = on_error
    if trace_context is not None and (
        version is None or int(version) >= TRACE_CONTEXT_MIN_VERSION
    ):
        body["trace_context"] = trace_context_to_wire(trace_context)
    return body


def hello_request(
    *, token: Optional[str] = None, version: Optional[int] = None
) -> dict:
    """The connection-opening envelope (token auth happens here)."""
    body = message("hello", version=version)
    if token is not None:
        body["token"] = token
    return body
