"""The synchronous client SDK (and the core both SDK flavors share).

Usage::

    from repro.net import connect
    from repro.serve import EqualityProbe

    with connect("127.0.0.1", 9919, token="s3cret") as client:
        estimates = client.estimate_batch([EqualityProbe("R0", "a", 7)])

Both flavors — this module's :class:`EstimationClient` and
:class:`~repro.net.aio.AsyncEstimationClient` — are thin transports
around one sans-IO core (:class:`BatchCall`): the core builds request
frames, consumes response frames, reassembles streamed chunks into one
float64 vector, and surfaces degradation traces.  Keeping every protocol
decision in the shared core is what makes the two flavors answer
bit-identically.

Degradation reasons are *surfaced, never swallowed*: pass ``trace=`` to
receive decoded :class:`~repro.serve.ProbeTrace` records (including the
server-side admission rejections ``quota-exceeded`` / ``backpressure``),
exactly as an in-process ``estimate_batch(trace=...)`` caller would.

Retries: connection establishment and idempotent submissions retry with
exponential backoff (estimation is read-only, so resubmitting a batch
after a broken connection is always safe).  Each delay is jittered
(±``jitter`` multiplicatively) so a fleet of clients losing one server
does not reconnect in lockstep, and the whole retry loop is bounded by
``max_elapsed`` wall seconds — a slow network cannot stretch a handful
of retries into an unbounded stall.  Typed failures:
:class:`AuthenticationError` (bad token — not retried),
:class:`RemoteBatchError` (the server answered with a per-batch error,
e.g. ``on_error="raise"`` propagating — not retried),
:class:`ConnectionFailedError` (retries exhausted).
"""

from __future__ import annotations

import socket
import time
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from repro.net import protocol
from repro.obs import tracing
from repro.obs.tracing import TraceContext, span
from repro.serve.service import Probe, ProbeTrace

#: Default connect/read timeout (seconds).
DEFAULT_TIMEOUT = 30.0
#: Default number of *re*-tries after the first failed attempt.
DEFAULT_RETRIES = 3
#: First backoff delay; doubles per retry.
DEFAULT_BACKOFF = 0.05
#: Default multiplicative jitter applied to every backoff delay.
DEFAULT_JITTER = 0.25
#: Default cap on total wall time spent inside one retry loop (seconds).
DEFAULT_MAX_ELAPSED = 30.0


class ClientError(RuntimeError):
    """Base class of every SDK failure."""


class ConnectionFailedError(ClientError):
    """Could not reach the server (after the configured retries)."""


class AuthenticationError(ClientError):
    """The server refused our token; retrying would not help."""


class ProtocolError(ClientError):
    """The peer sent something outside the wire schema."""


class RemoteBatchError(ClientError):
    """The server answered the batch with a typed error frame.

    Carries the server-side exception type name in ``error_type`` (e.g.
    ``"KeyError"`` when ``on_error="raise"`` propagated an unknown
    relation).
    """

    def __init__(self, code: str, detail: str, error_type: Optional[str] = None):
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail
        self.error_type = error_type


def backoff_delays(retries: int, base: float) -> Iterator[float]:
    """The delay before each retry attempt: ``base * 2**k``."""
    for attempt in range(retries):
        yield base * (2.0**attempt)


class RetrySchedule:
    """One retry loop's delays: exponential, jittered, elapsed-capped.

    Construct one per operation (it anchors its elapsed budget at
    construction time), then ask :meth:`next_delay` before each retry:

    * ``base * 2**attempt`` gives the nominal delay;
    * the delay is multiplied by ``U[1 - jitter, 1 + jitter]`` so many
      clients recovering from the same outage spread their reconnects;
    * ``None`` is returned — retrying must stop — once the configured
      retries are spent **or** the total wall time since construction
      would exceed ``max_elapsed`` (the last delay is clamped to the
      remaining budget rather than overshooting it).

    *clock* and *rng* are injectable for deterministic tests; the clock
    only ever measures durations, so a monotonic source is the default.
    """

    def __init__(
        self,
        retries: int,
        base: float,
        *,
        jitter: float = DEFAULT_JITTER,
        max_elapsed: Optional[float] = DEFAULT_MAX_ELAPSED,
        rng: object = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if base < 0.0:
            raise ValueError(f"base must be >= 0, got {base}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if max_elapsed is not None and max_elapsed <= 0.0:
            raise ValueError(f"max_elapsed must be > 0, got {max_elapsed}")
        from repro.util.rng import derive_rng

        self.retries = int(retries)
        self.base = float(base)
        self.jitter = float(jitter)
        self.max_elapsed = None if max_elapsed is None else float(max_elapsed)
        self._rng = derive_rng(rng)
        self._clock = clock
        self._start = float(clock())

    def elapsed(self) -> float:
        """Wall seconds since this schedule was constructed."""
        return float(self._clock()) - self._start

    def next_delay(self, attempt: int) -> Optional[float]:
        """The sleep before retry *attempt* (0-based), or ``None`` to stop."""
        if attempt >= self.retries:
            return None
        delay = self.base * (2.0**attempt)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * float(self._rng.random()) - 1.0)
        if self.max_elapsed is not None:
            remaining = self.max_elapsed - self.elapsed()
            if remaining <= 0.0:
                return None
            delay = min(delay, remaining)
        return delay


class BatchCall:
    """Sans-IO state machine for one batch request/response exchange.

    The transport sends :meth:`request` and feeds every response frame to
    :meth:`consume` until it returns True (eof); :meth:`result` then
    holds the assembled float64 vector.  Raises :class:`RemoteBatchError`
    on a server error frame and :class:`ProtocolError` on schema junk —
    identically for both transports.
    """

    def __init__(
        self,
        probes: Sequence[Probe],
        *,
        request_id: int,
        on_error: Optional[str],
        trace: Optional[Callable[[ProbeTrace], None]],
        trace_context: Optional[TraceContext] = None,
        wire_version: Optional[int] = None,
    ):
        self._count = len(probes)
        self._request = protocol.batch_request(
            protocol.probes_to_wire(probes),
            request_id=request_id,
            on_error=on_error,
            want_traces=trace is not None,
            trace_context=trace_context,
            version=wire_version,
        )
        self._request_id = request_id
        self._trace = trace
        self._chunks: list[np.ndarray] = []
        self._received = 0
        self._total: Optional[int] = None

    def request(self) -> dict:
        """The envelope to send."""
        return self._request

    def consume(self, frame: dict) -> bool:
        """Absorb one response frame; True when the stream is complete."""
        protocol.check_version(frame)
        op = frame.get("op")
        if op == "error":
            raise RemoteBatchError(
                code=str(frame.get("code", "error")),
                detail=str(frame.get("detail", "")),
                error_type=frame.get("error_type"),
            )
        if op != "chunk":
            raise ProtocolError(f"expected a chunk frame, got op={op!r}")
        if frame.get("id") != self._request_id:
            raise ProtocolError(
                f"response id {frame.get('id')!r} does not match request "
                f"id {self._request_id}"
            )
        try:
            chunk = protocol.decode_estimates(frame["estimates"])
        except (KeyError, protocol.WireCodecError) as exc:
            raise ProtocolError(f"bad chunk frame: {exc}") from exc
        if frame.get("start") != self._received:
            raise ProtocolError(
                f"out-of-order chunk: start={frame.get('start')!r}, "
                f"expected {self._received}"
            )
        self._total = int(frame.get("count", self._count))
        self._chunks.append(chunk)
        self._received += chunk.size
        if self._trace is not None:
            for wire_trace in frame.get("traces", []):
                self._trace(protocol.trace_from_wire(wire_trace))
        return bool(frame.get("eof"))

    def result(self) -> np.ndarray:
        """The assembled estimate vector (after eof)."""
        if self._total is not None and self._received != self._total:
            raise ProtocolError(
                f"stream ended after {self._received} of {self._total} estimates"
            )
        if not self._chunks:
            return np.zeros(0, dtype=np.float64)
        return np.concatenate(self._chunks)


class EstimationClient:
    """Synchronous SDK over a plain TCP socket.

    Lazily connects on first use; usable as a context manager.  One
    client owns one connection and is **not** thread-safe — give each
    thread its own client (connections are cheap; the server is
    concurrent).

    Parameters mirror :func:`connect`, the preferred spelling.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        token: Optional[str] = None,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        jitter: float = DEFAULT_JITTER,
        max_elapsed: Optional[float] = DEFAULT_MAX_ELAPSED,
        on_error: Optional[str] = None,
    ):
        self.host = host
        self.port = int(port)
        self.token = token
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.jitter = float(jitter)
        self.max_elapsed = max_elapsed
        #: Default ``on_error`` policy sent with every batch (None defers
        #: to the server-side service default).
        self.on_error = on_error
        self.tenant: Optional[str] = None
        self._sock: Optional[socket.socket] = None
        self._decoder = protocol.FrameDecoder()
        #: Frames received ahead of their reader (pipelined responses).
        self._pending: list[dict] = []
        self._next_id = 1
        #: The wire schema this connection speaks.  Starts at this
        #: build's native version; a "wire-version" refusal during the
        #: handshake downgrades it to the oldest supported version (an
        #: old server, new client) and redoes the hello.
        self._wire_version = protocol.WIRE_SCHEMA_VERSION

    @property
    def wire_version(self) -> int:
        """The negotiated wire schema version for this connection."""
        return self._wire_version

    # -- connection lifecycle ------------------------------------------

    @property
    def connected(self) -> bool:
        """True while a handshaken connection is held."""
        return self._sock is not None

    def connect(self) -> "EstimationClient":
        """Open the connection and complete the hello handshake.

        Idempotent; retried with exponential backoff.  Returns ``self``
        for chaining.
        """
        if self._sock is not None:
            return self
        failure: Optional[Exception] = None
        schedule = self._schedule()
        attempt = 0
        while True:
            try:
                self._open_once()
                return self
            except AuthenticationError:
                raise
            except (OSError, ClientError) as exc:
                failure = exc
                self._teardown()
                delay = schedule.next_delay(attempt)
                if delay is None:
                    break
                time.sleep(delay)
                attempt += 1
        raise ConnectionFailedError(
            f"could not connect to {self.host}:{self.port} after "
            f"{attempt + 1} attempts ({schedule.elapsed():.1f}s): {failure}"
        ) from failure

    def _schedule(self) -> RetrySchedule:
        return RetrySchedule(
            self.retries,
            self.backoff,
            jitter=self.jitter,
            max_elapsed=self.max_elapsed,
        )

    def _open_once(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        try:
            self._decoder = protocol.FrameDecoder()
            self._pending.clear()
            self._sock = sock
            self._send(
                protocol.hello_request(token=self.token, version=self._wire_version)
            )
            welcome = self._recv_frame()
            protocol.check_version(welcome)
            if welcome.get("op") == "error":
                code = str(welcome.get("code", "error"))
                if code == protocol.REASON_AUTH_FAILED:
                    raise AuthenticationError(
                        f"server refused token: {welcome.get('detail', '')}"
                    )
                if (
                    code == "wire-version"
                    and self._wire_version > protocol.MIN_WIRE_SCHEMA_VERSION
                ):
                    # An older server refused our native version: fall
                    # back to the oldest schema we speak and redo the
                    # handshake on a fresh connection.
                    self._wire_version = protocol.MIN_WIRE_SCHEMA_VERSION
                    self._sock = None
                    sock.close()
                    self._open_once()
                    return
                raise ProtocolError(f"handshake failed: {welcome}")
            if welcome.get("op") != "welcome":
                raise ProtocolError(
                    f"expected a welcome frame, got {welcome.get('op')!r}"
                )
            self.tenant = welcome.get("tenant")
        except BaseException:
            self._sock = None
            sock.close()
            raise

    def _teardown(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        """Close the connection (reconnects transparently on next use)."""
        self._teardown()

    def __enter__(self) -> "EstimationClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- wire helpers ---------------------------------------------------

    def _send(self, obj: dict) -> None:
        assert self._sock is not None
        self._sock.sendall(protocol.encode_frame(obj))

    def _recv_frame(self) -> dict:
        assert self._sock is not None
        while True:
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionFailedError("server closed the connection")
            frames = self._decoder.feed(data)
            if frames:
                self._pending.extend(frames[1:])
                return frames[0]

    # -- operations -----------------------------------------------------

    def ping(self) -> bool:
        """Round-trip a ping frame; True on pong."""
        self.connect()
        self._send(protocol.message("ping", version=self._wire_version))
        return self._next_frames_one().get("op") == "pong"

    def _next_frames_one(self) -> dict:
        if self._pending:
            return self._pending.pop(0)
        return self._recv_frame()

    def estimate_batch(
        self,
        probes: Sequence[Probe],
        *,
        on_error: Optional[str] = None,
        trace: Optional[Callable[[ProbeTrace], None]] = None,
    ) -> np.ndarray:
        """Submit one batch; returns the assembled float64 vector.

        Bit-identical to ``EstimationService.estimate_batch`` on the
        server's service.  A broken connection is retried from scratch
        (idempotent); a server-side batch error raises
        :class:`RemoteBatchError` without retrying.
        """
        probes = list(probes)
        failure: Optional[Exception] = None
        schedule = self._schedule()
        attempt = 0
        # The client-side span for this batch: the request carries its
        # context (at wire v2+), so the server's net.batch span — and
        # everything under it, including maintenance jobs the batch
        # triggers — joins THIS trace.
        with span(
            "net.client.batch",
            host=self.host,
            port=self.port,
            probes=len(probes),
        ) as client_span:
            while True:
                self.connect()
                call = BatchCall(
                    probes,
                    request_id=self._take_id(),
                    on_error=on_error if on_error is not None else self.on_error,
                    trace=trace,
                    trace_context=client_span.context,
                    wire_version=self._wire_version,
                )
                try:
                    self._send(call.request())
                    while not call.consume(self._next_frames_one()):
                        pass
                    return call.result()
                except (ConnectionFailedError, OSError) as exc:
                    failure = exc
                    self._teardown()
                    delay = schedule.next_delay(attempt)
                    if delay is None:
                        break
                    time.sleep(delay)
                    attempt += 1
        raise ConnectionFailedError(
            f"batch submission to {self.host}:{self.port} failed after "
            f"{attempt + 1} attempts ({schedule.elapsed():.1f}s): {failure}"
        ) from failure

    def stream_batch(
        self,
        probes: Sequence[Probe],
        *,
        on_error: Optional[str] = None,
        trace: Optional[Callable[[ProbeTrace], None]] = None,
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Submit one batch and yield ``(start, estimates_slice)`` chunks.

        The streaming spelling of :meth:`estimate_batch` for results too
        large to hold comfortably: chunks arrive in order as the server
        produces them.  No mid-stream retry — a connection failure after
        chunks were yielded raises (the consumer has partial state only
        it can roll back).
        """
        self.connect()
        call = BatchCall(
            list(probes),
            request_id=self._take_id(),
            on_error=on_error if on_error is not None else self.on_error,
            trace=trace,
            # A generator outlives its call frame, so no span is opened
            # here; the stream still joins the caller's trace if any.
            trace_context=tracing.current_trace_context(),
            wire_version=self._wire_version,
        )
        try:
            self._send(call.request())
            done = False
            while not done:
                frame = self._next_frames_one()
                done = call.consume(frame)
                chunk = protocol.decode_estimates(frame["estimates"])
                yield int(frame.get("start", 0)), chunk
        except (ConnectionFailedError, OSError):
            self._teardown()
            raise

    def _take_id(self) -> int:
        request_id = self._next_id
        self._next_id += 1
        return request_id


def connect(
    host: str,
    port: int,
    *,
    token: Optional[str] = None,
    timeout: float = DEFAULT_TIMEOUT,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF,
    jitter: float = DEFAULT_JITTER,
    max_elapsed: Optional[float] = DEFAULT_MAX_ELAPSED,
    on_error: Optional[str] = None,
) -> EstimationClient:
    """Connect a synchronous :class:`EstimationClient` (and handshake)."""
    client = EstimationClient(
        host,
        port,
        token=token,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        jitter=jitter,
        max_elapsed=max_elapsed,
        on_error=on_error,
    )
    return client.connect()
