"""The asyncio estimation server: frames in, bit-identical answers out.

One :class:`EstimationServer` wraps one in-process
:class:`~repro.serve.EstimationService` and serves it over TCP:

* **Framed protocol** — length-prefixed JSON frames (see
  :mod:`repro.net.protocol`): a ``hello`` handshake (token auth), then
  any number of ``batch`` requests per connection, each answered by a
  stream of ``chunk`` frames carrying raw-float64 estimate slices and
  the trace records for those positions.
* **HTTP/JSON shim** — the same port also answers one-shot
  ``POST /v1/batch`` requests (token via ``Authorization: Bearer``), so
  a plain ``curl`` can probe the service without the SDK — plus the ops
  surface: ``GET /v1/metrics`` (Prometheus text with trace-ID
  exemplars), ``GET /v1/ready`` (deep readiness, named checks, 503
  while unready), and ``GET /v1/tracez`` (recent sampled traces).
* **Admission, not amputation** — per-tenant quotas (probes per batch)
  and a backpressure bound (probes in flight across the tenant's
  connections) reject *probes*, not connections: refused probes resolve
  through the service's ``on_error`` policy with the typed reasons
  ``REASON_QUOTA_EXCEEDED`` / ``REASON_BACKPRESSURE`` via the
  ``admission=`` hook, exactly like today's unanswerable probes.  A
  malformed probe entry degrades alone (``REASON_WIRE_DECODE``); the
  rest of its batch is answered.
* **Instrumented** — ``net.accept`` / ``net.batch`` / ``net.stream``
  spans, and per-tenant labeled counters in the default metric registry
  (``repro_net_batches_total{tenant=...}`` and friends).

The CPU-bound estimation itself runs on the default executor so slow
batches never stall the event loop's accept path.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

from repro.net import protocol
from repro.obs import runtime as obs
from repro.obs import tracing
from repro.obs.export import assemble_traces, render_trace_tree, trace_summary
from repro.obs.tracing import SpanRecord, TraceContext, span
from repro.serve.service import (
    REASON_BACKPRESSURE,
    REASON_QUOTA_EXCEEDED,
    EstimationService,
    Probe,
    ProbeTrace,
)
from repro.util.validation import ensure_positive_int

if TYPE_CHECKING:  # import cycle: repro.maint imports repro.obs via net
    from repro.maint.queue import DurableJobQueue

#: Probes per ``chunk`` frame when streaming a batch result.  2048
#: float64 values are ~22 KiB base64 — large enough to amortize framing,
#: small enough that a 10k-probe result streams in a handful of frames.
DEFAULT_CHUNK_PROBES = 2048

#: Placeholder relation recorded in traces for undecodable probe slots.
_INVALID_RELATION = "<undecodable>"

#: Spans retained in memory for the ``/v1/tracez`` endpoint.
DEFAULT_TRACEZ_SPANS = 512

#: Traces shown per ``/v1/tracez`` response.
DEFAULT_TRACEZ_TRACES = 20

#: A readiness probe: returns ``(ok, detail)``.  Raising counts as
#: failing — a readiness check must never take the server down.
ReadinessCheck = Callable[[], tuple[bool, str]]


def agent_lease_check(
    queue: "DurableJobQueue", *, clock: Callable[[], float] = time.time
) -> ReadinessCheck:
    """A readiness check asserting the maintenance agent's leases are fresh.

    Passes while no claimed job's lease has expired — an expired lease
    means the agent that claimed it stopped heartbeating (crashed or
    stalled) and maintenance is effectively down until a new incarnation
    reclaims the job.  Wire it up with
    :meth:`EstimationServer.add_readiness_check`.
    """

    def check() -> tuple[bool, str]:
        now = clock()
        stale = [
            state["id"]
            for state in queue.jobs()
            if state["status"] == "claimed" and state["lease_expires"] < now
        ]
        if stale:
            return False, f"expired leases on {', '.join(sorted(stale))}"
        return True, "all claimed leases fresh"

    return check


@dataclass(frozen=True)
class TenantConfig:
    """Auth and admission limits for one tenant.

    ``max_probes_per_batch`` rejects the *tail* of an oversized batch
    (the prefix inside quota is still answered); ``max_pending_probes``
    bounds the tenant's probes concurrently in flight across all its
    connections — the backpressure knob.  Either limit at ``0`` means
    unlimited.
    """

    name: str
    token: str
    max_probes_per_batch: int = 0
    max_pending_probes: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"tenant name must be a non-empty str, got {self.name!r}")
        if not isinstance(self.token, str) or not self.token:
            raise ValueError(f"tenant token must be a non-empty str, got {self.token!r}")
        if self.max_probes_per_batch < 0 or self.max_pending_probes < 0:
            raise ValueError("tenant limits must be >= 0 (0 means unlimited)")


@dataclass
class _TenantState:
    """Mutable per-tenant admission state (event-loop confined)."""

    config: TenantConfig
    pending_probes: int = 0


@dataclass
class _DecodedBatch:
    """One batch request after per-entry decode + admission."""

    probes: list[Probe] = field(default_factory=list)
    #: Aligned rejection reasons (``None`` = admitted).  Decode failures
    #: are pre-marked here and carry a placeholder probe.
    verdicts: list[Optional[str]] = field(default_factory=list)
    decode_failures: int = 0


class EstimationServer:
    """Serve one :class:`EstimationService` over asyncio TCP.

    Parameters
    ----------
    service:
        The in-process service to answer from.  The server adds no
        estimation logic of its own — bit-identity with in-process
        answers follows from sharing the service and the wire codecs.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    tenants:
        Iterable of :class:`TenantConfig`.  When given, every framed
        connection must open with a ``hello`` carrying a known token,
        and HTTP requests need ``Authorization: Bearer <token>``.  When
        omitted, the server is open and all traffic is accounted to the
        ``"public"`` tenant with no limits.
    chunk_probes:
        Probes per streamed ``chunk`` frame.
    """

    def __init__(
        self,
        service: EstimationService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tenants: Optional[Sequence[TenantConfig]] = None,
        chunk_probes: int = DEFAULT_CHUNK_PROBES,
        name: Optional[str] = None,
    ):
        if not isinstance(service, EstimationService):
            raise TypeError(
                f"service must be an EstimationService, got {type(service).__name__}"
            )
        self.service = service
        self.host = host
        self.port = port
        self.name = name if name is not None else f"net-{service.name}"
        self._chunk_probes = ensure_positive_int(chunk_probes, "chunk_probes")
        self._tenants_by_token: dict[str, _TenantState] = {}
        self._open_tenant: Optional[_TenantState] = None
        if tenants:
            for config in tenants:
                if not isinstance(config, TenantConfig):
                    raise TypeError(
                        f"tenants must be TenantConfig, got {type(config).__name__}"
                    )
                if config.token in self._tenants_by_token:
                    raise ValueError(
                        f"duplicate tenant token for {config.name!r}"
                    )
                self._tenants_by_token[config.token] = _TenantState(config)
        else:
            self._open_tenant = _TenantState(
                TenantConfig(name="public", token="-")
            )
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections = 0
        # Ops surface state: named readiness checks (deep /v1/ready) and
        # the bounded recent-span buffer behind /v1/tracez.  The deque is
        # appended from whatever thread finishes a span (append is
        # atomic); readers snapshot with list().
        self._readiness_checks: list[tuple[str, ReadinessCheck]] = [
            ("catalog-published", self._check_catalog_published),
            ("quarantine-empty", self._check_quarantine_empty),
            ("cache-warm", self._check_cache_warm),
        ]
        self._recent_spans: deque[SpanRecord] = deque(maxlen=DEFAULT_TRACEZ_SPANS)
        self._tracez_sink_installed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        if not self._tracez_sink_installed:
            tracing.add_span_sink(self._record_tracez_span)
            self._tracez_sink_installed = True
        address = self.address
        obs.emit_event(
            "net.server.started", server=self.name, host=address[0], port=address[1]
        )
        return address

    async def stop(self) -> None:
        """Stop accepting and close the listening sockets."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        if self._tracez_sink_installed:
            tracing.remove_span_sink(self._record_tracez_span)
            self._tracez_sink_installed = False
        obs.emit_event("net.server.stopped", server=self.name)

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _authenticate(self, token: Optional[str]) -> Optional[_TenantState]:
        if self._open_tenant is not None:
            return self._open_tenant
        if token is None:
            return None
        return self._tenants_by_token.get(token)

    # ------------------------------------------------------------------
    # Ops surface: readiness checks and recent traces
    # ------------------------------------------------------------------

    def add_readiness_check(self, name: str, check: ReadinessCheck) -> None:
        """Register a named deep-readiness probe for ``GET /v1/ready``.

        *check* returns ``(ok, detail)``; a raising check reports as
        failing with the exception text.  Names must be unique — e.g.
        ``server.add_readiness_check("agent-lease-fresh",
        agent_lease_check(queue))``.
        """
        if not isinstance(name, str) or not name:
            raise ValueError(f"check name must be a non-empty str, got {name!r}")
        if not callable(check):
            raise TypeError(f"check must be callable, got {type(check).__name__}")
        if any(existing == name for existing, _ in self._readiness_checks):
            raise ValueError(f"readiness check {name!r} already registered")
        self._readiness_checks.append((name, check))

    def readiness(self) -> tuple[bool, list[dict]]:
        """Run every readiness check; ``(all ok, per-check reports)``."""
        reports: list[dict] = []
        ready = True
        for name, check in list(self._readiness_checks):
            try:
                ok, detail = check()
            except Exception as exc:  # a probe must never take the server down
                ok, detail = False, f"{type(exc).__name__}: {exc}"
            ok = bool(ok)
            ready = ready and ok
            reports.append({"name": name, "ok": ok, "detail": str(detail)})
        return ready, reports

    def _check_catalog_published(self) -> tuple[bool, str]:
        catalog = self.service.catalog
        entries = len(catalog)
        if entries == 0:
            return False, "catalog has no published entries"
        return True, f"{entries} entries at version {catalog.version}"

    def _check_quarantine_empty(self) -> tuple[bool, str]:
        quarantined = self.service.quarantined
        if quarantined:
            names = ", ".join(
                f"{relation}.{attribute if attribute is not None else '*'}"
                for relation, attribute in sorted(
                    quarantined, key=lambda item: (item[0], item[1] or "")
                )
            )
            return False, f"quarantined: {names}"
        return True, "no quarantined entries"

    def _check_cache_warm(self) -> tuple[bool, str]:
        cached = self.service.cached_tables
        if cached == 0:
            return False, "no compiled tables cached yet"
        return True, f"{cached} compiled tables cached"

    def _record_tracez_span(self, record: SpanRecord) -> None:
        # deque.append with a maxlen is atomic — safe from any thread.
        self._recent_spans.append(record)

    def recent_traces(self, limit: int = DEFAULT_TRACEZ_TRACES) -> list[dict]:
        """Assembled summaries of recent sampled traces, newest first."""
        traces = assemble_traces(list(self._recent_spans))
        traces.reverse()
        rows = []
        for trace in traces[: max(1, int(limit))]:
            row = trace_summary(trace)
            row["tree"] = render_trace_tree(trace)
            rows.append(row)
        return rows

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        obs.count("repro_net_connections_total", server=self.name)
        try:
            # Detached span: connections are concurrent tasks on one
            # thread, so a stack-based span here would cross-contaminate
            # parentage between peers.  Each connection gets its own
            # trace; per-request spans join the *client's* trace instead.
            with span("net.accept", context=tracing.new_trace(), server=self.name):
                first = await reader.read(4)
                if not first:
                    return
                if _looks_like_http(first):
                    await self._handle_http(first, reader, writer)
                    return
                await self._handle_framed(first, reader, writer)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            protocol.WireCodecError,
        ):
            # A peer that vanishes or talks garbage mid-frame cannot be
            # answered; everything answerable was already answered.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_frame(
        self, reader: asyncio.StreamReader, *, prefix: Optional[bytes] = None
    ) -> Optional[dict]:
        """Read one frame; ``None`` on clean EOF at a frame boundary."""
        if prefix is None:
            prefix = await reader.read(4)
            if not prefix:
                return None
            if len(prefix) < 4:
                prefix += await reader.readexactly(4 - len(prefix))
        length = protocol.read_frame_length(prefix)
        payload = await reader.readexactly(length)
        return protocol.decode_frame(payload)

    async def _send_frame(self, writer: asyncio.StreamWriter, obj: dict) -> None:
        writer.write(protocol.encode_frame(obj))
        await writer.drain()

    async def _handle_framed(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        hello = await self._read_frame(reader, prefix=first)
        if hello is None:
            return
        try:
            conn_version = protocol.check_version(hello)
        except protocol.WireVersionError as exc:
            # Stamp the refusal with the *oldest* supported version so a
            # strict old peer can still parse it.
            await self._send_frame(
                writer,
                protocol.message(
                    "error",
                    version=protocol.MIN_WIRE_SCHEMA_VERSION,
                    code="wire-version",
                    detail=str(exc),
                ),
            )
            return
        # Every response frame mirrors the peer's negotiated version: a
        # v1 client checks strict equality on frames it reads, so a v2
        # server must keep speaking v1 on that connection.
        if hello.get("op") != "hello":
            await self._send_frame(
                writer,
                protocol.message(
                    "error",
                    version=conn_version,
                    code="protocol-error",
                    detail="connection must open with a hello frame",
                ),
            )
            return
        tenant = self._authenticate(hello.get("token"))
        if tenant is None:
            # Auth failure is answered with a typed error frame and a
            # clean close — a refusal the client can report, not a reset.
            obs.count("repro_net_auth_failures_total", server=self.name)
            await self._send_frame(
                writer,
                protocol.message(
                    "error",
                    version=conn_version,
                    code=protocol.REASON_AUTH_FAILED,
                    detail="unknown tenant token",
                ),
            )
            return
        await self._send_frame(
            writer,
            protocol.message(
                "welcome",
                version=conn_version,
                tenant=tenant.config.name,
                server=self.name,
            ),
        )
        while True:
            request = await self._read_frame(reader)
            if request is None:
                return
            op = request.get("op")
            if op == "ping":
                await self._send_frame(
                    writer, protocol.message("pong", version=conn_version)
                )
                continue
            if op == "batch":
                await self._handle_batch(request, tenant, writer, conn_version)
                continue
            await self._send_frame(
                writer,
                protocol.message(
                    "error",
                    version=conn_version,
                    code="unknown-op",
                    detail=f"unknown op {op!r}",
                ),
            )

    # ------------------------------------------------------------------
    # Batch execution (shared by the framed and HTTP paths)
    # ------------------------------------------------------------------

    def _decode_batch(
        self, entries: Sequence[object], tenant: _TenantState
    ) -> _DecodedBatch:
        """Decode probes entry-by-entry and apply admission limits.

        Runs on the event loop (admission state is loop-confined); the
        heavy estimation work happens in the executor afterwards.
        """
        batch = _DecodedBatch()
        limits = tenant.config
        for index, entry in enumerate(entries):
            try:
                probe = protocol.probe_from_wire(entry)
                verdict: Optional[str] = None
            except protocol.WireCodecError:
                probe = _invalid_probe()
                verdict = protocol.REASON_WIRE_DECODE
                batch.decode_failures += 1
            if verdict is None and limits.max_probes_per_batch:
                if index >= limits.max_probes_per_batch:
                    verdict = REASON_QUOTA_EXCEEDED
            if verdict is None and limits.max_pending_probes:
                if tenant.pending_probes >= limits.max_pending_probes:
                    verdict = REASON_BACKPRESSURE
                else:
                    tenant.pending_probes += 1
            batch.probes.append(probe)
            batch.verdicts.append(verdict)
        return batch

    def _release_pending(self, batch: _DecodedBatch, tenant: _TenantState) -> None:
        if not tenant.config.max_pending_probes:
            return
        admitted = sum(1 for verdict in batch.verdicts if verdict is None)
        tenant.pending_probes -= admitted

    def _request_trace_context(
        self, request: dict, tenant: _TenantState
    ) -> TraceContext:
        """The trace this request belongs to: the client's, or a new one.

        An absent ``trace_context`` field (every v1 peer) starts a new
        trace; a *malformed* one is counted and ignored rather than
        refused — tracing is an observability concern and must never
        fail a batch that would otherwise be answered.
        """
        wire = request.get("trace_context")
        context: Optional[TraceContext] = None
        if wire is not None:
            try:
                context = protocol.trace_context_from_wire(wire)
            except protocol.WireCodecError:
                obs.count(
                    "repro_net_invalid_trace_context_total", server=self.name
                )
        if context is None:
            context = tracing.new_trace(tenant=tenant.config.name)
        return context

    def _run_batch(
        self,
        batch: _DecodedBatch,
        tenant_name: str,
        on_error: Optional[str],
        context: Optional[TraceContext] = None,
    ) -> tuple[np.ndarray, list[ProbeTrace]]:
        """Answer the decoded batch through the shared service (executor)."""
        # Re-attach the request's trace on this executor thread so the
        # service's serve.batch span parents to our net.batch span.
        token = tracing.attach(context) if context is not None else None
        try:
            return self._run_batch_traced(batch, tenant_name, on_error)
        finally:
            if context is not None:
                tracing.detach(token)

    def _run_batch_traced(
        self,
        batch: _DecodedBatch,
        tenant_name: str,
        on_error: Optional[str],
    ) -> tuple[np.ndarray, list[ProbeTrace]]:
        traces: list[ProbeTrace] = []
        if any(verdict is not None for verdict in batch.verdicts):
            admission = lambda probes: batch.verdicts  # noqa: E731
        else:
            admission = None
        estimates = self.service.estimate_batch(
            batch.probes,
            on_error=on_error,
            trace=traces.append,
            admission=admission,
        )
        obs.count(
            "repro_net_probes_total",
            len(batch.probes),
            server=self.name,
            tenant=tenant_name,
        )
        rejected = sum(1 for verdict in batch.verdicts if verdict is not None)
        if rejected:
            obs.count(
                "repro_net_rejected_probes_total",
                rejected,
                server=self.name,
                tenant=tenant_name,
            )
        return estimates, traces

    async def _execute_batch(
        self,
        entries: Sequence[object],
        tenant: _TenantState,
        on_error: Optional[str],
        context: Optional[TraceContext] = None,
    ) -> tuple[np.ndarray, list[ProbeTrace]]:
        batch = self._decode_batch(entries, tenant)
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                None, self._run_batch, batch, tenant.config.name, on_error, context
            )
        finally:
            self._release_pending(batch, tenant)

    async def _handle_batch(
        self,
        request: dict,
        tenant: _TenantState,
        writer: asyncio.StreamWriter,
        version: int,
    ) -> None:
        request_id = request.get("id", 0)
        entries = request.get("probes")
        if not isinstance(entries, list):
            await self._send_frame(
                writer,
                protocol.message(
                    "error",
                    version=version,
                    id=request_id,
                    code="protocol-error",
                    detail="batch.probes must be an array",
                ),
            )
            return
        on_error = request.get("on_error")
        want_traces = bool(request.get("traces"))
        # Detached span (concurrent tasks share this thread) joining the
        # client's trace when the request carried one.
        context = self._request_trace_context(request, tenant)
        with span(
            "net.batch",
            context=context,
            server=self.name,
            tenant=tenant.config.name,
            probes=len(entries),
        ) as batch_span:
            obs.count(
                "repro_net_batches_total",
                server=self.name,
                tenant=tenant.config.name,
            )
            try:
                estimates, traces = await self._execute_batch(
                    entries, tenant, on_error, batch_span.context
                )
            except Exception as exc:
                # on_error="raise" (or an invalid policy string) surfaces
                # as a typed per-batch error frame; the connection and its
                # other requests live on.
                await self._send_frame(
                    writer,
                    protocol.message(
                        "error",
                        version=version,
                        id=request_id,
                        code="batch-failed",
                        error_type=type(exc).__name__,
                        detail=str(exc),
                    ),
                )
                return
            await self._stream_result(
                writer,
                request_id,
                estimates,
                traces if want_traces else None,
                version=version,
                context=batch_span.context,
            )

    async def _stream_result(
        self,
        writer: asyncio.StreamWriter,
        request_id: object,
        estimates: np.ndarray,
        traces: Optional[list[ProbeTrace]],
        *,
        version: Optional[int] = None,
        context: Optional[TraceContext] = None,
    ) -> None:
        """Stream one result as ``chunk`` frames (always at least one)."""
        total = int(estimates.size)
        chunk = self._chunk_probes
        with span("net.stream", context=context, server=self.name, probes=total):
            start = 0
            while True:
                end = min(start + chunk, total)
                frame = protocol.message(
                    "chunk",
                    version=version,
                    id=request_id,
                    start=start,
                    count=total,
                    estimates=protocol.encode_estimates(estimates[start:end]),
                    eof=end >= total,
                )
                if traces is not None:
                    frame["traces"] = [
                        protocol.trace_to_wire(trace)
                        for trace in traces
                        if trace.position is not None and start <= trace.position < end
                    ]
                    # Position-less traces (scalar paths never produce
                    # them here, but be safe) ride the first chunk.
                    if start == 0:
                        frame["traces"].extend(
                            protocol.trace_to_wire(trace)
                            for trace in traces
                            if trace.position is None
                        )
                await self._send_frame(writer, frame)
                if end >= total:
                    return
                start = end

    # ------------------------------------------------------------------
    # HTTP/JSON shim
    # ------------------------------------------------------------------

    async def _handle_http(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Answer one HTTP/1.1 request on the shared port, then close.

        Supports ``POST /v1/batch`` with the batch-request JSON as body
        and ``GET /v1/health``.  Estimates come back in the same
        bit-exact base64-float64 encoding as the framed protocol.
        """
        try:
            header_blob = first + await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=10.0
            )
        except (asyncio.TimeoutError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return
        head = header_blob.decode("latin-1")
        request_line, _, header_text = head.partition("\r\n")
        parts = request_line.split()
        if len(parts) < 2:
            return
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for line in header_text.split("\r\n"):
            key, sep, value = line.partition(":")
            if sep:
                headers[key.strip().lower()] = value.strip()
        if method == "GET" and path == "/v1/health":
            await _http_respond(writer, 200, {"status": "ok", "server": self.name})
            return
        if method == "GET" and path == "/v1/metrics":
            # Prometheus text exposition (with trace-ID exemplars on
            # latency-histogram buckets).  Unauthenticated, like /v1/health:
            # the ops surface is for the scraper next door.
            from repro.obs import get_registry

            await _http_respond_text(writer, 200, get_registry().to_prometheus())
            return
        if method == "GET" and path == "/v1/ready":
            ready, checks = self.readiness()
            await _http_respond(
                writer,
                200 if ready else 503,
                {
                    "status": "ok" if ready else "unready",
                    "server": self.name,
                    "checks": checks,
                },
            )
            return
        if method == "GET" and path == "/v1/tracez":
            await _http_respond(
                writer,
                200,
                {"server": self.name, "traces": self.recent_traces()},
            )
            return
        if method != "POST" or path != "/v1/batch":
            await _http_respond(
                writer, 404, {"error": f"unknown endpoint {method} {path}"}
            )
            return
        token: Optional[str] = None
        auth = headers.get("authorization", "")
        if auth.lower().startswith("bearer "):
            token = auth[7:].strip()
        tenant = self._authenticate(token)
        if tenant is None:
            obs.count("repro_net_auth_failures_total", server=self.name)
            await _http_respond(
                writer, 401, {"error": protocol.REASON_AUTH_FAILED}
            )
            return
        try:
            length = int(headers.get("content-length", "0"))
            body = await reader.readexactly(length) if length else b""
            request = protocol.decode_frame(body)
            req_version = protocol.check_version(request)
        except (
            ValueError,
            asyncio.IncompleteReadError,
            protocol.WireCodecError,
        ) as exc:
            await _http_respond(writer, 400, {"error": str(exc)})
            return
        entries = request.get("probes")
        if not isinstance(entries, list):
            await _http_respond(
                writer, 400, {"error": "batch.probes must be an array"}
            )
            return
        context = self._request_trace_context(request, tenant)
        with span(
            "net.batch",
            context=context,
            server=self.name,
            tenant=tenant.config.name,
            probes=len(entries),
            transport="http",
        ) as batch_span:
            obs.count(
                "repro_net_batches_total",
                server=self.name,
                tenant=tenant.config.name,
            )
            try:
                estimates, traces = await self._execute_batch(
                    entries, tenant, request.get("on_error"), batch_span.context
                )
            except Exception as exc:
                await _http_respond(
                    writer,
                    422,
                    {"error": str(exc), "error_type": type(exc).__name__},
                )
                return
        payload = protocol.message(
            "result",
            version=req_version,
            count=int(estimates.size),
            estimates=protocol.encode_estimates(estimates),
        )
        if request.get("traces"):
            payload["traces"] = [protocol.trace_to_wire(t) for t in traces]
        await _http_respond(writer, 200, payload)


def _invalid_probe() -> Probe:
    """Placeholder for an undecodable wire entry.

    Never reaches an estimator — its admission verdict is always
    ``REASON_WIRE_DECODE`` — but keeps result-vector positions aligned.
    """
    from repro.serve.service import EqualityProbe

    return EqualityProbe(_INVALID_RELATION, _INVALID_RELATION, None)


def _looks_like_http(first: bytes) -> bool:
    """Heuristic shim dispatch: HTTP methods vs. a 4-byte length prefix.

    A framed peer's first 4 bytes are a big-endian length well under
    :data:`~repro.net.protocol.MAX_FRAME_BYTES` (so the first byte is
    ``\\x00``); every HTTP method starts with an uppercase ASCII letter.
    """
    return bool(first) and first[:1].isalpha()


_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    422: "Unprocessable Entity",
    503: "Service Unavailable",
}


async def _http_respond(
    writer: asyncio.StreamWriter, status: int, payload: dict
) -> None:
    import json

    body = json.dumps(payload, separators=(",", ":"), allow_nan=False).encode("utf-8")
    await _http_respond_raw(writer, status, body, "application/json")


async def _http_respond_text(
    writer: asyncio.StreamWriter, status: int, text: str
) -> None:
    await _http_respond_raw(
        writer, status, text.encode("utf-8"), "text/plain; charset=utf-8"
    )


async def _http_respond_raw(
    writer: asyncio.StreamWriter, status: int, body: bytes, content_type: str
) -> None:
    head = (
        f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'Error')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()


# ---------------------------------------------------------------------------
# Threaded harness (tests, CLI, benchmarks)
# ---------------------------------------------------------------------------


class ServerHandle:
    """A running server on a background event-loop thread.

    Returned by :func:`serve_in_thread`; usable as a context manager.
    ``address`` is ready as soon as the constructor returns.
    """

    def __init__(self, server: EstimationServer):
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-net-{server.name}", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("server thread failed to start in 30s")
        if isinstance(self._startup, BaseException):
            raise self._startup

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
            self._startup: object = None
        except BaseException as exc:  # startup failure surfaces in __init__
            self._startup = exc
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the background server is bound to."""
        return self.server.address

    def stop(self) -> None:
        """Stop the server and join the loop thread."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve_in_thread(
    service: EstimationService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    tenants: Optional[Sequence[TenantConfig]] = None,
    chunk_probes: int = DEFAULT_CHUNK_PROBES,
    name: Optional[str] = None,
) -> ServerHandle:
    """Start an :class:`EstimationServer` on a daemon event-loop thread."""
    server = EstimationServer(
        service,
        host=host,
        port=port,
        tenants=tenants,
        chunk_probes=chunk_probes,
        name=name,
    )
    return ServerHandle(server)
