"""Runtime lock sanitizer: the dynamic half of the concurrency discipline.

The static pass (:mod:`repro.analysis.concurrency`) proves what it can see
in the AST; this module watches what actually happens.  While installed,
``threading.Lock`` and ``threading.RLock`` are replaced with factories
returning sanitized wrappers that record, per thread, the stack of locks
currently held (keyed by **allocation site**, ``file:line`` of the
constructor call) and check every acquisition against a global order
graph:

* **lock-order inversion** — acquiring ``B`` while holding ``A`` after
  some thread has ever acquired ``A`` while holding ``B`` (transitively);
  the dynamic analogue of lint rule R010;
* **self-deadlock** — a thread re-acquiring a non-reentrant lock it
  already holds (detected *before* the blocking call, so tests can probe
  with ``acquire(timeout=...)`` instead of hanging);
* **long hold / contention** — advisory findings when a lock is held
  longer than :data:`LONG_HOLD_SECONDS` or an acquisition waits longer
  than :data:`CONTENTION_WAIT_SECONDS`, pointing at hot locks worth
  splitting.

Enable it for a test run with ``REPRO_LOCKSAN=1`` (the conftest installs
it session-wide and fails the session if inversions or self-deadlocks
were recorded); the threaded stress and chaos suites then run fully
sanitized.  The hooks honor the observability kill switch: when
:func:`repro.obs.runtime.set_instrumentation` has turned instrumentation
off, a sanitized lock degrades to plain delegation, so the obs overhead
benchmark measures the same code path either way.

Known limits: only locks **created after** :func:`install` are wrapped —
``from threading import Lock`` aliases and dataclass
``field(default_factory=threading.Lock)`` defaults captured at import
time keep the original classes; ``threading.Condition`` wait internals
release/reacquire through the raw lock and are invisible.  The static
pass covers those blind spots from the other side.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

#: Advisory threshold for a "this lock was held too long" finding.
LONG_HOLD_SECONDS = float(os.environ.get("REPRO_LOCKSAN_LONG_HOLD_MS", "100")) / 1000.0

#: Advisory threshold for a "this acquisition had to wait" finding.
CONTENTION_WAIT_SECONDS = (
    float(os.environ.get("REPRO_LOCKSAN_CONTENTION_MS", "10")) / 1000.0
)

#: Findings kept in memory; later ones only bump the counters.
MAX_FINDINGS = 200

#: The environment variable the test harness checks to arm the sanitizer.
LOCKSAN_ENV = "REPRO_LOCKSAN"

#: Finding kinds that indicate a real bug (vs. advisory performance ones).
FATAL_KINDS = frozenset({"lock-order-inversion", "self-deadlock"})


@dataclass(frozen=True)
class LockSanFinding:
    """One recorded discipline violation or advisory observation."""

    kind: str
    message: str
    thread: str
    site: str
    other_site: Optional[str] = None


_orig_lock: Callable[[], object] = threading.Lock
_orig_rlock: Callable[[], object] = threading.RLock

# All sanitizer bookkeeping hides behind an ORIGINAL (unwrapped) lock so
# the hooks never recurse into themselves; wrapped locks are never taken
# while it is held.
_state_lock = _orig_lock()
_installed = 0
_findings: list[LockSanFinding] = []
_counters: dict[str, int] = {}
#: allocation-site order graph: site -> sites acquired while holding it.
_order: dict[str, set[str]] = {}
#: first site pair observed for an edge, for the inversion message.
_edge_origin: dict[tuple[str, str], str] = {}
_tls = threading.local()


def locksan_requested() -> bool:
    """Whether the environment asked for a sanitized test session."""
    return os.environ.get(LOCKSAN_ENV, "").strip() not in {"", "0", "false", "no"}


def _obs_enabled() -> bool:
    try:
        from repro.obs import runtime
    except Exception:  # pragma: no cover - obs layer absent
        return True
    return runtime.is_enabled()


def _held_stack() -> list[tuple[int, str, float, bool]]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def _hooks_suppressed() -> bool:
    return bool(getattr(_tls, "suppress", False))


def _bump(counter: str, amount: int = 1) -> None:
    _counters[counter] = _counters.get(counter, 0) + amount


def _record_finding(
    kind: str, message: str, site: str, other_site: Optional[str] = None
) -> None:
    finding = LockSanFinding(
        kind=kind,
        message=message,
        thread=threading.current_thread().name,
        site=site,
        other_site=other_site,
    )
    with _state_lock:
        _bump(f"locksan_{kind.replace('-', '_')}_total")
        if len(_findings) < MAX_FINDINGS:
            _findings.append(finding)
    # Mirror into the obs registry outside the state lock; suppress our own
    # hooks so instrumenting the finding cannot re-enter the sanitizer.
    _tls.suppress = True
    try:
        from repro.obs import runtime

        runtime.count("repro_locksan_findings_total", kind=kind)
    except Exception:  # pragma: no cover - obs layer absent
        pass
    finally:
        _tls.suppress = False


def _reachable(start: str, goal: str) -> bool:
    """Is *goal* reachable from *start* in the order graph?  (Caller holds
    the state lock.)"""
    seen = {start}
    queue = [start]
    while queue:
        node = queue.pop()
        if node == goal:
            return True
        for succ in _order.get(node, ()):
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return False


class _SanitizedLock:
    """Wraps one real lock, reporting acquisitions to the sanitizer."""

    __slots__ = ("_inner", "_site", "_reentrant")

    def __init__(self, inner: object, site: str, reentrant: bool) -> None:
        self._inner = inner
        self._site = site
        self._reentrant = reentrant

    # -- hook plumbing -------------------------------------------------

    def _hooks_active(self) -> bool:
        return _installed > 0 and not _hooks_suppressed() and _obs_enabled()

    def _before_acquire(self) -> None:
        stack = _held_stack()
        if not self._reentrant and any(entry[0] == id(self) for entry in stack):
            _record_finding(
                "self-deadlock",
                f"non-reentrant lock from {self._site} re-acquired by the "
                f"thread already holding it",
                self._site,
            )
            return
        held_sites = [entry[1] for entry in stack if entry[0] != id(self)]
        if not held_sites:
            return
        inversion: Optional[tuple[str, str]] = None
        with _state_lock:
            for held in held_sites:
                if held == self._site:
                    continue
                # New edge held -> self._site; if the graph already knows a
                # path self._site ~> held, two orders coexist: inversion.
                already_known = self._site in _order.get(held, set())
                if (
                    inversion is None
                    and not already_known
                    and _reachable(self._site, held)
                ):
                    inversion = (held, self._site)
                _order.setdefault(held, set()).add(self._site)
                _edge_origin.setdefault((held, self._site), f"{held} -> {self._site}")
        if inversion is not None:
            held_site, acquired_site = inversion
            _record_finding(
                "lock-order-inversion",
                f"lock from {acquired_site} acquired while holding lock from "
                f"{held_site}, but the opposite order was taken earlier",
                acquired_site,
                other_site=held_site,
            )

    def _after_acquire(self, waited: float) -> None:
        with _state_lock:
            _bump("locksan_acquisitions_total")
            if waited >= CONTENTION_WAIT_SECONDS:
                _bump("locksan_contended_acquisitions_total")
        if waited >= CONTENTION_WAIT_SECONDS:
            _record_finding(
                "contention",
                f"acquisition of lock from {self._site} waited "
                f"{waited * 1000.0:.1f} ms",
                self._site,
            )
        _held_stack().append((id(self), self._site, time.monotonic(), self._reentrant))

    def _before_release(self) -> None:
        stack = _held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] == id(self):
                _, site, acquired_at, _ = stack.pop(index)
                held_for = time.monotonic() - acquired_at
                if held_for >= LONG_HOLD_SECONDS:
                    with _state_lock:
                        _bump("locksan_long_holds_total")
                    _record_finding(
                        "long-hold",
                        f"lock from {site} held for {held_for * 1000.0:.1f} ms",
                        site,
                    )
                return

    # -- lock protocol -------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        active = self._hooks_active()
        # Non-blocking attempts skip the pre-acquire checks: a trylock can
        # neither deadlock nor define an ordering commitment (it is the
        # deadlock-*avoidance* idiom), and threading.Condition._is_owned
        # probes held locks exactly this way.
        if active and blocking:
            self._before_acquire()
        started = time.monotonic() if active else 0.0
        if blocking:
            acquired = self._inner.acquire(True, timeout)  # type: ignore[attr-defined]
        else:
            # The raw lock rejects a timeout on non-blocking calls.
            acquired = self._inner.acquire(False)  # type: ignore[attr-defined]
        if active and acquired:
            self._after_acquire(time.monotonic() - started)
        return acquired

    def release(self) -> None:
        if self._hooks_active():
            self._before_release()
        self._inner.release()  # type: ignore[attr-defined]

    def locked(self) -> bool:
        return self._inner.locked()  # type: ignore[attr-defined]

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.release()

    def __repr__(self) -> str:
        kind = "RLock" if self._reentrant else "Lock"
        return f"<sanitized {kind} from {self._site} wrapping {self._inner!r}>"

    def __getattr__(self, name: str) -> object:
        # threading.Condition probes _is_owned/_acquire_restore/_release_save;
        # delegate so RLock-backed conditions keep working (and plain locks
        # keep raising AttributeError, which Condition expects).
        return getattr(object.__getattribute__(self, "_inner"), name)


def _allocation_site(depth: int = 2) -> str:
    frame = sys._getframe(depth)
    return f"{os.path.basename(frame.f_code.co_filename)}:{frame.f_lineno}"


def _lock_factory() -> _SanitizedLock:
    return _SanitizedLock(_orig_lock(), _allocation_site(), reentrant=False)


def _rlock_factory() -> _SanitizedLock:
    return _SanitizedLock(_orig_rlock(), _allocation_site(), reentrant=True)


def install() -> None:
    """Start wrapping newly created ``threading.Lock``/``RLock`` objects.

    Reference-counted: nested installs (a locksan unit test inside a
    sanitized session) are fine, and only the last :func:`uninstall`
    restores the real factories.
    """
    global _installed
    with _state_lock:
        _installed += 1
        if _installed == 1:
            threading.Lock = _lock_factory  # type: ignore[assignment]
            threading.RLock = _rlock_factory  # type: ignore[assignment]


def uninstall() -> None:
    """Undo one :func:`install`; restores the factories at zero."""
    global _installed
    with _state_lock:
        if _installed == 0:
            return
        _installed -= 1
        if _installed == 0:
            threading.Lock = _orig_lock  # type: ignore[assignment]
            threading.RLock = _orig_rlock  # type: ignore[assignment]


def is_installed() -> bool:
    """Whether sanitized factories are currently patched in."""
    return _installed > 0


def reset() -> None:
    """Drop all findings, counters, and learned ordering edges."""
    with _state_lock:
        _findings.clear()
        _counters.clear()
        _order.clear()
        _edge_origin.clear()


def findings(kind: Optional[str] = None) -> list[LockSanFinding]:
    """A snapshot of recorded findings, optionally filtered by *kind*."""
    with _state_lock:
        snapshot = list(_findings)
    if kind is not None:
        snapshot = [finding for finding in snapshot if finding.kind == kind]
    return snapshot


def counters() -> dict[str, int]:
    """A snapshot of the sanitizer counters (``locksan_*_total``)."""
    with _state_lock:
        return dict(_counters)


def fatal_findings() -> list[LockSanFinding]:
    """Findings that indicate real bugs: inversions and self-deadlocks."""
    return [finding for finding in findings() if finding.kind in FATAL_KINDS]


def format_findings(items: Optional[list[LockSanFinding]] = None) -> str:
    """Render findings one per line for a failure message or report."""
    items = findings() if items is None else items
    if not items:
        return "locksan: clean"
    lines = [
        f"[{finding.kind}] {finding.thread}: {finding.message}" for finding in items
    ]
    return "\n".join(lines)
