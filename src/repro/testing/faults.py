"""Deterministic, seeded fault injection for crash-safety testing.

Durability claims ("a crash mid-save never corrupts the catalog") cannot be
tested by waiting for real crashes.  Instead, the production IO paths carry
**named injection points** — :func:`fault_point` calls that are no-ops in
normal operation.  A test arms a :class:`FaultInjector` and enters it as a
context manager; while active, armed points raise a simulated failure at a
deterministic moment:

* :meth:`FaultInjector.fail_at` — fail on the *k*-th firing of one point
  (the chaos suite iterates every registered point this way);
* :meth:`FaultInjector.fail_randomly` — fail each firing with a seeded
  probability, for randomized-but-reproducible crash storms.

Two simulated failures exist.  :class:`InjectedFault` models an ordinary IO
error (``OSError``): cleanup handlers run, as they would for a full disk.
:class:`InjectedCrash` models a **power loss**: the durable-IO helpers
deliberately skip their cleanup when they see it, so temporary-file residue
survives exactly as it would after a hard crash.

Injection points are declared here, in one registry, so the chaos suite can
enumerate them without depending on import order — see
:data:`ALL_INJECTION_POINTS` and :func:`registered_points`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.util.rng import RandomSource, derive_rng


class InjectedFault(OSError):
    """A simulated IO failure raised by an armed injection point."""


class InjectedCrash(InjectedFault):
    """A simulated power loss: cleanup paths must not run after this.

    The durable-IO helpers re-raise this without deleting temporary files,
    so the on-disk state a test observes afterwards is the state a real
    crash would have left behind.
    """


@dataclass(frozen=True)
class FaultContext:
    """What an injection point was doing when it fired."""

    #: The registered point name, e.g. ``"persist.replace"``.
    point: str
    #: Path of the file being touched, when the point concerns a file.
    path: Optional[str] = None
    #: Free-form detail (relation.attribute for compile points, ...).
    detail: Optional[str] = None
    #: 1-based count of firings of this point within the active injector.
    call: int = 1


#: An armed behaviour: receives the context and (usually) raises.
FaultAction = Callable[[FaultContext], None]

_registry_lock = threading.Lock()
_REGISTERED: set[str] = set()


def register_injection_point(name: str) -> str:
    """Register *name* as a known injection point and return it.

    Arming an unregistered point is an error — this catches typos between
    the production code and the chaos suite.
    """
    if not isinstance(name, str) or not name:
        raise ValueError(f"injection point name must be a non-empty str, got {name!r}")
    with _registry_lock:
        _REGISTERED.add(name)
    return name


def registered_points() -> frozenset[str]:
    """Every injection point name registered so far."""
    with _registry_lock:
        return frozenset(_REGISTERED)


# ----------------------------------------------------------------------
# The injection points compiled into the production paths.
# ----------------------------------------------------------------------

#: Before the snapshot payload is serialised (nothing written yet).
POINT_PERSIST_SERIALIZE = register_injection_point("persist.serialize")
#: After the temporary snapshot file is chosen, before its payload is written.
POINT_PERSIST_WRITE_TMP = register_injection_point("persist.write-tmp")
#: After the payload is written, before flush + fsync of the temporary file.
POINT_PERSIST_FLUSH = register_injection_point("persist.flush")
#: After fsync, before the atomic ``os.replace`` publishes the snapshot.
POINT_PERSIST_REPLACE = register_injection_point("persist.replace")
#: After the replace, before the directory entry is fsynced.
POINT_PERSIST_DIRSYNC = register_injection_point("persist.dirsync")
#: Before a journal record is written to the append-only log.
POINT_JOURNAL_APPEND = register_injection_point("journal.append")
#: After the record is written, before the journal flush + fsync.
POINT_JOURNAL_FLUSH = register_injection_point("journal.flush")
#: Before the journal checkpoint rewrites the log.
POINT_JOURNAL_CHECKPOINT = register_injection_point("journal.checkpoint")
#: Before a catalog entry is compiled into a serving lookup table.
POINT_SERVE_COMPILE = register_injection_point("serve.compile")
#: Before an enqueue event is written to the durable job queue log.
POINT_QUEUE_ENQUEUE = register_injection_point("queue.enqueue")
#: Before a claim event (lease grant) is written to the queue log.
POINT_QUEUE_CLAIM = register_injection_point("queue.claim")
#: Before a lease-renewal (heartbeat) event is written to the queue log.
POINT_QUEUE_LEASE_RENEW = register_injection_point("queue.lease-renew")
#: Before an ack (job completed) event is written to the queue log.
POINT_QUEUE_ACK = register_injection_point("queue.ack")
#: Before a retry (failure + backoff) event is written to the queue log.
POINT_QUEUE_RETRY = register_injection_point("queue.retry")
#: Before a dead-letter event is written to the queue log.
POINT_QUEUE_DEAD_LETTER = register_injection_point("queue.dead-letter")
#: After a queue event is written, before the log flush + fsync.
POINT_QUEUE_FLUSH = register_injection_point("queue.flush")
#: Before the queue checkpoint rewrites the log.
POINT_QUEUE_CHECKPOINT = register_injection_point("queue.checkpoint")

#: The persistence-pipeline injection points, in pipeline order — the
#: snapshot/WAL chaos suite parametrizes over this tuple (its workload
#: exercises exactly these points, every one of which must fire).
PERSISTENCE_INJECTION_POINTS: tuple[str, ...] = (
    POINT_PERSIST_SERIALIZE,
    POINT_PERSIST_WRITE_TMP,
    POINT_PERSIST_FLUSH,
    POINT_PERSIST_REPLACE,
    POINT_PERSIST_DIRSYNC,
    POINT_JOURNAL_APPEND,
    POINT_JOURNAL_FLUSH,
    POINT_JOURNAL_CHECKPOINT,
    POINT_SERVE_COMPILE,
)

#: The durable-job-queue injection points, in event order — the agent
#: chaos suite parametrizes over this tuple.
QUEUE_INJECTION_POINTS: tuple[str, ...] = (
    POINT_QUEUE_ENQUEUE,
    POINT_QUEUE_CLAIM,
    POINT_QUEUE_LEASE_RENEW,
    POINT_QUEUE_ACK,
    POINT_QUEUE_RETRY,
    POINT_QUEUE_DEAD_LETTER,
    POINT_QUEUE_FLUSH,
    POINT_QUEUE_CHECKPOINT,
)

#: Every built-in injection point.
ALL_INJECTION_POINTS: tuple[str, ...] = (
    PERSISTENCE_INJECTION_POINTS + QUEUE_INJECTION_POINTS
)


@dataclass
class _Arm:
    """One armed trigger: fire *action* on call number *on_call*."""

    on_call: int
    action: FaultAction


_active_lock = threading.Lock()
_active: Optional["FaultInjector"] = None


def _crash_action(context: FaultContext) -> None:
    raise InjectedCrash(f"injected crash at {context.point} (call {context.call})")


def fault_point(
    point: str, *, path: Optional[str] = None, detail: Optional[str] = None
) -> None:
    """Fire the injection point *point*; a no-op unless an injector is active.

    Production call sites invoke this at every moment a crash could tear
    state.  The cost when no injector is entered is one global read.
    """
    injector = _active
    if injector is None:
        return
    injector._fire(point, path=path, detail=detail)


@dataclass
class FaultInjector:
    """Arms injection points and records every firing, deterministically.

    Use as a context manager; only the innermost entered injector is
    consulted (they do not nest — entering a second one while another is
    active raises, keeping chaos runs unambiguous).

    ``calls`` counts firings per point; ``triggered`` records the contexts
    whose armed action actually ran, so tests can assert the fault they
    scheduled really happened.
    """

    calls: dict[str, int] = field(default_factory=dict)
    triggered: list[FaultContext] = field(default_factory=list)
    _arms: dict[str, list[_Arm]] = field(default_factory=dict)
    _random_rate: float = 0.0
    _random_points: Optional[frozenset[str]] = None
    _random_action: Optional[FaultAction] = None
    _rng: Optional[object] = None
    _lock: threading.Lock = field(default_factory=threading.Lock)

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------

    def fail_at(
        self,
        point: str,
        *,
        on_call: int = 1,
        error: Optional[BaseException] = None,
        action: Optional[FaultAction] = None,
    ) -> "FaultInjector":
        """Arm *point* to fail on its *on_call*-th firing (1-based).

        By default the failure is an :class:`InjectedCrash` (simulated power
        loss).  Pass ``error=`` to raise a specific exception instance (for
        example a plain ``OSError`` whose cleanup handlers should run), or
        ``action=`` for arbitrary behaviour such as truncating a file before
        raising.  Returns ``self`` so arms can be chained.
        """
        if point not in registered_points():
            raise ValueError(
                f"unknown injection point {point!r}; registered points are "
                f"{sorted(registered_points())}"
            )
        if on_call < 1:
            raise ValueError(f"on_call must be >= 1, got {on_call}")
        if error is not None and action is not None:
            raise ValueError("pass either error= or action=, not both")
        if error is not None:
            def action(context: FaultContext, _error: BaseException = error) -> None:
                raise _error
        with self._lock:
            self._arms.setdefault(point, []).append(
                _Arm(on_call=on_call, action=action or _crash_action)
            )
        return self

    def fail_randomly(
        self,
        *,
        rate: float,
        seed: RandomSource,
        points: Optional[Iterable[str]] = None,
        action: Optional[FaultAction] = None,
    ) -> "FaultInjector":
        """Arm a seeded random failure schedule over *points* (default: all).

        Each firing of a matched point fails with probability *rate*, drawn
        from a generator derived from *seed* — the schedule is a pure
        function of the seed and the firing sequence, so a failing chaos
        run replays exactly.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be within [0, 1], got {rate}")
        known = registered_points()
        selected = known if points is None else frozenset(points)
        unknown = selected - known
        if unknown:
            raise ValueError(f"unknown injection points: {sorted(unknown)}")
        with self._lock:
            self._random_rate = float(rate)
            self._random_points = selected
            self._random_action = action or _crash_action
            self._rng = derive_rng(seed)
        return self

    # ------------------------------------------------------------------
    # Firing (called from fault_point)
    # ------------------------------------------------------------------

    def _fire(self, point: str, *, path: Optional[str], detail: Optional[str]) -> None:
        with self._lock:
            call = self.calls.get(point, 0) + 1
            self.calls[point] = call
            context = FaultContext(point=point, path=path, detail=detail, call=call)
            action: Optional[FaultAction] = None
            arms = self._arms.get(point)
            if arms is not None:
                for arm in arms:
                    if arm.on_call == call:
                        action = arm.action
                        break
            if (
                action is None
                and self._random_points is not None
                and point in self._random_points
                and self._rng is not None
                and float(self._rng.random()) < self._random_rate
            ):
                action = self._random_action
            if action is not None:
                self.triggered.append(context)
        if action is not None:
            action(context)

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        global _active
        with _active_lock:
            if _active is not None:
                raise RuntimeError("another FaultInjector is already active")
            _active = self
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        global _active
        with _active_lock:
            if _active is not self:
                raise RuntimeError("FaultInjector exited out of order")
            _active = None
