"""Deterministic test instrumentation compiled into the production paths.

The crash-safety guarantees of the statistics store (atomic snapshots,
write-ahead journaling, recovery with quarantine) are only as good as the
ways they have been made to fail.  This package hosts the fault-injection
framework the chaos suite drives: named injection points are compiled into
the durable-IO, journal, and table-compile paths, and a
:class:`~repro.testing.faults.FaultInjector` arms them deterministically —
either at an exact call count or from a seeded random schedule.

It also hosts the runtime lock sanitizer (:mod:`repro.testing.locksan`):
set ``REPRO_LOCKSAN=1`` and the test session wraps every newly created
``threading.Lock``/``RLock`` to detect lock-order inversions,
self-deadlocks, and contention hot spots while the threaded stress and
chaos suites run.
"""

from __future__ import annotations

from repro.testing.faults import (
    FaultContext,
    FaultInjector,
    InjectedCrash,
    InjectedFault,
    fault_point,
    register_injection_point,
    registered_points,
)
from repro.testing.locksan import (
    LOCKSAN_ENV,
    LockSanFinding,
    locksan_requested,
)

__all__ = [
    "FaultContext",
    "FaultInjector",
    "InjectedCrash",
    "InjectedFault",
    "LOCKSAN_ENV",
    "LockSanFinding",
    "fault_point",
    "locksan_requested",
    "register_injection_point",
    "registered_points",
]
