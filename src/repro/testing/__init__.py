"""Deterministic test instrumentation compiled into the production paths.

The crash-safety guarantees of the statistics store (atomic snapshots,
write-ahead journaling, recovery with quarantine) are only as good as the
ways they have been made to fail.  This package hosts the fault-injection
framework the chaos suite drives: named injection points are compiled into
the durable-IO, journal, and table-compile paths, and a
:class:`~repro.testing.faults.FaultInjector` arms them deterministically —
either at an exact call count or from a seeded random schedule.
"""

from __future__ import annotations

from repro.testing.faults import (
    FaultContext,
    FaultInjector,
    InjectedCrash,
    InjectedFault,
    fault_point,
    register_injection_point,
    registered_points,
)

__all__ = [
    "FaultContext",
    "FaultInjector",
    "InjectedCrash",
    "InjectedFault",
    "fault_point",
    "register_injection_point",
    "registered_points",
]
