"""Synthetic frequency-set shapes beyond the Zipf family.

The paper's discussion motivates several non-Zipf shapes:

* the *reverse Zipf* distribution (many high frequencies, few low ones) for
  which the sampling shortcut of Section 4.2 fails;
* near-uniform distributions, for which the advisor should report that one
  or two buckets suffice;
* multi-modal ("peaky") distributions, the weak spot of algebraic
  approximations cited in the introduction.

All generators return frequency vectors normalised to a requested total so
they can be swapped freely for ``zipf_frequencies`` in any experiment.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import RandomSource, derive_rng
from repro.util.validation import ensure_in_range, ensure_positive, ensure_positive_int


def _normalise(weights: np.ndarray, total: float) -> np.ndarray:
    weights = np.asarray(weights, dtype=float)
    if np.any(weights < 0):
        raise ValueError("frequency weights must be non-negative")
    s = weights.sum()
    if s <= 0:
        raise ValueError("frequency weights must have positive sum")
    return total * weights / s


def uniform_frequencies(total: float, domain_size: int) -> np.ndarray:
    """Return the uniform frequency vector (``z = 0`` Zipf)."""
    total = ensure_positive(total, "total")
    domain_size = ensure_positive_int(domain_size, "domain_size")
    return np.full(domain_size, total / domain_size)


def reverse_zipf_frequencies(total: float, domain_size: int, z: float) -> np.ndarray:
    """Return a "reverse Zipf" vector: many high frequencies, few low ones.

    Built by reflecting the Zipf weights about their mean so the frequency
    *multiset* has the mirrored shape the paper calls "in some sense, the
    reverse of Zipf distributions" — the case where low frequencies, not high
    ones, belong in the univalued buckets of an end-biased histogram.
    """
    total = ensure_positive(total, "total")
    domain_size = ensure_positive_int(domain_size, "domain_size")
    z = ensure_in_range(z, "z", low=0.0)
    ranks = np.arange(1, domain_size + 1, dtype=float)
    weights = ranks**-z
    reflected = weights.max() + weights.min() - weights
    return _normalise(np.sort(reflected)[::-1], total)


def normal_frequencies(
    total: float, domain_size: int, spread: float = 0.25, rng: RandomSource = None
) -> np.ndarray:
    """Return frequencies drawn from a truncated normal around the mean.

    *spread* is the coefficient of variation before truncation; small values
    give near-uniform sets (useful for advisor tests).
    """
    total = ensure_positive(total, "total")
    domain_size = ensure_positive_int(domain_size, "domain_size")
    spread = ensure_in_range(spread, "spread", low=0.0)
    gen = derive_rng(rng)
    base = np.clip(gen.normal(1.0, spread, size=domain_size), 1e-9, None)
    return _normalise(base, total)


def step_frequencies(
    total: float, domain_size: int, high_fraction: float = 0.1, ratio: float = 10.0
) -> np.ndarray:
    """Return a two-level step distribution.

    A fraction *high_fraction* of the values carries frequencies *ratio*
    times larger than the rest — the idealised "few high, many low" shape for
    which end-biased histograms are exact once ``β − 1`` covers the high step.
    """
    total = ensure_positive(total, "total")
    domain_size = ensure_positive_int(domain_size, "domain_size")
    high_fraction = ensure_in_range(high_fraction, "high_fraction", low=0.0, high=1.0)
    ratio = ensure_positive(ratio, "ratio")
    high_count = int(round(high_fraction * domain_size))
    weights = np.ones(domain_size)
    weights[:high_count] = ratio
    return _normalise(weights, total)


def mixture_frequencies(
    total: float,
    domain_size: int,
    modes: int = 3,
    concentration: float = 5.0,
    rng: RandomSource = None,
) -> np.ndarray:
    """Return a multi-modal ("peaky") frequency vector.

    Frequencies are a mixture of *modes* geometric decays started at random
    offsets, producing the many-peaked shapes that defeat low-degree
    polynomial approximations (the paper's critique of algebraic techniques).
    Returned sorted in descending order, as a frequency multiset.
    """
    total = ensure_positive(total, "total")
    domain_size = ensure_positive_int(domain_size, "domain_size")
    modes = ensure_positive_int(modes, "modes")
    concentration = ensure_positive(concentration, "concentration")
    gen = derive_rng(rng)
    positions = np.arange(domain_size, dtype=float)
    weights = np.zeros(domain_size)
    centers = gen.uniform(0, domain_size, size=modes)
    for center in centers:
        weights += np.exp(-np.abs(positions - center) / (domain_size / concentration))
    weights += 1e-3
    return _normalise(np.sort(weights)[::-1], total)
