"""Frequency-distribution generators used throughout the experiments.

The paper's synthetic evaluation draws every frequency set from the Zipf
family (its equation (1)); this package also provides the "reverse Zipf"
shape discussed in Section 4.2, several generic synthetic shapes, integer
quantization, and a surrogate for the paper's real-life (NBA statistics)
dataset.
"""

from __future__ import annotations

from repro.data.zipf import zipf_frequencies, zipf_self_join_size, zipf_skew_series
from repro.data.synthetic import (
    mixture_frequencies,
    normal_frequencies,
    reverse_zipf_frequencies,
    step_frequencies,
    uniform_frequencies,
)
from repro.data.quantize import quantize_to_integers
from repro.data.realworld import PlayerSeason, nba_player_statistics, player_stat_frequency_set

__all__ = [
    "zipf_frequencies",
    "zipf_self_join_size",
    "zipf_skew_series",
    "uniform_frequencies",
    "reverse_zipf_frequencies",
    "normal_frequencies",
    "step_frequencies",
    "mixture_frequencies",
    "quantize_to_integers",
    "PlayerSeason",
    "nba_player_statistics",
    "player_stat_frequency_set",
]
