"""Integer quantization of real-valued frequency vectors.

The paper's formulation allows non-negative real matrix entries but notes
that "for database applications, all entries will be non-negative integers".
The largest-remainder method below rounds a real frequency vector to integers
while preserving its exact total, so quantized experiments keep the relation
size ``T`` intact.
"""

from __future__ import annotations

import numpy as np


def quantize_to_integers(frequencies: np.ndarray) -> np.ndarray:
    """Round *frequencies* to non-negative integers preserving the total.

    Uses the largest-remainder (Hamilton) method: floor every entry, then
    distribute the leftover units to the entries with the largest fractional
    parts (ties broken by original magnitude, then index, for determinism).
    The input total must itself be integral to within float precision.
    """
    arr = np.asarray(frequencies, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"frequencies must be one-dimensional, got shape {arr.shape}")
    if np.any(arr < 0) or np.any(~np.isfinite(arr)):
        raise ValueError("frequencies must be finite and non-negative")
    total = arr.sum()
    rounded_total = round(total)
    if abs(total - rounded_total) > 1e-6 * max(1.0, abs(total)):
        raise ValueError(
            f"total frequency {total} is not integral; cannot quantize exactly"
        )
    floors = np.floor(arr).astype(np.int64)
    leftover = int(rounded_total - floors.sum())
    if leftover == 0:
        return floors
    remainders = arr - floors
    # Rank by remainder (descending), then magnitude (descending), then index.
    order = np.lexsort((np.arange(arr.size), -arr, -remainders))
    result = floors.copy()
    result[order[:leftover]] += 1
    return result
