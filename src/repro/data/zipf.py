"""Zipf frequency distributions — equation (1) of the paper.

For a relation of size ``T`` and a join-domain of size ``M``, the paper
generates frequencies

    t_i = T * (1 / i^z) / sum_{j=1..M} (1 / j^z),        i = 1..M,

where ``z >= 0`` controls the skew: ``z = 0`` is the uniform distribution and
larger ``z`` concentrates mass on few values (Figure 1).  Frequencies are
returned in *rank order* (descending); experiments permute them over domain
values separately.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.validation import ensure_in_range, ensure_positive, ensure_positive_int


def zipf_frequencies(total: float, domain_size: int, z: float) -> np.ndarray:
    """Return the Zipf frequency vector of equation (1), highest rank first.

    Parameters
    ----------
    total:
        Relation size ``T`` (sum of all frequencies).  The paper notes the
        relation size "has provably no effect on any result" beyond scale.
    domain_size:
        Number of distinct attribute values ``M``.
    z:
        Skew parameter; ``z = 0`` yields the uniform distribution.

    The returned vector sums to *total* exactly (up to float rounding) and is
    sorted in descending order, matching the paper's rank-ordered Figure 1.
    """
    total = ensure_positive(total, "total")
    domain_size = ensure_positive_int(domain_size, "domain_size")
    z = ensure_in_range(z, "z", low=0.0)
    ranks = np.arange(1, domain_size + 1, dtype=float)
    weights = ranks**-z
    return total * weights / weights.sum()


def zipf_self_join_size(total: float, domain_size: int, z: float) -> float:
    """Closed-form self-join size of a Zipf relation.

    ``Σ_i t_i² = T² · H(2z) / H(z)²`` with ``H(s) = Σ_{i=1..M} i^{-s}`` —
    the generalised harmonic number.  Used by tests to anchor experiment
    scales (e.g. the paper's "Result Size 60780" for T=1000, M=100, z=1)
    without materialising the vector.
    """
    total = ensure_positive(total, "total")
    domain_size = ensure_positive_int(domain_size, "domain_size")
    z = ensure_in_range(z, "z", low=0.0)
    ranks = np.arange(1, domain_size + 1, dtype=float)
    h_z = float(np.sum(ranks**-z))
    h_2z = float(np.sum(ranks ** (-2 * z)))
    return total * total * h_2z / (h_z * h_z)


def zipf_skew_series(
    total: float, domain_size: int, z_values: Sequence[float]
) -> dict[float, np.ndarray]:
    """Return ``{z: frequency vector}`` for each skew in *z_values*.

    Convenience wrapper used to regenerate Figure 1, where the paper plots
    the family ``z = 0, 0.02, ..., 0.1`` for ``T = 1000, M = 100``.
    """
    series = {}
    for z in z_values:
        series[float(z)] = zipf_frequencies(total, domain_size, z)
    return series
