"""Surrogate for the paper's real-life dataset (NBA player statistics).

Section 5.1.2 reports experiments on "performance measures of NBA players"
whose results "verified what was observed for the Zipf distribution, despite
the wide variety of distributions exhibited by the data".  The original data
is not available, so this module generates a season of per-player counting
statistics with the documented qualitative shapes:

* *points / minutes*: heavy-tailed — a few stars, a long bench tail;
* *games played*: saturating near the season maximum with an injury tail;
* *three-pointers*: zero-inflated (many players attempt none);
* *rebounds / assists*: role-dependent bimodal mixtures.

The substitution preserves the relevant behaviour because the experiments
consume only the *frequency sets* of these attributes, and the shapes above
span the same regimes (near-uniform, skewed, multi-modal, zero-inflated) the
paper credits the real data with.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable

import numpy as np

from repro.util.rng import RandomSource, derive_rng
from repro.util.validation import ensure_positive_int

#: Attribute names exposed by :func:`player_stat_frequency_set`.
STAT_ATTRIBUTES = ("games", "minutes", "points", "rebounds", "assists", "threes")


@dataclass(frozen=True)
class PlayerSeason:
    """One player's counting statistics for a season."""

    player_id: int
    games: int
    minutes: int
    points: int
    rebounds: int
    assists: int
    threes: int

    def as_row(self) -> tuple:
        """Return the season as a tuple in declaration order."""
        return tuple(getattr(self, f.name) for f in fields(self))


def nba_player_statistics(
    players: int = 400, rng: RandomSource = 1995
) -> list[PlayerSeason]:
    """Generate a synthetic season of per-player statistics.

    The default *players* count matches the size of a mid-1990s NBA season
    (~27 teams x ~15 roster spots).  The default seed pins the dataset so the
    experiment harness is reproducible; pass ``rng=None`` for fresh data.
    """
    players = ensure_positive_int(players, "players")
    gen = derive_rng(rng)

    # Star quality: lognormal talent scale shared across stats.
    talent = gen.lognormal(mean=0.0, sigma=0.9, size=players)
    talent /= talent.max()

    games = np.minimum(82, gen.binomial(82, 0.55 + 0.4 * talent)).astype(int)
    minutes = (games * (8 + 32 * talent) * gen.uniform(0.85, 1.15, players)).astype(int)
    points = np.maximum(0, (minutes * (0.25 + 0.45 * talent))).astype(int)

    # Role split: bigs rebound, guards assist; mixture of two behaviours.
    is_guard = gen.random(players) < 0.5
    rebounds = np.where(
        is_guard,
        (minutes * 0.06 * gen.uniform(0.5, 1.5, players)).astype(int),
        (minutes * 0.18 * gen.uniform(0.6, 1.4, players)).astype(int),
    )
    assists = np.where(
        is_guard,
        (minutes * 0.14 * gen.uniform(0.6, 1.4, players)).astype(int),
        (minutes * 0.04 * gen.uniform(0.5, 1.5, players)).astype(int),
    )

    # Zero-inflated three-pointers: centres of the era rarely attempted any.
    shoots_threes = gen.random(players) < 0.55
    threes = np.where(
        shoots_threes,
        gen.poisson(np.maximum(1.0, 60 * talent)),
        0,
    ).astype(int)

    return [
        PlayerSeason(
            player_id=i,
            games=int(games[i]),
            minutes=int(minutes[i]),
            points=int(points[i]),
            rebounds=int(rebounds[i]),
            assists=int(assists[i]),
            threes=int(threes[i]),
        )
        for i in range(players)
    ]


def player_stat_frequency_set(
    seasons: Iterable[PlayerSeason], attribute: str
) -> np.ndarray:
    """Return the frequency set of *attribute* over *seasons*.

    The frequency of a value is the number of players sharing it — exactly
    what the paper's ``Matrix`` statistics-collection step would compute over
    a ``PlayerStats`` relation.  Returned in descending order.
    """
    if attribute not in STAT_ATTRIBUTES:
        raise ValueError(
            f"unknown attribute {attribute!r}; expected one of {STAT_ATTRIBUTES}"
        )
    values = [getattr(season, attribute) for season in seasons]
    if not values:
        raise ValueError("seasons must be non-empty")
    _, counts = np.unique(np.asarray(values), return_counts=True)
    return np.sort(counts.astype(float))[::-1]
