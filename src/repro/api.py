"""The blessed one-import surface of the reproduction.

``repro.api`` re-exports the stable names an application needs, grouped by
layer, so downstream code can write::

    from repro import api

    freqs = api.zipf_frequencies(total=10_000, domain_size=200, z=1.0)
    hist = api.v_opt_bias_hist(freqs, buckets=10, values=range(200))
    mass = api.estimate_range(hist, 5, 50)

or import the names directly (``from repro.api import EstimationService``).
Anything importable here follows the project's deprecation policy: removed
spellings keep a shim for one minor release, announced via
``DeprecationWarning`` and the migration table in ``docs/API.md``.
Internal modules (``repro.core.*``, ``repro.serve.tables``, ...) remain
importable but offer no such promise.

Layers
------
* **frequency data** — Zipf generators and distributions (Section 2);
* **histograms** — the taxonomy and construction algorithms (Sections 3-4);
* **estimation** — scalar result-size estimators over value-aware
  histograms (Sections 2.2, 5.2, 6), sharing :class:`EstimateOptions`;
* **engine** — relations, ANALYZE, and the statistics catalog;
* **serving** — compiled lookup tables and batched estimation
  (:class:`EstimationService`), the layer every estimator answers through;
* **network serving** — the wire boundary around the service
  (:class:`EstimationServer`, the sync/async client SDK, and the
  versioned wire schema; see ``docs/NETWORK.md``);
* **optimizer / SQL** — cardinality estimation, planning, and the
  in-memory :class:`Database`.
"""

from __future__ import annotations

# Frequency data ------------------------------------------------------------
from repro.core.frequency import AttributeDistribution, FrequencySet
from repro.data.zipf import zipf_frequencies

# Histograms ----------------------------------------------------------------
from repro.core.biased import end_biased_histogram, v_opt_bias_hist
from repro.core.heuristic import (
    equi_depth_histogram,
    equi_width_histogram,
    trivial_histogram,
)
from repro.core.histogram import Histogram
from repro.core.serial import (
    v_opt_hist_dp,
    v_opt_hist_exhaustive,
    v_optimal_serial_histogram,
)

# Estimation ----------------------------------------------------------------
from repro.core.estimator import (
    EstimateOptions,
    approximate_chain,
    estimate_chain,
    estimate_equality,
    estimate_join,
    estimate_membership,
    estimate_not_equal,
    estimate_range,
    estimate_self_join,
    relative_error,
)

# Engine --------------------------------------------------------------------
from repro.engine.analyze import analyze_database, analyze_relation
from repro.engine.catalog import CatalogEntry, CompactEndBiased, StatsCatalog
from repro.engine.relation import Relation

# Maintenance ---------------------------------------------------------------
from repro.maint.update import MaintainedEndBiased, MaintenancePolicy

# Serving -------------------------------------------------------------------
from repro.serve import (
    ON_ERROR_POLICIES,
    EqualityProbe,
    EstimationService,
    JoinProbe,
    Probe,
    ProbeTrace,
    RangeProbe,
    ServiceMetrics,
    compile_histogram,
)

# Network serving ------------------------------------------------------------
from repro.net import (
    WIRE_SCHEMA_VERSION,
    AsyncEstimationClient,
    EstimationClient,
    EstimationServer,
    TenantConfig,
    connect,
    connect_async,
    probe_from_wire,
    probe_to_wire,
    probes_from_wire,
    probes_to_wire,
    serve_in_thread,
)

# Optimizer and SQL ---------------------------------------------------------
from repro.optimizer.cardinality import CardinalityEstimator
from repro.sql.database import Database
from repro.sql.planner import plan_query

__all__ = [
    # frequency data
    "AttributeDistribution",
    "FrequencySet",
    "zipf_frequencies",
    # histograms
    "Histogram",
    "end_biased_histogram",
    "equi_depth_histogram",
    "equi_width_histogram",
    "trivial_histogram",
    "v_opt_bias_hist",
    "v_opt_hist_dp",
    "v_opt_hist_exhaustive",
    "v_optimal_serial_histogram",
    # estimation
    "EstimateOptions",
    "approximate_chain",
    "estimate_chain",
    "estimate_equality",
    "estimate_join",
    "estimate_membership",
    "estimate_not_equal",
    "estimate_range",
    "estimate_self_join",
    "relative_error",
    # engine
    "CatalogEntry",
    "CompactEndBiased",
    "Relation",
    "StatsCatalog",
    "analyze_database",
    "analyze_relation",
    # maintenance
    "MaintainedEndBiased",
    "MaintenancePolicy",
    # serving
    "ON_ERROR_POLICIES",
    "EqualityProbe",
    "EstimationService",
    "JoinProbe",
    "Probe",
    "ProbeTrace",
    "RangeProbe",
    "ServiceMetrics",
    "compile_histogram",
    # network serving
    "WIRE_SCHEMA_VERSION",
    "AsyncEstimationClient",
    "EstimationClient",
    "EstimationServer",
    "TenantConfig",
    "connect",
    "connect_async",
    "probe_from_wire",
    "probe_to_wire",
    "probes_from_wire",
    "probes_to_wire",
    "serve_in_thread",
    # optimizer / SQL
    "CardinalityEstimator",
    "Database",
    "plan_query",
]
