"""Physical operators: selection, projection, hash join, cross product.

These materialise their results as new :class:`~repro.engine.relation.Relation`
objects — sufficient for the ground-truth executor and the optimizer-cost
experiments at reproduction scale.  Output attribute names are qualified
(``relation.attribute``) on collision, mirroring SQL disambiguation.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

from repro.analysis.contracts import contracts_enabled, require
from repro.engine.relation import Relation
from repro.engine.schema import Attribute, Schema


def _ensure_relation(value: Relation, name: str) -> Relation:
    """Boundary check: operators only accept engine relations."""
    if not isinstance(value, Relation):
        raise TypeError(f"{name} must be a Relation, got {type(value).__name__}")
    return value


def select(relation: Relation, predicate: Callable[[tuple], bool], name: str = "") -> Relation:
    """Filter tuples by *predicate* (a function of the raw row tuple)."""
    _ensure_relation(relation, "relation")
    if not callable(predicate):
        raise TypeError("predicate must be callable on a row tuple")
    result_name = name or f"select({relation.name})"
    rows = [row for row in relation.rows() if predicate(row)]
    result = Relation(result_name, relation.schema, rows)
    if contracts_enabled():
        require(
            result.cardinality <= relation.cardinality,
            "selection must not increase cardinality",
        )
    return result


def select_equals(relation: Relation, attribute: str, value: Hashable, name: str = "") -> Relation:
    """Equality selection ``attribute = value``."""
    _ensure_relation(relation, "relation")
    position = relation.schema.position(attribute)
    return select(
        relation,
        lambda row: row[position] == value,
        name or f"{relation.name}[{attribute}={value!r}]",
    )


def project(relation: Relation, attributes: Sequence[str], name: str = "") -> Relation:
    """Bag projection onto *attributes* (duplicates preserved)."""
    _ensure_relation(relation, "relation")
    positions = [relation.schema.position(a) for a in attributes]
    schema = Schema([relation.schema.attributes[p] for p in positions])
    rows = [tuple(row[p] for p in positions) for row in relation.rows()]
    return Relation(name or f"project({relation.name})", schema, rows)


def _merged_schema(left: Relation, right: Relation) -> Schema:
    attributes: list[Attribute] = []
    left_names = set(left.schema.names)
    for attribute in left.schema:
        attributes.append(attribute)
    for attribute in right.schema:
        if attribute.name in left_names:
            attributes.append(Attribute(f"{right.name}.{attribute.name}", attribute.dtype))
        else:
            attributes.append(attribute)
    return Schema(attributes)


def hash_join(
    left: Relation,
    right: Relation,
    left_attribute: str,
    right_attribute: str,
    name: str = "",
) -> Relation:
    """Equality hash join: build on the smaller input, probe with the larger.

    The result concatenates the full tuples of both sides, so its
    cardinality is the exact join size — the quantity all histogram
    estimates approximate.

    Contract (``REPRO_CONTRACTS=1``): the materialised cardinality must equal
    the frequency-product count of :func:`join_size` (Theorem 2.1).
    """
    _ensure_relation(left, "left")
    _ensure_relation(right, "right")
    build, probe = (left, right) if left.cardinality <= right.cardinality else (right, left)
    build_attr = left_attribute if build is left else right_attribute
    probe_attr = right_attribute if probe is right else left_attribute

    build_position = build.schema.position(build_attr)
    table: dict = {}
    for row in build.rows():
        table.setdefault(row[build_position], []).append(row)

    probe_position = probe.schema.position(probe_attr)
    joined_rows = []
    left_first = build is left
    for row in probe.rows():
        for match in table.get(row[probe_position], ()):  # build-side rows
            if left_first:
                joined_rows.append(match + row)
            else:
                joined_rows.append(row + match)

    schema = _merged_schema(left, right)
    result = Relation(name or f"({left.name} ⋈ {right.name})", schema, joined_rows)
    if contracts_enabled():
        expected = join_size(left, right, left_attribute, right_attribute)
        require(
            result.cardinality == expected,
            f"hash_join materialised {result.cardinality} rows but the "
            f"frequency product (Theorem 2.1) counts {expected}",
        )
    return result


def join_size(
    left: Relation, right: Relation, left_attribute: str, right_attribute: str
) -> int:
    """Exact join cardinality without materialising the result.

    Counts matches through the per-value frequency product — Theorem 2.1
    evaluated directly on hash-counted frequencies.
    """
    _ensure_relation(left, "left")
    _ensure_relation(right, "right")
    left_counts: dict = {}
    for value in left.column(left_attribute):
        left_counts[value] = left_counts.get(value, 0) + 1
    total = 0
    for value in right.column(right_attribute):
        total += left_counts.get(value, 0)
    return total


def cross_product(left: Relation, right: Relation, name: str = "") -> Relation:
    """Cartesian product (used only by tests at tiny scale)."""
    _ensure_relation(left, "left")
    _ensure_relation(right, "right")
    schema = _merged_schema(left, right)
    rows = [l + r for l in left.rows() for r in right.rows()]
    return Relation(name or f"({left.name} × {right.name})", schema, rows)
