"""Chain-join execution: ground-truth result sizes for the estimators.

A chain join over engine relations is described by a
:class:`ChainJoinSpec`; :func:`execute_chain_join` materialises the result
with hash joins while :func:`chain_join_size` computes only the cardinality
by multiplying hash-counted frequency matrices (Theorem 2.1).  The test
suite asserts both agree, tying the paper's linear-algebra view of query
sizes to an operational executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.matrix import FrequencyMatrix, chain_result_size
from repro.engine.operators import hash_join
from repro.engine.relation import Relation


@dataclass(frozen=True)
class ChainJoinSpec:
    """A chain query ``R0.a1 = R1.a1 and R1.a2 = R2.a2 and ...``.

    ``join_attributes[j] = (left_attr, right_attr)`` names the join columns
    between ``relations[j]`` and ``relations[j+1]``.  The paper's canonical
    form uses the same attribute name on both sides (``R_j.a_{j+1} =
    R_{j+1}.a_{j+1}``); distinct names are allowed for convenience.
    """

    relations: tuple[Relation, ...]
    join_attributes: tuple[tuple[str, str], ...]

    def __post_init__(self):
        if len(self.relations) < 2:
            raise ValueError("a chain join needs at least two relations")
        if len(self.join_attributes) != len(self.relations) - 1:
            raise ValueError(
                f"{len(self.relations)} relations need "
                f"{len(self.relations) - 1} join predicates, got "
                f"{len(self.join_attributes)}"
            )
        for j, (left_attr, right_attr) in enumerate(self.join_attributes):
            if left_attr not in self.relations[j].schema:
                raise ValueError(
                    f"relation {self.relations[j].name!r} has no attribute {left_attr!r}"
                )
            if right_attr not in self.relations[j + 1].schema:
                raise ValueError(
                    f"relation {self.relations[j + 1].name!r} has no attribute {right_attr!r}"
                )

    @property
    def num_joins(self) -> int:
        return len(self.join_attributes)



def _ensure_chain_spec(spec: ChainJoinSpec) -> ChainJoinSpec:
    """Boundary check: the executor only accepts a ChainJoinSpec."""
    if not isinstance(spec, ChainJoinSpec):
        raise TypeError(f"spec must be a ChainJoinSpec, got {type(spec).__name__}")
    return spec


def execute_chain_join(spec: ChainJoinSpec) -> Relation:
    """Materialise the chain join left to right with hash joins.

    Attribute names can be qualified (``relation.attribute``) when a join
    merges colliding names — e.g. the canonical chain reuses each join
    attribute's name in two adjacent relations — so the executor tracks the
    *current* name of every original attribute through the pipeline.
    """
    _ensure_chain_spec(spec)
    result = spec.relations[0]
    # current_name[(relation_position, original_attribute)] -> name in result.
    current_name = {
        (0, attribute): attribute for attribute in spec.relations[0].schema.names
    }
    for j, (left_attr, right_attr) in enumerate(spec.join_attributes):
        right = spec.relations[j + 1]
        probe_attr = current_name[(j, left_attr)]
        taken = set(result.schema.names)
        result = hash_join(result, right, probe_attr, right_attr)
        for attribute in right.schema.names:
            if attribute in taken:
                current_name[(j + 1, attribute)] = f"{right.name}.{attribute}"
            else:
                current_name[(j + 1, attribute)] = attribute
    return result


def frequency_matrices_for_chain(spec: ChainJoinSpec) -> list[FrequencyMatrix]:
    """Hash-count the per-relation frequency matrices over shared domains.

    The end relations produce vectors over the join domain; interior
    relations produce 2-D matrices over (incoming, outgoing) join attribute
    pairs.  All matrices are aligned on the *union* of observed values per
    join domain so the chain product is well defined.
    """
    _ensure_chain_spec(spec)
    num_relations = len(spec.relations)
    # Join domain j sits between relations j and j+1.
    domains: list[list] = []
    for j, (left_attr, right_attr) in enumerate(spec.join_attributes):
        values = set(spec.relations[j].column(left_attr)) | set(
            spec.relations[j + 1].column(right_attr)
        )
        domains.append(sorted(values))

    matrices: list[FrequencyMatrix] = []
    for position, relation in enumerate(spec.relations):
        if position == 0:
            attr = spec.join_attributes[0][0]
            domain = domains[0]
            index = {v: i for i, v in enumerate(domain)}
            vector = np.zeros(len(domain), dtype=np.float64)
            for value in relation.column(attr):
                vector[index[value]] += 1
            matrices.append(FrequencyMatrix.row_vector(vector, values=domain))
        elif position == num_relations - 1:
            attr = spec.join_attributes[-1][1]
            domain = domains[-1]
            index = {v: i for i, v in enumerate(domain)}
            vector = np.zeros(len(domain), dtype=np.float64)
            for value in relation.column(attr):
                vector[index[value]] += 1
            matrices.append(FrequencyMatrix.column_vector(vector, values=domain))
        else:
            in_attr = spec.join_attributes[position - 1][1]
            out_attr = spec.join_attributes[position][0]
            row_domain = domains[position - 1]
            col_domain = domains[position]
            row_index = {v: i for i, v in enumerate(row_domain)}
            col_index = {v: i for i, v in enumerate(col_domain)}
            array = np.zeros((len(row_domain), len(col_domain)), dtype=np.float64)
            for a, b in relation.column_pair(in_attr, out_attr):
                array[row_index[a], col_index[b]] += 1
            matrices.append(
                FrequencyMatrix(array, row_values=row_domain, col_values=col_domain)
            )
    return matrices


def chain_join_size(spec: ChainJoinSpec) -> float:
    """Exact chain-join cardinality via the frequency-matrix product."""
    _ensure_chain_spec(spec)
    return chain_result_size(frequency_matrices_for_chain(spec))
