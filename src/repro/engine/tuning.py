"""Statistics tuning: per-attribute bucket recommendations for a database.

Combines the Section 3.1 advisor (minimum buckets for an error tolerance)
with the frequency-profile statistics into the workflow a DBA would run:
scan every attribute, recommend a bucket count, and optionally ANALYZE with
the recommendations applied.  Near-uniform attributes get one bucket (the
paper's "one or two buckets will suffice"); heavily skewed ones get exactly
as many as the tolerance demands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.advisor import minimum_buckets, optimal_error_for_buckets
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.relation import Relation
from repro.util.stats import FrequencyProfile, profile_frequencies
from repro.util.validation import ensure_in_range, ensure_positive_int


@dataclass(frozen=True)
class Recommendation:
    """Advice for one (relation, attribute) pair."""

    relation: str
    attribute: str
    distinct_values: int
    recommended_buckets: int
    achieved_relative_error: float
    profile: FrequencyProfile

    def __str__(self) -> str:
        return (
            f"{self.relation}.{self.attribute}: beta={self.recommended_buckets} "
            f"(rel.err {self.achieved_relative_error:.4%}; {self.profile})"
        )


def recommend_statistics(
    relations: Iterable[Relation],
    *,
    tolerance: float = 0.01,
    kind: str = "end-biased",
    max_buckets: int = 100,
) -> list[Recommendation]:
    """Recommend per-attribute bucket counts meeting *tolerance*.

    The tolerance is relative to each attribute's exact self-join size —
    the v-optimality criterion — and the recommendation is capped at
    *max_buckets* (if the cap cannot meet the tolerance, the cap is
    returned with its achieved error, rather than failing).
    """
    tolerance = ensure_in_range(tolerance, "tolerance", low=0.0)
    max_buckets = ensure_positive_int(max_buckets, "max_buckets")
    recommendations = []
    for relation in relations:
        for attribute in relation.schema.names:
            distribution = relation.frequency_distribution(attribute)
            freqs = distribution.frequencies
            cap = min(max_buckets, distribution.domain_size)
            try:
                buckets = minimum_buckets(
                    freqs, tolerance, kind, max_buckets=cap
                )
            except ValueError:
                buckets = cap
            error = optimal_error_for_buckets(freqs, buckets, kind)
            exact = float(distribution.self_join_size())
            recommendations.append(
                Recommendation(
                    relation=relation.name,
                    attribute=attribute,
                    distinct_values=distribution.domain_size,
                    recommended_buckets=buckets,
                    achieved_relative_error=error / exact if exact else 0.0,
                    profile=profile_frequencies(freqs),
                )
            )
    return recommendations


def apply_recommendations(
    relations: Iterable[Relation],
    catalog: StatsCatalog,
    recommendations: Iterable[Recommendation],
    *,
    kind: str = "end-biased",
) -> int:
    """ANALYZE each recommended attribute with its recommended bucket count."""
    by_name = {relation.name: relation for relation in relations}
    count = 0
    for rec in recommendations:
        relation = by_name.get(rec.relation)
        if relation is None:
            raise KeyError(f"unknown relation {rec.relation!r} in recommendation")
        analyze_relation(
            relation,
            rec.attribute,
            catalog,
            kind=kind,
            buckets=rec.recommended_buckets,
        )
        count += 1
    return count


def tune_database(
    relations: Iterable[Relation],
    catalog: StatsCatalog,
    *,
    tolerance: float = 0.01,
    kind: str = "end-biased",
    max_buckets: int = 100,
) -> list[Recommendation]:
    """One-call tuning: recommend and immediately ANALYZE accordingly."""
    if not isinstance(catalog, StatsCatalog):
        raise TypeError(f"catalog must be a StatsCatalog, got {type(catalog).__name__}")
    relations = list(relations)
    recommendations = recommend_statistics(
        relations, tolerance=tolerance, kind=kind, max_buckets=max_buckets
    )
    apply_recommendations(relations, catalog, recommendations, kind=kind)
    return recommendations
