"""Catalog persistence: statistics survive restarts, like real catalogs.

Production systems keep histogram statistics in persistent catalog tables
(the paper points at DB2's ``SYSIBM.SYSCOLDIST``).  This module serialises
a :class:`~repro.engine.catalog.StatsCatalog` to JSON and back, preserving
full histograms (frequencies, bucket groups, values), compact end-biased
forms, and version counters.

Attribute values must be JSON-representable scalars (str, int, float,
bool); anything else raises with a clear message rather than degrading
silently.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.histogram import Histogram
from repro.engine.catalog import CatalogEntry, CompactEndBiased, StatsCatalog

_SCALARS = (str, int, float, bool)


def _check_value(value, context: str):
    if not isinstance(value, _SCALARS):
        raise TypeError(
            f"{context}: attribute value {value!r} of type "
            f"{type(value).__name__} is not JSON-serialisable"
        )
    return value


def _histogram_to_dict(histogram: Histogram) -> dict:
    return {
        "frequencies": [float(f) for f in histogram.frequencies],
        "groups": [list(group) for group in histogram.index_groups],
        "kind": histogram.kind,
        "values": (
            None
            if histogram.values is None
            else [_check_value(v, "histogram values") for v in histogram.values]
        ),
    }


def _histogram_from_dict(data: dict) -> Histogram:
    return Histogram(
        data["frequencies"],
        [tuple(group) for group in data["groups"]],
        kind=data["kind"],
        values=data["values"],
    )


def _compact_to_dict(compact: CompactEndBiased) -> dict:
    return {
        "explicit": [
            [_check_value(value, "compact explicit values"), float(freq)]
            for value, freq in compact.explicit.items()
        ],
        "remainder_count": compact.remainder_count,
        "remainder_average": compact.remainder_average,
    }


def _compact_from_dict(data: dict) -> CompactEndBiased:
    return CompactEndBiased(
        explicit={value: freq for value, freq in data["explicit"]},
        remainder_count=data["remainder_count"],
        remainder_average=data["remainder_average"],
    )


def catalog_to_dict(catalog: StatsCatalog) -> dict:
    """Serialise the catalog to a JSON-compatible dictionary."""
    if not isinstance(catalog, StatsCatalog):
        raise TypeError(f"catalog must be a StatsCatalog, got {type(catalog).__name__}")
    entries = []
    for entry in catalog.entries():
        entries.append(
            {
                "relation": entry.relation,
                "attribute": entry.attribute,
                "kind": entry.kind,
                "distinct_count": entry.distinct_count,
                "total_tuples": entry.total_tuples,
                "version": entry.version,
                "histogram": (
                    None if entry.histogram is None else _histogram_to_dict(entry.histogram)
                ),
                "compact": (
                    None if entry.compact is None else _compact_to_dict(entry.compact)
                ),
            }
        )
    return {"format": "repro-stats-catalog", "version": 1, "entries": entries}


def catalog_from_dict(data: dict) -> StatsCatalog:
    """Rebuild a catalog from :func:`catalog_to_dict` output."""
    if data.get("format") != "repro-stats-catalog":
        raise ValueError(
            f"not a repro stats catalog (format={data.get('format')!r})"
        )
    if data.get("version") != 1:
        raise ValueError(f"unsupported catalog version {data.get('version')!r}")
    catalog = StatsCatalog()
    for item in data["entries"]:
        entry = CatalogEntry(
            relation=item["relation"],
            attribute=item["attribute"],
            kind=item["kind"],
            histogram=(
                None if item["histogram"] is None else _histogram_from_dict(item["histogram"])
            ),
            compact=(
                None if item["compact"] is None else _compact_from_dict(item["compact"])
            ),
            distinct_count=item["distinct_count"],
            total_tuples=item["total_tuples"],
        )
        catalog.put(entry)
        entry.version = item["version"]  # preserve the original counter
    return catalog


def save_catalog(catalog: StatsCatalog, path: Union[str, Path]) -> None:
    """Write the catalog to *path* as JSON."""
    if not isinstance(catalog, StatsCatalog):
        raise TypeError(f"catalog must be a StatsCatalog, got {type(catalog).__name__}")
    path = Path(path)
    payload = json.dumps(catalog_to_dict(catalog), indent=2, sort_keys=True)
    path.write_text(payload)


def load_catalog(path: Union[str, Path]) -> StatsCatalog:
    """Read a catalog previously written by :func:`save_catalog`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no stats catalog at {path}")
    return catalog_from_dict(json.loads(path.read_text()))
