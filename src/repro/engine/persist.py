"""Crash-safe catalog persistence: versioned, checksummed, recoverable.

Production systems keep histogram statistics in persistent catalog tables
(the paper points at DB2's ``SYSIBM.SYSCOLDIST``), and those tables must
survive crashes.  This module serialises a
:class:`~repro.engine.catalog.StatsCatalog` to a durable on-disk format:

**Format** (version 2) — one JSON document with a format header and a list
of entries, each wrapped as ``{"checksum": crc32, "payload": {...}}``.
The checksum is CRC32 over the payload's canonical JSON encoding
(:func:`repro.engine.durable.canonical_json`), so a torn or hand-mangled
entry is detected at load time instead of silently poisoning estimates.
Version-1 files (the pre-checksum format) still load.

**Atomicity** — :func:`save_catalog` writes through
:func:`repro.engine.durable.atomic_write_text` (temp file + fsync +
``os.replace`` + directory fsync): a crash mid-save leaves the previous
snapshot intact, never a prefix of the new one.

**Recovery** — :func:`load_catalog` is strict by default (any corruption
raises :class:`CatalogFormatError`); with ``recover=True`` it returns a
:class:`RecoveryReport` instead, quarantining corrupt entries rather than
failing the whole load, and replaying the maintenance journal (see
:mod:`repro.engine.journal`) so acknowledged deltas survive a crash
between snapshot and rebuild.  Feed the report to
:meth:`repro.serve.EstimationService.apply_recovery` and quarantined
relations answer through the service's ``on_error`` degradation policy.

Attribute values must be JSON-representable finite scalars (str, int,
float, bool); anything else — including NaN/±inf, which ``json.dumps``
would otherwise emit as non-standard JSON — raises with a clear message
rather than degrading silently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.core.histogram import Histogram
from repro.engine.catalog import CatalogEntry, CompactEndBiased, StatsCatalog
from repro.engine.durable import (
    PathLike,
    atomic_write_text,
    canonical_json,
    check_finite,
    check_scalar,
    checksum,
)
from repro.engine.journal import (
    JournalReplayStats,
    MaintenanceJournal,
    read_journal,
    replay_records,
)
from repro.obs import runtime as obs
from repro.obs.tracing import span
from repro.testing.faults import POINT_PERSIST_SERIALIZE, fault_point

#: Format header values.
FORMAT_NAME = "repro-stats-catalog"
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

#: Histogram kinds the format round-trips; a hand-edited file naming any
#: other kind raises :class:`CatalogFormatError` instead of a deep error.
KNOWN_HISTOGRAM_KINDS = frozenset(
    {
        "trivial",
        "equi-width",
        "equi-depth",
        "serial",
        "end-biased",
        "biased",
        "max-diff",
        "compressed",
        "custom",
    }
)


class CatalogFormatError(ValueError):
    """The on-disk catalog (or one of its entries) violates the format."""


def _check_value(value: object, context: str) -> object:
    return check_scalar(value, context)


def _format_error(context: str, problem: str) -> CatalogFormatError:
    return CatalogFormatError(f"{context}: {problem}")


def _require_type(
    value: object, types: Union[type, tuple], context: str, problem: str
) -> object:
    if isinstance(value, bool) and bool not in (
        types if isinstance(types, tuple) else (types,)
    ):
        raise _format_error(context, f"{problem}, got {value!r}")
    if not isinstance(value, types):
        raise _format_error(context, f"{problem}, got {value!r}")
    return value


# ----------------------------------------------------------------------
# Histogram serialisation
# ----------------------------------------------------------------------


def _histogram_to_dict(histogram: Histogram) -> dict:
    if histogram.kind not in KNOWN_HISTOGRAM_KINDS:
        raise _format_error(
            "histogram", f"kind {histogram.kind!r} is not a persistable kind"
        )
    return {
        "frequencies": [
            check_finite(f, "histogram frequencies") for f in histogram.frequencies
        ],
        "groups": [list(group) for group in histogram.index_groups],
        "kind": histogram.kind,
        "values": (
            None
            if histogram.values is None
            else [_check_value(v, "histogram values") for v in histogram.values]
        ),
    }


def _histogram_from_dict(data: object) -> Histogram:
    context = "histogram"
    _require_type(data, dict, context, "histogram payload must be an object")
    for key in ("frequencies", "groups", "kind", "values"):
        if key not in data:
            raise _format_error(context, f"missing key {key!r}")
    frequencies = _require_type(
        data["frequencies"], list, context, "frequencies must be a list"
    )
    for freq in frequencies:
        _require_type(freq, (int, float), context, "frequencies must be numbers")
        check_finite(freq, "histogram frequencies")
    kind = _require_type(data["kind"], str, context, "kind must be a string")
    if kind not in KNOWN_HISTOGRAM_KINDS:
        raise _format_error(
            context,
            f"unknown histogram kind {kind!r}; expected one of "
            f"{sorted(KNOWN_HISTOGRAM_KINDS)}",
        )
    groups = _require_type(data["groups"], list, context, "groups must be a list")
    size = len(frequencies)
    for group in groups:
        _require_type(group, list, context, "each bucket group must be a list")
        for index in group:
            _require_type(index, int, context, "bucket indices must be integers")
            if not 0 <= index < size:
                raise _format_error(
                    context,
                    f"bucket index {index} out of bounds for {size} frequencies",
                )
    values = data["values"]
    if values is not None:
        _require_type(values, list, context, "values must be a list or null")
        if len(values) != size:
            raise _format_error(
                context,
                f"values length {len(values)} does not match "
                f"{size} frequencies",
            )
        for value in values:
            try:
                _check_value(value, "histogram values")
            except (TypeError, ValueError) as exc:
                raise _format_error(context, str(exc)) from exc
    try:
        return Histogram(
            frequencies,
            [tuple(group) for group in groups],
            kind=kind,
            values=values,
        )
    except (TypeError, ValueError) as exc:
        raise _format_error(context, f"invalid histogram: {exc}") from exc


# ----------------------------------------------------------------------
# Compact (end-biased) serialisation
# ----------------------------------------------------------------------


def _compact_to_dict(compact: CompactEndBiased) -> dict:
    return {
        "explicit": [
            [
                _check_value(value, "compact explicit values"),
                check_finite(freq, "compact explicit frequencies"),
            ]
            for value, freq in compact.explicit.items()
        ],
        "remainder_count": compact.remainder_count,
        "remainder_average": check_finite(
            compact.remainder_average, "compact remainder average"
        ),
    }


def _compact_from_dict(data: object) -> CompactEndBiased:
    context = "compact statistics"
    _require_type(data, dict, context, "compact payload must be an object")
    for key in ("explicit", "remainder_count", "remainder_average"):
        if key not in data:
            raise _format_error(context, f"missing key {key!r}")
    pairs = _require_type(
        data["explicit"], list, context, "explicit must be a list of [value, freq]"
    )
    explicit: dict = {}
    for pair in pairs:
        _require_type(pair, list, context, "explicit items must be [value, freq] pairs")
        if len(pair) != 2:
            raise _format_error(
                context, f"explicit items must be [value, freq] pairs, got {pair!r}"
            )
        value, freq = pair
        try:
            _check_value(value, "compact explicit values")
        except (TypeError, ValueError) as exc:
            raise _format_error(context, str(exc)) from exc
        _require_type(freq, (int, float), context, "explicit frequencies must be numbers")
        check_finite(freq, "compact explicit frequencies")
        explicit[value] = float(freq)
    count = _require_type(
        data["remainder_count"], int, context, "remainder_count must be an integer"
    )
    average = _require_type(
        data["remainder_average"],
        (int, float),
        context,
        "remainder_average must be a number",
    )
    check_finite(average, "compact remainder average")
    try:
        return CompactEndBiased(
            explicit=explicit,
            remainder_count=count,
            remainder_average=float(average),
        )
    except (TypeError, ValueError) as exc:
        raise _format_error(context, f"invalid compact statistics: {exc}") from exc


# ----------------------------------------------------------------------
# Entry serialisation
# ----------------------------------------------------------------------


def _entry_to_payload(entry: CatalogEntry) -> dict:
    return {
        "relation": entry.relation,
        "attribute": entry.attribute,
        "kind": entry.kind,
        "distinct_count": entry.distinct_count,
        "total_tuples": check_finite(
            entry.total_tuples, f"{entry.relation}.{entry.attribute} total_tuples"
        ),
        "version": entry.version,
        "journal_seq": entry.journal_seq,
        "histogram": (
            None if entry.histogram is None else _histogram_to_dict(entry.histogram)
        ),
        "compact": (None if entry.compact is None else _compact_to_dict(entry.compact)),
    }


def _entry_from_payload(payload: object) -> CatalogEntry:
    context = "catalog entry"
    _require_type(payload, dict, context, "entry payload must be an object")
    for key in (
        "relation",
        "attribute",
        "kind",
        "distinct_count",
        "total_tuples",
        "version",
        "histogram",
        "compact",
    ):
        if key not in payload:
            raise _format_error(context, f"missing key {key!r}")
    relation = _require_type(
        payload["relation"], str, context, "relation must be a string"
    )
    attribute = _require_type(
        payload["attribute"], str, context, "attribute must be a string"
    )
    context = f"catalog entry {relation}.{attribute}"
    kind = _require_type(payload["kind"], str, context, "kind must be a string")
    if not kind:
        raise _format_error(context, "kind must be a non-empty string")
    distinct = _require_type(
        payload["distinct_count"], int, context, "distinct_count must be an integer"
    )
    if distinct < 0:
        raise _format_error(context, f"distinct_count must be >= 0, got {distinct}")
    total = _require_type(
        payload["total_tuples"], (int, float), context, "total_tuples must be a number"
    )
    check_finite(total, f"{context} total_tuples")
    version = _require_type(
        payload["version"], int, context, "version must be an integer"
    )
    if version < 0:
        raise _format_error(context, f"version must be >= 0, got {version}")
    journal_seq = payload.get("journal_seq", 0)
    _require_type(journal_seq, int, context, "journal_seq must be an integer")
    if journal_seq < 0:
        raise _format_error(context, f"journal_seq must be >= 0, got {journal_seq}")
    try:
        histogram = (
            None
            if payload["histogram"] is None
            else _histogram_from_dict(payload["histogram"])
        )
        compact = (
            None if payload["compact"] is None else _compact_from_dict(payload["compact"])
        )
    except CatalogFormatError as exc:
        raise _format_error(context, str(exc)) from exc
    return CatalogEntry(
        relation=relation,
        attribute=attribute,
        kind=kind,
        histogram=histogram,
        compact=compact,
        distinct_count=distinct,
        total_tuples=float(total),
        version=version,
        journal_seq=journal_seq,
    )


def _load_entry_item(item: object, format_version: int) -> CatalogEntry:
    """Decode one entry of the ``entries`` list, verifying its checksum."""
    if format_version == 1:
        return _entry_from_payload(item)
    _require_type(item, dict, "catalog entry", "entry must be a checksummed object")
    if "payload" not in item or "checksum" not in item:
        raise _format_error(
            "catalog entry", "entry must carry 'checksum' and 'payload' keys"
        )
    payload = item["payload"]
    stored = item["checksum"]
    try:
        computed = checksum(canonical_json(payload))
    except (TypeError, ValueError) as exc:
        raise _format_error("catalog entry", f"payload is not canonical JSON: {exc}") from exc
    if stored != computed:
        raise _format_error(
            _entry_label(item),
            f"checksum mismatch (stored {stored!r}, computed {computed}); "
            "the entry is torn or was edited outside save_catalog",
        )
    return _entry_from_payload(payload)


def _entry_label(item: object) -> str:
    relation, attribute = _entry_key_hint(item)
    if relation is None:
        return "catalog entry"
    return f"catalog entry {relation}.{attribute}"


def _entry_key_hint(item: object) -> tuple[Optional[str], Optional[str]]:
    """Best-effort (relation, attribute) of a possibly-corrupt entry item."""
    payload = item
    if isinstance(item, dict) and isinstance(item.get("payload"), dict):
        payload = item["payload"]
    if isinstance(payload, dict):
        relation = payload.get("relation")
        attribute = payload.get("attribute")
        if isinstance(relation, str):
            return relation, attribute if isinstance(attribute, str) else None
    return None, None


# ----------------------------------------------------------------------
# Whole-catalog (de)serialisation
# ----------------------------------------------------------------------


def catalog_to_dict(catalog: StatsCatalog) -> dict:
    """Serialise the catalog to a JSON-compatible dictionary (format v2)."""
    if not isinstance(catalog, StatsCatalog):
        raise TypeError(f"catalog must be a StatsCatalog, got {type(catalog).__name__}")
    entries = []
    for entry in catalog.entries():
        payload = _entry_to_payload(entry)
        entries.append({"checksum": checksum(canonical_json(payload)), "payload": payload})
    return {"format": FORMAT_NAME, "version": FORMAT_VERSION, "entries": entries}


def _check_header(data: object) -> int:
    """Validate the format header; returns the file's format version."""
    if not isinstance(data, dict):
        raise CatalogFormatError(
            f"catalog document must be a JSON object, got {type(data).__name__}"
        )
    if data.get("format") != FORMAT_NAME:
        raise CatalogFormatError(
            f"not a repro stats catalog (format={data.get('format')!r})"
        )
    version = data.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise CatalogFormatError(f"unsupported catalog version {version!r}")
    return version


def catalog_from_dict(data: dict) -> StatsCatalog:
    """Rebuild a catalog from :func:`catalog_to_dict` output (strict).

    Accepts format versions 1 (legacy, no checksums) and 2.  Any malformed
    or checksum-failing entry raises :class:`CatalogFormatError`; use
    ``load_catalog(path, recover=True)`` for quarantine-instead-of-fail
    semantics.
    """
    version = _check_header(data)
    entries = data.get("entries")
    if not isinstance(entries, list):
        raise CatalogFormatError("catalog 'entries' must be a list")
    catalog = StatsCatalog()
    for item in entries:
        entry = _load_entry_item(item, version)
        stored_version = entry.version
        catalog.put(entry)
        entry.version = stored_version  # preserve the original counter
    return catalog


def save_catalog(
    catalog: StatsCatalog,
    path: PathLike,
    *,
    journal: Optional[MaintenanceJournal] = None,
) -> None:
    """Write the catalog to *path* as an atomic, checksummed snapshot.

    The write is crash-safe: the payload is staged to a sibling temporary
    file, fsynced, and published with one atomic ``os.replace`` — a crash
    at any moment leaves the previous snapshot readable.  When *journal*
    is given, it is checkpointed after the snapshot is durable, dropping
    records the snapshot already includes (their entries' ``journal_seq``
    fences make this safe even if the checkpoint itself crashes).
    """
    if not isinstance(catalog, StatsCatalog):
        raise TypeError(f"catalog must be a StatsCatalog, got {type(catalog).__name__}")
    if journal is not None and not isinstance(journal, MaintenanceJournal):
        raise TypeError(
            f"journal must be a MaintenanceJournal, got {type(journal).__name__}"
        )
    path = Path(path)
    with span("persist.save"):
        fault_point(POINT_PERSIST_SERIALIZE, path=str(path))
        payload = json.dumps(
            catalog_to_dict(catalog), indent=2, sort_keys=True, allow_nan=False
        )
        atomic_write_text(path, payload)
        if journal is not None:
            journal.checkpoint(catalog)
    obs.count("repro_persist_saves_total")


# ----------------------------------------------------------------------
# Loading and recovery
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QuarantinedEntry:
    """One snapshot entry that failed verification and was not loaded."""

    #: Relation name, when the corrupt payload still revealed one.
    relation: Optional[str]
    #: Attribute name, when recoverable from the payload.
    attribute: Optional[str]
    #: Human-readable description of what failed.
    reason: str

    def label(self) -> str:
        """``relation.attribute`` (with ``?`` placeholders) for reports."""
        return f"{self.relation or '?'}.{self.attribute or '?'}"


@dataclass
class RecoveryReport:
    """Everything ``load_catalog(..., recover=True)`` found and did.

    ``catalog`` holds every entry that verified (checksums and payload
    validation) plus all journal deltas that replayed; ``quarantined``
    lists what was withheld.  Hand the report to
    :meth:`repro.serve.EstimationService.apply_recovery` so quarantined
    statistics degrade through the ``on_error`` policy instead of being
    served from corrupt data.
    """

    catalog: StatsCatalog
    snapshot_path: str
    #: False when no snapshot file existed at all.
    snapshot_found: bool = True
    #: False when the snapshot file could not be parsed as a catalog.
    snapshot_ok: bool = True
    entries_loaded: int = 0
    quarantined: list[QuarantinedEntry] = field(default_factory=list)
    journal_path: Optional[str] = None
    #: True when the journal ended in a torn (half-written) record.
    journal_torn: bool = False
    #: Deltas applied onto snapshot entries.
    journal_replayed: int = 0
    #: Deltas skipped because the snapshot already included them (fence).
    journal_fenced: int = 0
    #: Deltas whose target entry is missing or quarantined.
    journal_orphaned: int = 0
    #: Impossible deltas dropped during replay.
    journal_anomalies: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing was quarantined, torn, or anomalous."""
        return (
            self.snapshot_found
            and self.snapshot_ok
            and not self.quarantined
            and not self.journal_torn
            and self.journal_anomalies == 0
        )

    @property
    def quarantined_relations(self) -> frozenset:
        """Names of relations with at least one quarantined entry."""
        return frozenset(
            q.relation for q in self.quarantined if q.relation is not None
        )

    def summary(self) -> str:
        """A human-readable multi-line rendering for CLIs."""
        lines = [
            f"snapshot: {self.snapshot_path} — "
            + (
                f"{self.entries_loaded} entries loaded"
                if self.snapshot_found
                else "not found"
            )
            + ("" if self.snapshot_ok or not self.snapshot_found else " (unreadable)")
        ]
        for q in self.quarantined:
            lines.append(f"quarantined: {q.label()} — {q.reason}")
        if self.journal_path is not None:
            lines.append(
                f"journal: {self.journal_path} — "
                f"{self.journal_replayed} replayed, {self.journal_fenced} fenced, "
                f"{self.journal_orphaned} orphaned, {self.journal_anomalies} anomalies"
                + (", torn tail truncated" if self.journal_torn else "")
            )
        lines.append("status: " + ("clean" if self.clean else "recovered with findings"))
        return "\n".join(lines)


def _parse_snapshot_text(text: str) -> dict:
    def _reject_constant(token: str) -> float:
        raise CatalogFormatError(
            f"snapshot contains non-standard JSON constant {token!r}"
        )

    try:
        return json.loads(text, parse_constant=_reject_constant)
    except json.JSONDecodeError as exc:
        raise CatalogFormatError(f"snapshot is not valid JSON: {exc}") from exc


def load_catalog(
    path: PathLike,
    *,
    recover: bool = False,
    journal: Optional[PathLike] = None,
) -> Union[StatsCatalog, RecoveryReport]:
    """Read a catalog previously written by :func:`save_catalog`.

    Strict mode (default) returns the :class:`StatsCatalog` and raises
    :class:`CatalogFormatError` on any corruption — a failed entry
    checksum, a malformed payload, a torn journal, an impossible delta.

    ``recover=True`` returns a :class:`RecoveryReport` instead: corrupt
    entries are **quarantined** (the rest of the catalog loads), a torn
    journal tail truncates replay at the last intact record, and
    impossible deltas are dropped and counted.  A missing snapshot file
    recovers to an empty catalog (``snapshot_found=False``) rather than
    raising, so a crash before the first save is still loadable.

    When *journal* names a maintenance journal, its records are replayed
    onto the loaded entries, fenced by each entry's ``journal_seq`` so
    nothing is double-applied.
    """
    path = Path(path)
    if not recover:
        with span("persist.load"):
            if not path.exists():
                raise FileNotFoundError(f"no stats catalog at {path}")
            catalog = catalog_from_dict(_parse_snapshot_text(path.read_text()))
            if journal is not None:
                records, _ = read_journal(journal, strict=True)
                replay_records(catalog, records, strict=True)
        obs.count("repro_persist_loads_total", mode="strict")
        return catalog

    with span("persist.recover"):
        report = RecoveryReport(catalog=StatsCatalog(), snapshot_path=str(path))
        if not path.exists():
            report.snapshot_found = False
            report.snapshot_ok = False
        else:
            try:
                data = _parse_snapshot_text(path.read_text())
                version = _check_header(data)
                entries = data.get("entries")
                if not isinstance(entries, list):
                    raise CatalogFormatError("catalog 'entries' must be a list")
            except CatalogFormatError as exc:
                report.snapshot_ok = False
                report.quarantined.append(
                    QuarantinedEntry(relation=None, attribute=None, reason=str(exc))
                )
                entries = []
                version = FORMAT_VERSION
            for item in entries:
                try:
                    entry = _load_entry_item(item, version)
                except CatalogFormatError as exc:
                    relation, attribute = _entry_key_hint(item)
                    report.quarantined.append(
                        QuarantinedEntry(
                            relation=relation, attribute=attribute, reason=str(exc)
                        )
                    )
                    continue
                stored_version = entry.version
                report.catalog.put(entry)
                entry.version = stored_version
                report.entries_loaded += 1

        if journal is not None:
            report.journal_path = str(Path(journal))
            records, torn = read_journal(journal, strict=False)
            report.journal_torn = torn
            skip_keys = frozenset(
                (q.relation, q.attribute)
                for q in report.quarantined
                if q.relation is not None and q.attribute is not None
            )
            stats: JournalReplayStats = replay_records(
                report.catalog, records, strict=False, skip_keys=skip_keys
            )
            report.journal_replayed = stats.applied
            report.journal_fenced = stats.fenced
            report.journal_orphaned = stats.orphaned
            report.journal_anomalies = stats.anomalies

    obs.count("repro_persist_loads_total", mode="recover")
    obs.count("repro_recovery_entries_loaded_total", report.entries_loaded)
    obs.count("repro_recovery_entries_quarantined_total", len(report.quarantined))
    obs.count("repro_recovery_journal_deltas_replayed_total", report.journal_replayed)
    obs.emit_event(
        "persist.recover",
        path=str(path),
        clean=report.clean,
        entries_loaded=report.entries_loaded,
        quarantined=len(report.quarantined),
        journal_replayed=report.journal_replayed,
        journal_torn=report.journal_torn,
    )
    return report
