"""Crash-safe file IO primitives for the statistics store.

Catalog snapshots and the maintenance journal must never be observable in a
half-written state: a crash mid-write used to corrupt every relation's
statistics at once.  This module is the single place on-disk catalog state
is allowed to be written (enforced by repolint rule R007):

* :func:`atomic_write_text` — write-to-temp, flush, ``fsync``, then an
  atomic ``os.replace``, followed by a directory fsync, so readers only
  ever see the old file or the complete new one;
* :func:`canonical_json` / :func:`checksum` — the canonical encoding and
  CRC32 scheme behind the per-entry checksums of the snapshot format and
  the per-record checksums of the journal;
* :func:`check_scalar` / :func:`check_finite` — the serialisation guards
  (JSON-representable scalars only, non-finite floats rejected with a
  clear error instead of emitting non-standard JSON).

Every step carries a named fault-injection point (see
:mod:`repro.testing.faults`); the chaos suite crashes at each of them and
asserts the store always reloads to the last consistent state.
"""

from __future__ import annotations

import json
import math
import os
import zlib
from pathlib import Path
from typing import Union

from repro.testing.faults import (
    POINT_PERSIST_DIRSYNC,
    POINT_PERSIST_FLUSH,
    POINT_PERSIST_REPLACE,
    POINT_PERSIST_WRITE_TMP,
    InjectedCrash,
    fault_point,
)

PathLike = Union[str, Path]

#: The attribute-value types the on-disk formats can represent.
SCALAR_TYPES = (str, int, float, bool)


def check_scalar(value: object, context: str) -> object:
    """Return *value* if it is a JSON-representable scalar, else raise."""
    if not isinstance(value, SCALAR_TYPES):
        raise TypeError(
            f"{context}: attribute value {value!r} of type "
            f"{type(value).__name__} is not JSON-serialisable"
        )
    if isinstance(value, float):
        check_finite(value, context)
    return value


def check_finite(number: float, context: str) -> float:
    """Reject NaN/±inf, which ``json.dumps`` would emit as non-standard JSON."""
    number = float(number)
    if not math.isfinite(number):
        raise ValueError(
            f"{context}: non-finite value {number!r} cannot be persisted; "
            "the JSON catalog format only represents finite numbers"
        )
    return number


def canonical_json(payload: object) -> str:  # repolint: boundary-exempt — json.dumps rejects non-serialisable input
    """The one byte-stable encoding checksums are computed over."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def checksum(text: str) -> int:
    """CRC32 (unsigned) of *text* in UTF-8 — the format's checksum scheme."""
    if not isinstance(text, str):
        raise TypeError(f"checksum input must be str, got {type(text).__name__}")
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


def temporary_path(path: PathLike) -> Path:
    """The sibling temporary file :func:`atomic_write_text` stages into.

    One fixed name per target keeps crash residue bounded: a later save
    simply overwrites the stale temporary.
    """
    if not isinstance(path, (str, Path)):
        raise TypeError(f"path must be str or Path, got {type(path).__name__}")
    path = Path(path)
    return path.parent / f".{path.name}.tmp"


def fsync_directory(directory: Path) -> None:  # repolint: boundary-exempt — best-effort by contract
    """Flush the directory entry so an ``os.replace`` survives power loss.

    Best-effort: platforms that cannot open directories (or filesystems
    that reject directory fsync) are silently tolerated — the rename
    itself is still atomic there.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: PathLike, text: str) -> None:
    """Atomically replace *path* with *text* (tmp + fsync + ``os.replace``).

    A reader concurrent with — or a crash during — this call observes
    either the previous complete contents or the new complete contents,
    never a prefix.  On an ordinary failure the temporary file is removed;
    on a simulated power loss (:class:`~repro.testing.faults.InjectedCrash`)
    it is deliberately left behind, as a real crash would leave it.
    """
    if not isinstance(text, str):
        raise TypeError(f"text must be str, got {type(text).__name__}")
    path = Path(path)
    tmp = temporary_path(path)
    fault_point(POINT_PERSIST_WRITE_TMP, path=str(tmp))
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            fault_point(POINT_PERSIST_FLUSH, path=str(tmp))
            handle.flush()
            os.fsync(handle.fileno())
        fault_point(POINT_PERSIST_REPLACE, path=str(path))
        os.replace(tmp, path)
    except InjectedCrash:
        raise  # power loss: no cleanup may run
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fault_point(POINT_PERSIST_DIRSYNC, path=str(path.parent))
    fsync_directory(path.parent)
