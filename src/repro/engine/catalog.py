"""Statistics catalog: where histograms live inside the system (Section 4).

Real systems store exactly the end-biased layout the paper recommends —
DB2's ``SYSIBM.SYSCOLDIST`` keeps the 10 highest-frequency values of each
column explicitly.  :class:`CompactEndBiased` reproduces that storage form
("not finding a value among those explicitly stored implies it belongs to
the missing bucket"), and :class:`StatsCatalog` is the per-(relation,
attribute) registry the optimizer consults.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.core.histogram import Histogram


@dataclass(frozen=True)
class CompactEndBiased:
    """Compact catalog form of an end-biased histogram.

    ``explicit`` maps the values of the univalued buckets to their exact
    frequencies; every other domain value is approximated by
    ``remainder_average``.  The multivalued bucket is stored implicitly,
    the space optimisation of Section 4.1/4.2.
    """

    explicit: dict[Hashable, float]
    remainder_count: int
    remainder_average: float

    def __post_init__(self):
        if self.remainder_count < 0:
            raise ValueError(
                f"remainder_count must be non-negative, got {self.remainder_count}"
            )
        if self.remainder_count > 0 and self.remainder_average < 0:
            raise ValueError(
                f"remainder_average must be non-negative, got {self.remainder_average}"
            )

    @classmethod
    def from_histogram(cls, histogram: Histogram) -> "CompactEndBiased":
        """Compress a value-aware biased histogram into catalog form.

        The (single) multivalued bucket becomes the implicit remainder; all
        univalued buckets are stored explicitly.  For degenerate histograms
        whose buckets are all univalued, the largest bucket is the remainder.
        """
        if histogram.values is None:
            raise ValueError("catalog storage needs a value-aware histogram")
        if not histogram.is_biased():
            raise ValueError(
                "compact storage applies to biased histograms "
                "(one multivalued bucket); got a general histogram"
            )
        multivalued = [b for b in histogram.buckets if not b.is_univalued()]
        remainder = multivalued[0] if multivalued else max(
            histogram.buckets, key=lambda b: b.count
        )
        explicit: dict[Hashable, float] = {}
        for bucket in histogram.buckets:
            if bucket is remainder:
                continue
            for value, frequency in zip(bucket.values, bucket.frequencies):
                explicit[value] = float(frequency)
        return cls(
            explicit=explicit,
            remainder_count=remainder.count,
            remainder_average=remainder.average,
        )

    @property
    def distinct_count(self) -> int:
        """Distinct values covered: explicit plus implicit remainder."""
        return len(self.explicit) + self.remainder_count

    @property
    def total(self) -> float:
        """Total tuple count represented by the stored statistics."""
        return sum(self.explicit.values()) + self.remainder_count * self.remainder_average

    def estimate_frequency(
        self, value: Hashable, *, assume_in_domain: bool = True
    ) -> float:
        """Approximate frequency of *value* — the one documented lookup.

        Explicitly stored values return their exact frequency.  Unknown
        values return the remainder average when *assume_in_domain* (the
        catalog's "missing bucket" rule), else 0.  This is the same method
        name :class:`CatalogEntry` exposes, so callers holding either form
        use one spelling.
        """
        if value in self.explicit:
            return self.explicit[value]
        if assume_in_domain and self.remainder_count > 0:
            return self.remainder_average
        return 0.0

    def estimate(self, value: Hashable, *, assume_in_domain: bool = True) -> float:
        """Deprecated alias of :meth:`estimate_frequency`."""
        warnings.warn(
            "CompactEndBiased.estimate is deprecated; use "
            "CompactEndBiased.estimate_frequency (see docs/API.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.estimate_frequency(value, assume_in_domain=assume_in_domain)


@dataclass
class CatalogEntry:
    """Statistics stored for one (relation, attribute) pair."""

    relation: str
    attribute: str
    kind: str
    histogram: Optional[Histogram]
    compact: Optional[CompactEndBiased]
    distinct_count: int
    total_tuples: float
    version: int = 0
    #: Write-ahead fence: the highest maintenance-journal sequence number
    #: already folded into this entry's statistics.  Journal replay (see
    #: :mod:`repro.engine.journal`) skips records at or below it, making
    #: replay idempotent across snapshot/checkpoint crash windows.
    journal_seq: int = 0

    def estimate_frequency(self, value: Hashable) -> float:
        """Approximate frequency of *value* from the best available form."""
        if self.compact is not None:
            return self.compact.estimate_frequency(value)
        if self.histogram is not None and self.histogram.values is not None:
            return self.histogram.approx_of_value(value)
        if self.distinct_count <= 0:
            return 0.0
        return self.total_tuples / self.distinct_count

    def average_frequency(self) -> float:
        """``T / M`` — the uniform-assumption frequency."""
        if self.distinct_count <= 0:
            return 0.0
        return self.total_tuples / self.distinct_count


class StatsCatalog:
    """Registry of per-(relation, attribute) statistics.

    Each entry's ``version`` counter increments on every (re)analyze of that
    attribute, letting maintenance policies detect staleness.  The catalog
    additionally keeps one **monotonic global version** that advances on
    *every* mutation (put or drop); the serving layer
    (:class:`repro.serve.EstimationService`) keys its compiled-table cache on
    these counters, so refreshed statistics invalidate stale tables without
    any explicit notification.

    The catalog is **thread-safe**: every mutation (``put``/``drop``) and
    every read (``get``/``entries``/``relation_rows``) takes one internal
    re-entrant lock, so concurrent ``ANALYZE`` writers and serving-layer
    readers never observe a half-applied mutation.  It also maintains a
    per-relation tuple-count index so :meth:`relation_rows` — the serving
    layer's fallback row source — costs one dict lookup per call instead of
    a scan over every catalog entry.
    """

    def __init__(self):
        self._entries: dict[tuple[str, str], CatalogEntry] = {}
        self._version = 0
        # Last version of dropped keys: a re-created entry must continue its
        # version sequence, or a cached compiled table keyed on the old
        # version could alias the new statistics and be served stale.
        self._tombstones: dict[tuple[str, str], int] = {}
        # relation -> {attribute -> total_tuples}: the per-relation row index
        # behind relation_rows(); kept exactly in sync with _entries.
        self._relation_totals: dict[str, dict[str, float]] = {}
        self._lock = threading.RLock()

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every catalog mutation."""
        with self._lock:
            return self._version

    def put(self, entry: CatalogEntry) -> CatalogEntry:
        """Insert or replace the entry, bumping its version on replacement."""
        key = (entry.relation, entry.attribute)
        with self._lock:
            previous = self._entries.get(key)
            base = previous.version if previous else self._tombstones.pop(key, 0)
            entry.version = base + 1
            self._entries[key] = entry
            self._relation_totals.setdefault(entry.relation, {})[
                entry.attribute
            ] = float(entry.total_tuples)
            self._version += 1
            return entry

    def get(self, relation: str, attribute: str) -> Optional[CatalogEntry]:
        with self._lock:
            return self._entries.get((relation, attribute))

    def require(self, relation: str, attribute: str) -> CatalogEntry:
        entry = self.get(relation, attribute)
        if entry is None:
            raise KeyError(
                f"no statistics for {relation}.{attribute}; run ANALYZE first"
            )
        return entry

    def relation_rows(self, relation: str) -> Optional[float]:
        """Tuple count of *relation*, or ``None`` when nothing is analyzed.

        The largest ``total_tuples`` over the relation's analyzed attributes
        (attribute statistics may be collected at different times, so the
        freshest/fullest count wins).  Backed by the per-relation index —
        O(attributes of *relation*), never a full catalog scan.  This is the
        non-raising row source the serving layer's fallback paths use;
        callers that want a hard error use
        :meth:`repro.serve.EstimationService.scan_cardinality`.
        """
        with self._lock:
            totals = self._relation_totals.get(relation)
            if not totals:
                return None
            return max(totals.values())

    def drop(self, relation: str, attribute: Optional[str] = None) -> int:
        """Drop statistics for one attribute or a whole relation."""
        with self._lock:
            if attribute is not None:
                dropped = self._entries.pop((relation, attribute), None)
                if dropped is None:
                    return 0
                self._tombstones[(relation, attribute)] = dropped.version
                self._discard_total(relation, attribute)
                self._version += 1
                return 1
            keys = [k for k in self._entries if k[0] == relation]
            for key in keys:
                self._tombstones[key] = self._entries[key].version
                del self._entries[key]
                self._discard_total(*key)
            if keys:
                self._version += 1
            return len(keys)

    def _discard_total(self, relation: str, attribute: str) -> None:
        totals = self._relation_totals.get(relation)
        if totals is None:
            return
        totals.pop(attribute, None)
        if not totals:
            del self._relation_totals[relation]

    def entries(self) -> list[CatalogEntry]:
        with self._lock:
            return list(self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple[str, str]) -> bool:
        with self._lock:
            return key in self._entries
