"""Relation schemas: named, optionally typed attributes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class Attribute:
    """A named attribute with an optional Python type constraint."""

    name: str
    dtype: Optional[type] = None

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"attribute name must be a non-empty string, got {self.name!r}")

    def validate(self, value: object) -> None:
        """Raise ``TypeError`` when *value* violates the type constraint."""
        if self.dtype is not None and not isinstance(value, self.dtype):
            raise TypeError(
                f"attribute {self.name!r} expects {self.dtype.__name__}, "
                f"got {type(value).__name__} ({value!r})"
            )


class Schema:
    """An ordered collection of distinct attributes."""

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Sequence[Attribute]):
        attrs = tuple(
            a if isinstance(a, Attribute) else Attribute(str(a)) for a in attributes
        )
        if not attrs:
            raise ValueError("a schema needs at least one attribute")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise ValueError(f"attribute names must be distinct, got {names}")
        self._attributes = attrs
        self._index = {a.name: i for i, a in enumerate(attrs)}

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    def position(self, name: str) -> int:
        """Column index of attribute *name* (raises ``KeyError`` if absent)."""
        if name not in self._index:
            raise KeyError(
                f"no attribute {name!r}; schema has {list(self._index)}"
            )
        return self._index[name]

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self):
        return iter(self._attributes)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __repr__(self) -> str:
        return f"Schema({', '.join(self.names)})"

    def validate_row(self, row: tuple) -> None:
        """Check arity and per-attribute types of one tuple."""
        if len(row) != len(self._attributes):
            raise ValueError(
                f"row has {len(row)} fields but schema has {len(self._attributes)}"
            )
        for attribute, value in zip(self._attributes, row):
            attribute.validate(value)
