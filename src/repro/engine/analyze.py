"""ANALYZE: statistics collection into the catalog.

Runs the ``Matrix`` algorithm over a relation's column (one hash-counting
scan) and builds the requested histogram, storing it — and, for biased
histograms, its compact catalog form — in the :class:`StatsCatalog`.
This is the operational face of Section 4: per-relation, query-independent
statistics, justified by Theorem 3.3.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.biased import v_opt_bias_hist
from repro.core.heuristic import equi_depth_histogram, equi_width_histogram, trivial_histogram
from repro.core.histogram import Histogram
from repro.core.serial import v_optimal_serial_histogram
from repro.engine.catalog import CatalogEntry, CompactEndBiased, StatsCatalog
from repro.engine.relation import Relation
from repro.engine.sampling import sampled_end_biased_histogram
from repro.util.validation import ensure_positive_int

#: Histogram kinds ANALYZE can build.
ANALYZE_KINDS = ("trivial", "equi-width", "equi-depth", "end-biased", "serial", "sampled")


def _build_histogram(kind: str, relation: Relation, attribute: str, buckets: int) -> Histogram:
    distribution = relation.frequency_distribution(attribute)
    buckets = min(buckets, distribution.domain_size)
    if kind == "trivial":
        return trivial_histogram(distribution)
    if kind == "equi-width":
        return equi_width_histogram(distribution, buckets)
    if kind == "equi-depth":
        return equi_depth_histogram(distribution, buckets)
    if kind == "end-biased":
        return v_opt_bias_hist(
            distribution.frequencies, buckets, values=distribution.values
        )
    if kind == "serial":
        return v_optimal_serial_histogram(
            distribution.frequencies, buckets, values=distribution.values, method="dp"
        )
    raise ValueError(f"unknown histogram kind {kind!r}; expected one of {ANALYZE_KINDS}")


def analyze_relation(
    relation: Relation,
    attribute: str,
    catalog: StatsCatalog,
    *,
    kind: str = "end-biased",
    buckets: int = 10,
) -> CatalogEntry:
    """Collect statistics for one attribute and store them in *catalog*.

    ``kind="sampled"`` uses the Section 4.2 shortcut (Space-Saving sketch,
    no exact frequency distribution); every other kind runs the exact
    ``Matrix`` step first.  The default mirrors DB2's practice: an
    end-biased histogram with ~10 explicitly stored values.
    """
    buckets = ensure_positive_int(buckets, "buckets")
    if relation.cardinality == 0:
        raise ValueError(f"cannot analyze empty relation {relation.name!r}")

    if kind == "sampled":
        compact = sampled_end_biased_histogram(
            relation.column(attribute),
            buckets,
            relation.cardinality,
            relation.distinct_count(attribute),
        )
        entry = CatalogEntry(
            relation=relation.name,
            attribute=attribute,
            kind=kind,
            histogram=None,
            compact=compact,
            distinct_count=relation.distinct_count(attribute),
            total_tuples=float(relation.cardinality),
        )
        return catalog.put(entry)

    histogram = _build_histogram(kind, relation, attribute, buckets)
    compact: Optional[CompactEndBiased] = None
    if histogram.is_biased():
        compact = CompactEndBiased.from_histogram(histogram)
    entry = CatalogEntry(
        relation=relation.name,
        attribute=attribute,
        kind=kind,
        histogram=histogram,
        compact=compact,
        distinct_count=relation.distinct_count(attribute),
        total_tuples=float(relation.cardinality),
    )
    return catalog.put(entry)


def analyze_database(
    relations: Iterable[Relation],
    catalog: StatsCatalog,
    *,
    kind: str = "end-biased",
    buckets: int = 10,
    attributes: Optional[dict[str, Sequence[str]]] = None,
) -> list[CatalogEntry]:
    """ANALYZE every attribute of every relation (or a chosen subset).

    *attributes* optionally restricts collection per relation name; by
    default all attributes are analyzed — statistics collection "is an
    infrequent operation", as the paper puts it.
    """
    if not isinstance(catalog, StatsCatalog):
        raise TypeError(f"catalog must be a StatsCatalog, got {type(catalog).__name__}")
    entries = []
    for relation in relations:
        names = (
            attributes.get(relation.name, relation.schema.names)
            if attributes is not None
            else relation.schema.names
        )
        for attribute in names:
            entries.append(
                analyze_relation(
                    relation, attribute, catalog, kind=kind, buckets=buckets
                )
            )
    return entries
