"""In-memory relations: named bags of tuples over a schema."""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator, Optional, Sequence

from repro.core.frequency import AttributeDistribution
from repro.engine.schema import Attribute, Schema
from repro.util.rng import RandomSource, derive_rng


class Relation:
    """A named bag (multiset) of tuples.

    Rows are plain tuples aligned with the schema.  The class supports the
    handful of operations the reproduction needs: column extraction,
    insertion/deletion (for histogram-maintenance experiments), and
    generation from frequency distributions (the inverse of the ``Matrix``
    statistics step, used to materialise synthetic relations whose frequency
    sets are known exactly).
    """

    __slots__ = ("name", "_schema", "_rows")

    def __init__(self, name: str, schema: Schema, rows: Optional[Iterable[tuple]] = None):
        if not name or not isinstance(name, str):
            raise ValueError(f"relation name must be a non-empty string, got {name!r}")
        if not isinstance(schema, Schema):
            raise TypeError(f"schema must be a Schema, got {type(schema).__name__}")
        self.name = name
        self._schema = schema
        self._rows: list[tuple] = []
        for row in rows or ():
            self.insert(tuple(row))

    @classmethod
    def from_columns(
        cls, name: str, columns: dict[str, Sequence]
    ) -> "Relation":
        """Build a relation from parallel column sequences."""
        if not columns:
            raise ValueError("at least one column is required")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"columns must have equal lengths, got {lengths}")
        schema = Schema([Attribute(column_name) for column_name in columns])
        rows = zip(*columns.values())
        return cls(name, schema, rows)

    @classmethod
    def from_distribution(
        cls,
        name: str,
        attribute: str,
        distribution: AttributeDistribution,
        *,
        shuffle: RandomSource = None,
    ) -> "Relation":
        """Materialise a single-attribute relation with given value frequencies.

        Frequencies are rounded to the nearest integer tuple counts.  With
        *shuffle* the rows are permuted so physical order carries no
        information (as in a real heap file).
        """
        rows = []
        for value, freq in zip(distribution.values, distribution.frequencies):
            count = int(round(float(freq)))
            rows.extend([(value,)] * count)
        if shuffle is not None:
            gen = derive_rng(shuffle)
            order = gen.permutation(len(rows))
            rows = [rows[i] for i in order]
        return cls(name, Schema([Attribute(attribute)]), rows)

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def cardinality(self) -> int:
        """Number of tuples (``T`` in the paper's notation)."""
        return len(self._rows)

    def rows(self) -> Iterator[tuple]:
        """Iterate over the tuples."""
        return iter(self._rows)

    def column(self, attribute: str) -> list:
        """Extract one column as a list of values."""
        position = self._schema.position(attribute)
        return [row[position] for row in self._rows]

    def column_pair(self, first: str, second: str) -> list[tuple]:
        """Extract two columns as value pairs (for 2-D frequency matrices)."""
        i = self._schema.position(first)
        j = self._schema.position(second)
        return [(row[i], row[j]) for row in self._rows]

    def insert(self, row: tuple) -> None:
        """Append one tuple after validating it against the schema."""
        row = tuple(row)
        self._schema.validate_row(row)
        self._rows.append(row)

    def delete_where(self, predicate: Callable[[tuple], bool]) -> int:
        """Delete all tuples satisfying *predicate*; return how many."""
        kept = [row for row in self._rows if not predicate(row)]
        removed = len(self._rows) - len(kept)
        self._rows = kept
        return removed

    def distinct_count(self, attribute: str) -> int:
        """Number of distinct values in *attribute*."""
        position = self._schema.position(attribute)
        return len({row[position] for row in self._rows})

    def frequency_distribution(self, attribute: str) -> AttributeDistribution:
        """The attribute's value->frequency mapping (the ``Matrix`` step)."""
        if self.cardinality == 0:
            raise ValueError(f"relation {self.name!r} is empty")
        return AttributeDistribution.from_column(self.column(attribute))

    def __len__(self) -> int:
        return self.cardinality

    def __repr__(self) -> str:
        return (
            f"Relation({self.name!r}, attributes={list(self._schema.names)}, "
            f"cardinality={self.cardinality})"
        )
