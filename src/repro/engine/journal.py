"""Write-ahead journal for maintained-histogram deltas.

:class:`~repro.maint.update.MaintainedEndBiased` adjusts its counters on
every insert/delete, but until this module existed those deltas lived only
in memory: a crash between two snapshots silently discarded maintenance
history, exactly the drift source self-tuning histogram work warns about.
The :class:`MaintenanceJournal` closes that window with the classic WAL
contract:

* every acknowledged insert/delete is first appended — checksummed, with a
  monotonically increasing sequence number — to an append-only JSONL log
  and fsynced, **before** the in-memory state changes;
* on load, :func:`replay_records` re-applies the logged deltas to the
  snapshot's compact entries.  Each catalog entry carries a
  ``journal_seq`` **fence** — the journal sequence it already includes —
  so replay is idempotent: records at or below the fence are skipped, and
  a crash between snapshot and checkpoint never double-applies a delta;
* :meth:`MaintenanceJournal.checkpoint` compacts the log after a durable
  snapshot, atomically rewriting only the records still ahead of their
  entry's fence.  The rewritten log starts with a checksummed **header**
  line carrying the sequence high-water mark, so sequence numbers never
  regress below an entry's fence after a restart — without it, a
  checkpoint that empties the log would silently reset numbering to 0 and
  every later acknowledged append would be fenced out of replay.

The log mechanics — per-record CRC32 checksums, torn-tail detection and
physical repair, fsync-before-acknowledge appends, the checkpoint header
— live in :class:`repro.engine.eventlog.ChecksummedLog`, which this
journal shares with the maintenance agent's durable job queue
(:mod:`repro.maint.queue`).  This module layers the *delta* domain on
top: the record schema, replay fencing, and catalog re-application.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Hashable, Optional, Sequence

from repro.engine.catalog import CompactEndBiased, StatsCatalog
from repro.obs import runtime as obs
from repro.obs.tracing import span
from repro.engine.durable import PathLike, check_scalar
from repro.engine.eventlog import ChecksummedLog, LogFormatError, scan_log
from repro.testing.faults import (
    POINT_JOURNAL_APPEND,
    POINT_JOURNAL_CHECKPOINT,
    POINT_JOURNAL_FLUSH,
)

#: The delta operations the journal records.
JOURNAL_OPS: tuple[str, ...] = ("insert", "delete")


class JournalFormatError(LogFormatError):
    """The journal file violates the record format (beyond a torn tail)."""


class JournalReplayError(ValueError):
    """A journal record is impossible against the snapshot it targets."""


@dataclass(frozen=True)
class JournalRecord:
    """One acknowledged maintenance delta."""

    seq: int
    op: str
    relation: str
    attribute: str
    value: Hashable

    def __post_init__(self) -> None:
        if self.op not in JOURNAL_OPS:
            raise JournalFormatError(
                f"journal op must be one of {JOURNAL_OPS}, got {self.op!r}"
            )
        if self.seq < 1:
            raise JournalFormatError(f"journal seq must be >= 1, got {self.seq}")

    def payload(self) -> dict:
        """The JSON payload the record's checksum covers."""
        return {
            "seq": self.seq,
            "op": self.op,
            "relation": self.relation,
            "attribute": self.attribute,
            "value": self.value,
        }

    @classmethod
    def from_payload(cls, payload: object) -> "JournalRecord":
        """Validate and rebuild a record from its JSON payload."""
        if not isinstance(payload, dict):
            raise JournalFormatError(
                f"journal payload must be an object, got {type(payload).__name__}"
            )
        try:
            seq = payload["seq"]
            op = payload["op"]
            relation = payload["relation"]
            attribute = payload["attribute"]
            value = payload["value"]
        except KeyError as missing:
            raise JournalFormatError(
                f"journal payload is missing key {missing.args[0]!r}"
            ) from None
        if not isinstance(seq, int) or isinstance(seq, bool):
            raise JournalFormatError(f"journal seq must be an int, got {seq!r}")
        if not isinstance(relation, str) or not isinstance(attribute, str):
            raise JournalFormatError(
                "journal relation/attribute must be strings, got "
                f"{relation!r}/{attribute!r}"
            )
        check_scalar(value, "journal value")
        return cls(seq=seq, op=op, relation=relation, attribute=attribute, value=value)


def _validate_payload(payload: dict) -> None:
    """Event-log validation hook: every payload must decode as a record."""
    JournalRecord.from_payload(payload)


def read_journal(
    path: PathLike, *, strict: bool = False
) -> tuple[list[JournalRecord], bool]:
    """Read every intact record of the journal at *path*.

    Returns ``(records, torn)``.  A missing file reads as an empty,
    untorn journal.  A bad tail record (truncated write, checksum
    mismatch) stops the read there: with ``strict=False`` the intact
    prefix is returned and ``torn`` is True; with ``strict=True`` a
    :class:`JournalFormatError` is raised.  Sequence numbers must be
    strictly increasing — a violation is corruption, not a torn tail.
    The checkpoint header, when present, is validated but not returned.
    """
    if not isinstance(path, (str, Path)):
        raise TypeError(f"path must be str or Path, got {type(path).__name__}")
    try:
        scan = scan_log(Path(path), strict=strict, validate=_validate_payload)
    except JournalFormatError:
        raise
    except LogFormatError as exc:
        # Generic log-format failures surface under the journal's own
        # error type so callers keep one exception to catch.
        raise JournalFormatError(str(exc)) from exc
    records = [JournalRecord.from_payload(payload) for payload in scan.payloads]
    return records, scan.torn


@dataclass
class JournalReplayStats:
    """What :func:`replay_records` did."""

    #: Deltas applied to catalog entries.
    applied: int = 0
    #: Deltas skipped because the entry's fence already includes them.
    fenced: int = 0
    #: Deltas whose target entry is missing, quarantined, or not compact.
    orphaned: int = 0
    #: Deltas that were impossible (delete from an empty bucket) and were
    #: dropped in recovery mode.
    anomalies: int = 0


def replay_records(
    catalog: StatsCatalog,
    records: Sequence[JournalRecord],
    *,
    strict: bool = False,
    skip_keys: frozenset = frozenset(),
) -> JournalReplayStats:
    """Re-apply journal *records* to the compact entries of *catalog*.

    Records are grouped per (relation, attribute) and applied in sequence
    order, fenced by each entry's ``journal_seq``.  Updated entries are
    re-``put`` so the catalog's version counters advance and serving-layer
    caches invalidate.  With ``strict=True`` an impossible delta raises
    :class:`JournalReplayError`; otherwise it is counted as an anomaly and
    dropped.  Keys in *skip_keys* (quarantined entries) are never touched.
    """
    if not isinstance(catalog, StatsCatalog):
        raise TypeError(f"catalog must be a StatsCatalog, got {type(catalog).__name__}")
    stats = JournalReplayStats()
    groups: dict[tuple[str, str], list[JournalRecord]] = {}
    for record in records:
        groups.setdefault((record.relation, record.attribute), []).append(record)
    for key, group in groups.items():
        if key in skip_keys:
            stats.orphaned += len(group)
            continue
        entry = catalog.get(*key)
        if entry is None or entry.compact is None:
            stats.orphaned += len(group)
            continue
        fence = entry.journal_seq
        live = [record for record in group if record.seq > fence]
        stats.fenced += len(group) - len(live)
        if not live:
            continue
        explicit = dict(entry.compact.explicit)
        remainder_count = entry.compact.remainder_count
        remainder_total = remainder_count * entry.compact.remainder_average
        total = float(entry.total_tuples)
        applied_here = 0
        for record in live:
            if record.op == "insert":
                if record.value in explicit:
                    explicit[record.value] += 1.0
                else:
                    if remainder_count == 0:
                        remainder_count = 1
                    remainder_total += 1.0
                total += 1.0
            else:  # delete
                if record.value in explicit:
                    if explicit[record.value] <= 0:
                        if strict:
                            raise JournalReplayError(
                                f"journal seq {record.seq} deletes "
                                f"{record.value!r} from {record.relation}."
                                f"{record.attribute}, but its count is already 0"
                            )
                        stats.anomalies += 1
                        continue
                    explicit[record.value] -= 1.0
                elif remainder_total <= 0:
                    if strict:
                        raise JournalReplayError(
                            f"journal seq {record.seq} deletes from the empty "
                            f"implicit bucket of {record.relation}."
                            f"{record.attribute}"
                        )
                    stats.anomalies += 1
                    continue
                else:
                    remainder_total -= 1.0
                total -= 1.0
            applied_here += 1
        stats.applied += applied_here
        entry.compact = CompactEndBiased(
            explicit=explicit,
            remainder_count=remainder_count,
            remainder_average=(
                remainder_total / remainder_count if remainder_count else 0.0
            ),
        )
        entry.total_tuples = max(total, 0.0)
        entry.distinct_count = len(explicit) + remainder_count
        catalog.put(entry)
        entry.journal_seq = live[-1].seq
    return stats


class MaintenanceJournal:
    """The append-only delta log one or more maintained histograms share.

    ``fsync=True`` (default) makes every append durable before it is
    acknowledged — the WAL contract.  ``fsync=False`` trades the last few
    deltas on power loss for throughput (an explicit, documented weakening;
    the file is still torn-tail safe).
    """

    def __init__(self, path: PathLike, *, fsync: bool = True):
        self._log = ChecksummedLog(
            path,
            fsync=fsync,
            validate=_validate_payload,
            fsync_span="journal.fsync",
        )

    @property
    def path(self) -> Path:
        """Where the journal lives."""
        return self._log.path

    @property
    def last_seq(self) -> int:
        """Sequence number of the last acknowledged record (0 when empty)."""
        return self._log.last_seq

    def __len__(self) -> int:
        return len(self.pending())

    def pending(self) -> list[JournalRecord]:
        """Every intact record currently in the log."""
        records, _ = read_journal(self._log.path, strict=False)
        return records

    # ------------------------------------------------------------------
    # Appending (the write-ahead path)
    # ------------------------------------------------------------------

    def append_insert(
        self, relation: str, attribute: str, value: Hashable
    ) -> JournalRecord:
        """Durably log one inserted tuple's value before it is applied."""
        return self._append("insert", relation, attribute, value)

    def append_delete(
        self, relation: str, attribute: str, value: Hashable
    ) -> JournalRecord:
        """Durably log one deleted tuple's value before it is applied."""
        return self._append("delete", relation, attribute, value)

    def _append(
        self, op: str, relation: str, attribute: str, value: Hashable
    ) -> JournalRecord:
        if not isinstance(relation, str) or not relation:
            raise TypeError(f"relation must be a non-empty str, got {relation!r}")
        if not isinstance(attribute, str) or not attribute:
            raise TypeError(f"attribute must be a non-empty str, got {attribute!r}")
        check_scalar(value, f"journal delta for {relation}.{attribute}")
        with span("journal.append", op=op):
            stamped = self._log.append(
                {"op": op, "relation": relation, "attribute": attribute, "value": value},
                fault_append=POINT_JOURNAL_APPEND,
                fault_flush=POINT_JOURNAL_FLUSH,
            )
        record = JournalRecord.from_payload(stamped)
        obs.count("repro_journal_appends_total", op=op)
        return record

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self, catalog: Optional[StatsCatalog] = None) -> int:
        """Compact the log after a durable snapshot; returns records dropped.

        With a *catalog*, records at or below their entry's ``journal_seq``
        fence — and records whose entry no longer exists — are dropped;
        records still ahead of their fence are kept (rewritten atomically).
        Without a catalog the whole log is dropped.  The rewritten log
        leads with a header carrying the sequence high-water mark (the max
        of every seq ever appended and every fence in *catalog*), so a
        journal reopened after the checkpoint resumes numbering above every
        fence instead of regressing to 0.  Correctness never depends on
        this call: replay fences make re-applying old records a no-op, so
        a crash between snapshot and checkpoint is harmless.
        """
        with span("journal.checkpoint"):
            scan = self._log.scan(strict=False)
            records = [JournalRecord.from_payload(p) for p in scan.payloads]
            keep: list[JournalRecord] = []
            last_seq = max(self._log.last_seq, scan.last_seq)
            if catalog is not None:
                if not isinstance(catalog, StatsCatalog):
                    raise TypeError(
                        f"catalog must be a StatsCatalog, got {type(catalog).__name__}"
                    )
                for entry in catalog.entries():
                    last_seq = max(last_seq, entry.journal_seq)
                for record in records:
                    entry = catalog.get(record.relation, record.attribute)
                    if entry is not None and record.seq > entry.journal_seq:
                        keep.append(record)
            self._log.rewrite(
                [record.payload() for record in keep],
                last_seq=last_seq,
                fault_rewrite=POINT_JOURNAL_CHECKPOINT,
            )
        dropped = len(records) - len(keep)
        obs.count("repro_journal_checkpoints_total")
        obs.emit_event(
            "journal.checkpoint",
            path=str(self.path),
            dropped=dropped,
            kept=len(keep),
            last_seq=self._log.last_seq,
        )
        return dropped
