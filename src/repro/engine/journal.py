"""Write-ahead journal for maintained-histogram deltas.

:class:`~repro.maint.update.MaintainedEndBiased` adjusts its counters on
every insert/delete, but until this module existed those deltas lived only
in memory: a crash between two snapshots silently discarded maintenance
history, exactly the drift source self-tuning histogram work warns about.
The :class:`MaintenanceJournal` closes that window with the classic WAL
contract:

* every acknowledged insert/delete is first appended — checksummed, with a
  monotonically increasing sequence number — to an append-only JSONL log
  and fsynced, **before** the in-memory state changes;
* on load, :func:`replay_records` re-applies the logged deltas to the
  snapshot's compact entries.  Each catalog entry carries a
  ``journal_seq`` **fence** — the journal sequence it already includes —
  so replay is idempotent: records at or below the fence are skipped, and
  a crash between snapshot and checkpoint never double-applies a delta;
* :meth:`MaintenanceJournal.checkpoint` compacts the log after a durable
  snapshot, atomically rewriting only the records still ahead of their
  entry's fence.  The rewritten log starts with a checksummed **header**
  line carrying the sequence high-water mark, so sequence numbers never
  regress below an entry's fence after a restart — without it, a
  checkpoint that empties the log would silently reset numbering to 0 and
  every later acknowledged append would be fenced out of replay.

A torn tail (the crash leaving a half-written last record) is detected by
the per-record CRC32: recovery-mode replay truncates at the last intact
record instead of failing the load, and reopening the journal for writing
physically truncates the torn bytes first, so new acknowledged appends
always extend an intact prefix that replay can reach.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Hashable, Optional, Sequence

from repro.engine.catalog import CompactEndBiased, StatsCatalog
from repro.obs import runtime as obs
from repro.obs.tracing import span
from repro.engine.durable import (
    PathLike,
    atomic_write_text,
    canonical_json,
    check_scalar,
    checksum,
)
from repro.testing.faults import (
    POINT_JOURNAL_APPEND,
    POINT_JOURNAL_CHECKPOINT,
    POINT_JOURNAL_FLUSH,
    fault_point,
)

#: The delta operations the journal records.
JOURNAL_OPS: tuple[str, ...] = ("insert", "delete")


class JournalFormatError(ValueError):
    """The journal file violates the record format (beyond a torn tail)."""


class JournalReplayError(ValueError):
    """A journal record is impossible against the snapshot it targets."""


@dataclass(frozen=True)
class JournalRecord:
    """One acknowledged maintenance delta."""

    seq: int
    op: str
    relation: str
    attribute: str
    value: Hashable

    def __post_init__(self) -> None:
        if self.op not in JOURNAL_OPS:
            raise JournalFormatError(
                f"journal op must be one of {JOURNAL_OPS}, got {self.op!r}"
            )
        if self.seq < 1:
            raise JournalFormatError(f"journal seq must be >= 1, got {self.seq}")

    def payload(self) -> dict:
        """The JSON payload the record's checksum covers."""
        return {
            "seq": self.seq,
            "op": self.op,
            "relation": self.relation,
            "attribute": self.attribute,
            "value": self.value,
        }

    @classmethod
    def from_payload(cls, payload: object) -> "JournalRecord":
        """Validate and rebuild a record from its JSON payload."""
        if not isinstance(payload, dict):
            raise JournalFormatError(
                f"journal payload must be an object, got {type(payload).__name__}"
            )
        try:
            seq = payload["seq"]
            op = payload["op"]
            relation = payload["relation"]
            attribute = payload["attribute"]
            value = payload["value"]
        except KeyError as missing:
            raise JournalFormatError(
                f"journal payload is missing key {missing.args[0]!r}"
            ) from None
        if not isinstance(seq, int) or isinstance(seq, bool):
            raise JournalFormatError(f"journal seq must be an int, got {seq!r}")
        if not isinstance(relation, str) or not isinstance(attribute, str):
            raise JournalFormatError(
                "journal relation/attribute must be strings, got "
                f"{relation!r}/{attribute!r}"
            )
        check_scalar(value, "journal value")
        return cls(seq=seq, op=op, relation=relation, attribute=attribute, value=value)


def _encode_record(record: JournalRecord) -> bytes:
    payload_text = canonical_json(record.payload())
    line = canonical_json({"checksum": checksum(payload_text), "payload": record.payload()})
    return (line + "\n").encode("utf-8")


def _encode_header(last_seq: int) -> bytes:
    header = {"kind": "journal-header", "last_seq": last_seq}
    line = canonical_json({"checksum": checksum(canonical_json(header)), "header": header})
    return (line + "\n").encode("utf-8")


def _decode_header(envelope: dict) -> int:
    """Validate a header envelope and return its sequence high-water mark."""
    header = envelope["header"]
    stored = envelope.get("checksum")
    actual = checksum(canonical_json(header))
    if stored != actual:
        raise JournalFormatError(
            f"journal header checksum mismatch (stored {stored!r}, computed {actual})"
        )
    if not isinstance(header, dict) or header.get("kind") != "journal-header":
        raise JournalFormatError(f"malformed journal header: {header!r}")
    last_seq = header.get("last_seq")
    if not isinstance(last_seq, int) or isinstance(last_seq, bool) or last_seq < 0:
        raise JournalFormatError(
            f"journal header last_seq must be an int >= 0, got {last_seq!r}"
        )
    return last_seq


def _decode_line(line: str) -> JournalRecord:
    try:
        envelope = json.loads(line)
    except json.JSONDecodeError as exc:
        raise JournalFormatError(f"unparseable journal line: {exc}") from exc
    if not isinstance(envelope, dict) or "payload" not in envelope:
        raise JournalFormatError("journal line lacks a payload envelope")
    payload = envelope["payload"]
    stored = envelope.get("checksum")
    actual = checksum(canonical_json(payload))
    if stored != actual:
        raise JournalFormatError(
            f"journal record checksum mismatch (stored {stored!r}, computed {actual})"
        )
    return JournalRecord.from_payload(payload)


@dataclass
class _JournalScan:
    """Everything one pass over the journal file establishes."""

    #: High-water mark from the checkpoint header (0 when absent).
    header_seq: int = 0
    #: The intact records, in file order.
    records: list = None  # type: ignore[assignment]
    #: True when an unreadable line cut the scan short.
    torn: bool = False
    #: Byte offset just past the last intact line (truncation target).
    intact_end: int = 0
    #: True when the last intact line is missing its terminating newline.
    needs_newline: bool = False

    def __post_init__(self) -> None:
        if self.records is None:
            self.records = []

    @property
    def last_seq(self) -> int:
        """The sequence high-water mark the file as a whole establishes."""
        tail = self.records[-1].seq if self.records else 0
        return max(self.header_seq, tail)


def _scan_journal(path: Path, *, strict: bool) -> _JournalScan:
    """One pass over the journal: header, intact records, torn-tail extent.

    Tracks byte offsets so a writer can truncate exactly the torn suffix.
    With ``strict=True`` any unreadable line raises
    :class:`JournalFormatError` instead of marking the scan torn.
    """
    scan = _JournalScan()
    if not path.exists():
        return scan
    data = path.read_bytes()
    first_content = True
    last_seq = 0
    offset = 0
    for raw in data.splitlines(keepends=True):
        consumed = len(raw)
        body = raw.rstrip(b"\r\n")
        has_newline = len(body) < consumed
        try:
            stripped = body.decode("utf-8").strip()
        except UnicodeDecodeError as exc:
            if strict:
                raise JournalFormatError(
                    f"undecodable journal line: {exc}"
                ) from exc
            scan.torn = True
            break
        if not stripped:
            offset += consumed
            scan.intact_end = offset
            continue
        try:
            envelope = json.loads(stripped)
            if isinstance(envelope, dict) and "header" in envelope:
                if not first_content:
                    raise JournalFormatError(
                        "journal header is only valid as the first record"
                    )
                scan.header_seq = _decode_header(envelope)
            else:
                record = _decode_line(stripped)
                if record.seq <= last_seq:
                    raise JournalFormatError(
                        f"journal seq went backwards ({last_seq} -> {record.seq})"
                    )
                scan.records.append(record)
                last_seq = record.seq
        except json.JSONDecodeError as exc:
            if strict:
                raise JournalFormatError(
                    f"unparseable journal line: {exc}"
                ) from exc
            scan.torn = True
            break
        except JournalFormatError:
            if strict:
                raise
            scan.torn = True
            break
        first_content = False
        offset += consumed
        scan.intact_end = offset
        scan.needs_newline = not has_newline
    return scan


def read_journal(
    path: PathLike, *, strict: bool = False
) -> tuple[list[JournalRecord], bool]:
    """Read every intact record of the journal at *path*.

    Returns ``(records, torn)``.  A missing file reads as an empty,
    untorn journal.  A bad tail record (truncated write, checksum
    mismatch) stops the read there: with ``strict=False`` the intact
    prefix is returned and ``torn`` is True; with ``strict=True`` a
    :class:`JournalFormatError` is raised.  Sequence numbers must be
    strictly increasing — a violation is corruption, not a torn tail.
    The checkpoint header, when present, is validated but not returned.
    """
    if not isinstance(path, (str, Path)):
        raise TypeError(f"path must be str or Path, got {type(path).__name__}")
    scan = _scan_journal(Path(path), strict=strict)
    return scan.records, scan.torn


@dataclass
class JournalReplayStats:
    """What :func:`replay_records` did."""

    #: Deltas applied to catalog entries.
    applied: int = 0
    #: Deltas skipped because the entry's fence already includes them.
    fenced: int = 0
    #: Deltas whose target entry is missing, quarantined, or not compact.
    orphaned: int = 0
    #: Deltas that were impossible (delete from an empty bucket) and were
    #: dropped in recovery mode.
    anomalies: int = 0


def replay_records(
    catalog: StatsCatalog,
    records: Sequence[JournalRecord],
    *,
    strict: bool = False,
    skip_keys: frozenset = frozenset(),
) -> JournalReplayStats:
    """Re-apply journal *records* to the compact entries of *catalog*.

    Records are grouped per (relation, attribute) and applied in sequence
    order, fenced by each entry's ``journal_seq``.  Updated entries are
    re-``put`` so the catalog's version counters advance and serving-layer
    caches invalidate.  With ``strict=True`` an impossible delta raises
    :class:`JournalReplayError`; otherwise it is counted as an anomaly and
    dropped.  Keys in *skip_keys* (quarantined entries) are never touched.
    """
    if not isinstance(catalog, StatsCatalog):
        raise TypeError(f"catalog must be a StatsCatalog, got {type(catalog).__name__}")
    stats = JournalReplayStats()
    groups: dict[tuple[str, str], list[JournalRecord]] = {}
    for record in records:
        groups.setdefault((record.relation, record.attribute), []).append(record)
    for key, group in groups.items():
        if key in skip_keys:
            stats.orphaned += len(group)
            continue
        entry = catalog.get(*key)
        if entry is None or entry.compact is None:
            stats.orphaned += len(group)
            continue
        fence = entry.journal_seq
        live = [record for record in group if record.seq > fence]
        stats.fenced += len(group) - len(live)
        if not live:
            continue
        explicit = dict(entry.compact.explicit)
        remainder_count = entry.compact.remainder_count
        remainder_total = remainder_count * entry.compact.remainder_average
        total = float(entry.total_tuples)
        applied_here = 0
        for record in live:
            if record.op == "insert":
                if record.value in explicit:
                    explicit[record.value] += 1.0
                else:
                    if remainder_count == 0:
                        remainder_count = 1
                    remainder_total += 1.0
                total += 1.0
            else:  # delete
                if record.value in explicit:
                    if explicit[record.value] <= 0:
                        if strict:
                            raise JournalReplayError(
                                f"journal seq {record.seq} deletes "
                                f"{record.value!r} from {record.relation}."
                                f"{record.attribute}, but its count is already 0"
                            )
                        stats.anomalies += 1
                        continue
                    explicit[record.value] -= 1.0
                elif remainder_total <= 0:
                    if strict:
                        raise JournalReplayError(
                            f"journal seq {record.seq} deletes from the empty "
                            f"implicit bucket of {record.relation}."
                            f"{record.attribute}"
                        )
                    stats.anomalies += 1
                    continue
                else:
                    remainder_total -= 1.0
                total -= 1.0
            applied_here += 1
        stats.applied += applied_here
        entry.compact = CompactEndBiased(
            explicit=explicit,
            remainder_count=remainder_count,
            remainder_average=(
                remainder_total / remainder_count if remainder_count else 0.0
            ),
        )
        entry.total_tuples = max(total, 0.0)
        entry.distinct_count = len(explicit) + remainder_count
        catalog.put(entry)
        entry.journal_seq = live[-1].seq
    return stats


class MaintenanceJournal:
    """The append-only delta log one or more maintained histograms share.

    ``fsync=True`` (default) makes every append durable before it is
    acknowledged — the WAL contract.  ``fsync=False`` trades the last few
    deltas on power loss for throughput (an explicit, documented weakening;
    the file is still torn-tail safe).
    """

    def __init__(self, path: PathLike, *, fsync: bool = True):
        self._path = Path(path)
        self._fsync = bool(fsync)
        scan = _scan_journal(self._path, strict=False)
        # The checkpoint header keeps the high-water mark alive across a
        # checkpoint that empties the log: without it a restart would
        # restart numbering at 0 and new appends would sit at or below the
        # snapshot fences, silently invisible to replay.
        self._seq = scan.last_seq
        if scan.torn or scan.needs_newline:
            self._repair_tail(scan)

    def _repair_tail(self, scan: _JournalScan) -> None:
        """Physically remove a torn tail before the first append.

        Appending after a half-written line would strand the new —
        acknowledged — records behind bytes :func:`read_journal` can never
        get past.  Truncating to the last intact record restores the
        append-only invariant that everything after an intact record is
        intact.
        """
        with open(self._path, "r+b") as handle:  # repolint: disable=R007
            handle.truncate(scan.intact_end)
            if scan.needs_newline:
                handle.seek(0, os.SEEK_END)
                handle.write(b"\n")
            handle.flush()
            os.fsync(handle.fileno())

    @property
    def path(self) -> Path:
        """Where the journal lives."""
        return self._path

    @property
    def last_seq(self) -> int:
        """Sequence number of the last acknowledged record (0 when empty)."""
        return self._seq

    def __len__(self) -> int:
        return len(self.pending())

    def pending(self) -> list[JournalRecord]:
        """Every intact record currently in the log."""
        records, _ = read_journal(self._path, strict=False)
        return records

    # ------------------------------------------------------------------
    # Appending (the write-ahead path)
    # ------------------------------------------------------------------

    def append_insert(
        self, relation: str, attribute: str, value: Hashable
    ) -> JournalRecord:
        """Durably log one inserted tuple's value before it is applied."""
        return self._append("insert", relation, attribute, value)

    def append_delete(
        self, relation: str, attribute: str, value: Hashable
    ) -> JournalRecord:
        """Durably log one deleted tuple's value before it is applied."""
        return self._append("delete", relation, attribute, value)

    def _append(
        self, op: str, relation: str, attribute: str, value: Hashable
    ) -> JournalRecord:
        if not isinstance(relation, str) or not relation:
            raise TypeError(f"relation must be a non-empty str, got {relation!r}")
        if not isinstance(attribute, str) or not attribute:
            raise TypeError(f"attribute must be a non-empty str, got {attribute!r}")
        check_scalar(value, f"journal delta for {relation}.{attribute}")
        record = JournalRecord(
            seq=self._seq + 1, op=op, relation=relation, attribute=attribute, value=value
        )
        data = _encode_record(record)
        with span("journal.append", op=op):
            fault_point(POINT_JOURNAL_APPEND, path=str(self._path))
            # The one sanctioned non-atomic write: an append-only log is
            # torn-tail safe by construction (per-record checksums), and
            # appending through a rewrite would be O(log) per delta.
            with open(self._path, "ab") as handle:  # repolint: disable=R007
                handle.write(data)
                fault_point(POINT_JOURNAL_FLUSH, path=str(self._path))
                if self._fsync:
                    with span("journal.fsync"):
                        handle.flush()
                        os.fsync(handle.fileno())
        self._seq = record.seq  # acknowledged only after the durable append
        obs.count("repro_journal_appends_total", op=op)
        return record

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self, catalog: Optional[StatsCatalog] = None) -> int:
        """Compact the log after a durable snapshot; returns records dropped.

        With a *catalog*, records at or below their entry's ``journal_seq``
        fence — and records whose entry no longer exists — are dropped;
        records still ahead of their fence are kept (rewritten atomically).
        Without a catalog the whole log is dropped.  The rewritten log
        leads with a header carrying the sequence high-water mark (the max
        of every seq ever appended and every fence in *catalog*), so a
        journal reopened after the checkpoint resumes numbering above every
        fence instead of regressing to 0.  Correctness never depends on
        this call: replay fences make re-applying old records a no-op, so
        a crash between snapshot and checkpoint is harmless.
        """
        with span("journal.checkpoint"):
            scan = _scan_journal(self._path, strict=False)
            records = scan.records
            keep: list[JournalRecord] = []
            last_seq = max(self._seq, scan.last_seq)
            if catalog is not None:
                if not isinstance(catalog, StatsCatalog):
                    raise TypeError(
                        f"catalog must be a StatsCatalog, got {type(catalog).__name__}"
                    )
                for entry in catalog.entries():
                    last_seq = max(last_seq, entry.journal_seq)
                for record in records:
                    entry = catalog.get(record.relation, record.attribute)
                    if entry is not None and record.seq > entry.journal_seq:
                        keep.append(record)
            fault_point(POINT_JOURNAL_CHECKPOINT, path=str(self._path))
            parts = [_encode_header(last_seq).decode("utf-8")] if last_seq else []
            parts.extend(_encode_record(record).decode("utf-8") for record in keep)
            atomic_write_text(self._path, "".join(parts))
            self._seq = last_seq
        dropped = len(records) - len(keep)
        obs.count("repro_journal_checkpoints_total")
        obs.emit_event(
            "journal.checkpoint",
            path=str(self._path),
            dropped=dropped,
            kept=len(keep),
            last_seq=last_seq,
        )
        return dropped
