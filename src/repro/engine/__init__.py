"""In-memory relational substrate.

The paper's techniques live inside a database system: statistics are
collected from relations (``Matrix``/``JointMatrix``), stored in catalogs
(DB2's ``SYSCOLDIST`` is cited as the production analogue), and consumed by
the optimizer.  This package provides a small but real substrate — typed
relations, selection/projection/hash-join operators, a chain-query executor
producing ground-truth result sizes, an ``ANALYZE`` pass, a statistics
catalog with the compact end-biased storage layout, and the sampling
shortcuts of Section 4.2.
"""

from __future__ import annotations

from repro.engine.schema import Attribute, Schema
from repro.engine.relation import Relation
from repro.engine.operators import (
    cross_product,
    hash_join,
    project,
    select,
)
from repro.engine.executor import ChainJoinSpec, execute_chain_join, chain_join_size
from repro.engine.catalog import CatalogEntry, CompactEndBiased, StatsCatalog
from repro.engine.analyze import analyze_relation, analyze_database
from repro.engine.sampling import SpaceSavingSketch, reservoir_sample, sampled_end_biased_histogram
from repro.engine.durable import atomic_write_text, canonical_json, checksum
from repro.engine.journal import (
    JournalFormatError,
    JournalRecord,
    JournalReplayError,
    JournalReplayStats,
    MaintenanceJournal,
    read_journal,
    replay_records,
)
from repro.engine.persist import (
    CatalogFormatError,
    QuarantinedEntry,
    RecoveryReport,
    catalog_from_dict,
    catalog_to_dict,
    load_catalog,
    save_catalog,
)
from repro.engine.tuning import Recommendation, apply_recommendations, recommend_statistics, tune_database

__all__ = [
    "Attribute",
    "Schema",
    "Relation",
    "cross_product",
    "hash_join",
    "project",
    "select",
    "ChainJoinSpec",
    "execute_chain_join",
    "chain_join_size",
    "CatalogEntry",
    "CompactEndBiased",
    "StatsCatalog",
    "analyze_relation",
    "analyze_database",
    "SpaceSavingSketch",
    "reservoir_sample",
    "sampled_end_biased_histogram",
    "atomic_write_text",
    "canonical_json",
    "checksum",
    "JournalFormatError",
    "JournalRecord",
    "JournalReplayError",
    "JournalReplayStats",
    "MaintenanceJournal",
    "read_journal",
    "replay_records",
    "CatalogFormatError",
    "QuarantinedEntry",
    "RecoveryReport",
    "catalog_from_dict",
    "catalog_to_dict",
    "load_catalog",
    "save_catalog",
    "Recommendation",
    "apply_recommendations",
    "recommend_statistics",
    "tune_database",
]
