"""Generic crash-safe, checksummed, append-only JSONL event log.

Extracted from :mod:`repro.engine.journal` so every durable log in the
tree — the maintenance write-ahead journal and the maintenance agent's
job queue (:mod:`repro.maint.queue`) — shares **one** implementation of
the durability mechanics instead of re-deriving them:

* **fsync-before-acknowledge appends** — :meth:`ChecksummedLog.append`
  returns only after the encoded record is flushed and fsynced, so an
  acknowledged event is never lost to a crash (``fsync=False`` is the
  explicit, documented weakening for throughput);
* **per-record CRC32 checksums** over the canonical JSON encoding, so a
  torn tail (half-written last record after power loss) is *detected*
  rather than parsed as garbage;
* **torn-tail repair** — reopening a log for writing physically truncates
  any torn suffix back to the last intact record, restoring the
  append-only invariant that every byte before an intact record is
  intact;
* **monotonic sequence numbers** with a checksummed **header** carrying
  the high-water mark across checkpoints — :meth:`ChecksummedLog.rewrite`
  compacts the log atomically (via
  :func:`repro.engine.durable.atomic_write_text`) without ever letting
  numbering regress, which would silently fence acknowledged events out
  of replay.

Domain formats layer on top: callers pass a ``validate`` hook that
rejects payloads which are checksum-intact but semantically impossible
(an unknown op, a claim for a job that cannot exist).  In recovery-mode
scans such a record marks the log torn at that point, exactly as a
checksum mismatch would; in strict mode it raises.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.engine.durable import (
    PathLike,
    atomic_write_text,
    canonical_json,
    checksum,
)
from repro.obs.tracing import span
from repro.testing.faults import fault_point


class LogFormatError(ValueError):
    """The log file violates the record format (beyond a torn tail)."""


#: Domain-validation hook: raises :class:`LogFormatError` (or a subclass)
#: when a checksum-intact payload is semantically invalid.
PayloadValidator = Callable[[dict], None]


def encode_payload(payload: dict) -> bytes:  # repolint: boundary-exempt — canonical_json rejects non-serialisable input
    """One checksummed JSONL record: ``{"checksum": crc, "payload": ...}``."""
    text = canonical_json(payload)
    line = canonical_json({"checksum": checksum(text), "payload": payload})
    return (line + "\n").encode("utf-8")


def encode_header(last_seq: int) -> bytes:  # repolint: boundary-exempt — canonical_json rejects non-serialisable input
    """The checkpoint header carrying the sequence high-water mark."""
    header = {"kind": "journal-header", "last_seq": last_seq}
    line = canonical_json(
        {"checksum": checksum(canonical_json(header)), "header": header}
    )
    return (line + "\n").encode("utf-8")


def decode_header(envelope: dict) -> int:
    """Validate a header envelope and return its sequence high-water mark."""
    header = envelope["header"]
    stored = envelope.get("checksum")
    actual = checksum(canonical_json(header))
    if stored != actual:
        raise LogFormatError(
            f"log header checksum mismatch (stored {stored!r}, computed {actual})"
        )
    if not isinstance(header, dict) or header.get("kind") != "journal-header":
        raise LogFormatError(f"malformed log header: {header!r}")
    last_seq = header.get("last_seq")
    if not isinstance(last_seq, int) or isinstance(last_seq, bool) or last_seq < 0:
        raise LogFormatError(
            f"log header last_seq must be an int >= 0, got {last_seq!r}"
        )
    return last_seq


def decode_payload_line(line: str) -> dict:
    """Checksum-verify one record line and return its payload dict."""
    try:
        envelope = json.loads(line)
    except json.JSONDecodeError as exc:
        raise LogFormatError(f"unparseable log line: {exc}") from exc
    if not isinstance(envelope, dict) or "payload" not in envelope:
        raise LogFormatError("log line lacks a payload envelope")
    payload = envelope["payload"]
    stored = envelope.get("checksum")
    actual = checksum(canonical_json(payload))
    if stored != actual:
        raise LogFormatError(
            f"log record checksum mismatch (stored {stored!r}, computed {actual})"
        )
    if not isinstance(payload, dict):
        raise LogFormatError(
            f"log payload must be an object, got {type(payload).__name__}"
        )
    seq = payload.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
        raise LogFormatError(f"log payload seq must be an int >= 1, got {seq!r}")
    return payload


@dataclass
class LogScan:
    """Everything one pass over a checksummed log file establishes."""

    #: High-water mark from the checkpoint header (0 when absent).
    header_seq: int = 0
    #: The intact payload dicts, in file order.
    payloads: list = field(default_factory=list)
    #: True when an unreadable line cut the scan short.
    torn: bool = False
    #: Byte offset just past the last intact line (truncation target).
    intact_end: int = 0
    #: True when the last intact line is missing its terminating newline.
    needs_newline: bool = False

    @property
    def last_seq(self) -> int:
        """The sequence high-water mark the file as a whole establishes."""
        tail = self.payloads[-1]["seq"] if self.payloads else 0
        return max(self.header_seq, tail)


def scan_log(
    path: PathLike,
    *,
    strict: bool = False,
    validate: Optional[PayloadValidator] = None,
) -> LogScan:
    """One pass over the log: header, intact records, torn-tail extent.

    Tracks byte offsets so a writer can truncate exactly the torn suffix.
    With ``strict=True`` any unreadable or invalid line raises
    :class:`LogFormatError` instead of marking the scan torn.  *validate*
    (when given) runs after the checksum and sequence checks; a
    :class:`LogFormatError` it raises is treated identically.
    """
    if not isinstance(path, (str, Path)):
        raise TypeError(f"path must be str or Path, got {type(path).__name__}")
    scan = LogScan()
    path = Path(path)
    if not path.exists():
        return scan
    data = path.read_bytes()
    first_content = True
    last_seq = 0
    offset = 0
    for raw in data.splitlines(keepends=True):
        consumed = len(raw)
        body = raw.rstrip(b"\r\n")
        has_newline = len(body) < consumed
        try:
            stripped = body.decode("utf-8").strip()
        except UnicodeDecodeError as exc:
            if strict:
                raise LogFormatError(f"undecodable log line: {exc}") from exc
            scan.torn = True
            break
        if not stripped:
            offset += consumed
            scan.intact_end = offset
            continue
        try:
            envelope = json.loads(stripped)
            if isinstance(envelope, dict) and "header" in envelope:
                if not first_content:
                    raise LogFormatError(
                        "log header is only valid as the first record"
                    )
                scan.header_seq = decode_header(envelope)
            else:
                payload = decode_payload_line(stripped)
                if payload["seq"] <= last_seq:
                    raise LogFormatError(
                        f"log seq went backwards ({last_seq} -> {payload['seq']})"
                    )
                if validate is not None:
                    validate(payload)
                scan.payloads.append(payload)
                last_seq = payload["seq"]
        except json.JSONDecodeError as exc:
            if strict:
                raise LogFormatError(f"unparseable log line: {exc}") from exc
            scan.torn = True
            break
        except LogFormatError:
            if strict:
                raise
            scan.torn = True
            break
        first_content = False
        offset += consumed
        scan.intact_end = offset
        scan.needs_newline = not has_newline
    return scan


class ChecksummedLog:
    """The shared append-only durable log (see the module docstring).

    ``fsync=True`` (default) makes every append durable before it is
    acknowledged — the WAL contract.  ``fsync=False`` trades the last few
    events on power loss for throughput (the file stays torn-tail safe).

    Fault-injection plumbing: callers name the registered injection
    points to fire around each write (*fault_append* before the bytes are
    written, *fault_flush* between write and fsync, *fault_rewrite*
    before a checkpoint rewrite), so domain logs expose their own crash
    moments to the chaos suite without re-implementing the IO.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        fsync: bool = True,
        validate: Optional[PayloadValidator] = None,
        fsync_span: Optional[str] = None,
    ):
        if not isinstance(path, (str, Path)):
            raise TypeError(f"path must be str or Path, got {type(path).__name__}")
        self._path = Path(path)
        self._fsync = bool(fsync)
        self._validate = validate
        self._fsync_span = fsync_span
        scan = scan_log(self._path, strict=False, validate=validate)
        # The checkpoint header keeps the high-water mark alive across a
        # checkpoint that empties the log: without it a restart would
        # restart numbering at 0 and new appends would sit at or below
        # any downstream fences, silently invisible to replay.
        self._seq = scan.last_seq
        if scan.torn or scan.needs_newline:
            self._repair_tail(scan)

    def _repair_tail(self, scan: LogScan) -> None:
        """Physically remove a torn tail before the first append.

        Appending after a half-written line would strand the new —
        acknowledged — records behind bytes :func:`scan_log` can never
        get past.  Truncating to the last intact record restores the
        append-only invariant that everything after an intact record is
        intact.
        """
        with open(self._path, "r+b") as handle:  # repolint: disable=R007
            handle.truncate(scan.intact_end)
            if scan.needs_newline:
                handle.seek(0, os.SEEK_END)
                handle.write(b"\n")
            handle.flush()
            os.fsync(handle.fileno())

    @property
    def path(self) -> Path:
        """Where the log lives."""
        return self._path

    @property
    def last_seq(self) -> int:
        """Sequence number of the last acknowledged record (0 when empty)."""
        return self._seq

    def scan(self, *, strict: bool = False) -> LogScan:
        """Re-scan the on-disk state (with this log's validator)."""
        return scan_log(self._path, strict=strict, validate=self._validate)

    def payloads(self) -> list[dict]:
        """Every intact payload currently in the log."""
        return self.scan(strict=False).payloads

    def append(
        self,
        payload: dict,
        *,
        fault_append: Optional[str] = None,
        fault_flush: Optional[str] = None,
    ) -> dict:
        """Durably append *payload* (acknowledged only after the fsync).

        The payload must not carry ``seq`` — the log assigns the next
        sequence number and returns the stamped payload it wrote.
        """
        if not isinstance(payload, dict):
            raise TypeError(f"payload must be a dict, got {type(payload).__name__}")
        if "seq" in payload:
            raise ValueError("the log assigns 'seq'; do not pass one")
        stamped = {"seq": self._seq + 1, **payload}
        if self._validate is not None:
            self._validate(stamped)
        data = encode_payload(stamped)
        if fault_append is not None:
            fault_point(fault_append, path=str(self._path))
        # The one sanctioned non-atomic write: an append-only log is
        # torn-tail safe by construction (per-record checksums), and
        # appending through a rewrite would be O(log) per event.
        with open(self._path, "ab") as handle:  # repolint: disable=R007
            handle.write(data)
            if fault_flush is not None:
                fault_point(fault_flush, path=str(self._path))
            if self._fsync:
                if self._fsync_span is not None:
                    with span(self._fsync_span):
                        handle.flush()
                        os.fsync(handle.fileno())
                else:
                    handle.flush()
                    os.fsync(handle.fileno())
        self._seq = stamped["seq"]  # acknowledged only after the durable append
        return stamped

    def rewrite(
        self,
        payloads: Sequence[dict],
        *,
        last_seq: Optional[int] = None,
        fault_rewrite: Optional[str] = None,
    ) -> None:
        """Atomically replace the log with *payloads* plus a header.

        Payloads keep the sequence numbers they already carry; the header
        records ``max(last_seq, every kept seq, every seq ever appended)``
        so numbering never regresses after a checkpoint.  Crash-safe: the
        rewrite goes through :func:`atomic_write_text`, so a crash leaves
        either the old log or the new one, never a prefix.
        """
        high = self._seq if last_seq is None else max(last_seq, self._seq)
        for payload in payloads:
            high = max(high, payload["seq"])
        if fault_rewrite is not None:
            fault_point(fault_rewrite, path=str(self._path))
        parts = [encode_header(high).decode("utf-8")] if high else []
        parts.extend(encode_payload(payload).decode("utf-8") for payload in payloads)
        atomic_write_text(self._path, "".join(parts))
        self._seq = high
