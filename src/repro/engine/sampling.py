"""Sampling shortcuts for statistics collection (Section 4.2).

The paper notes that the β−1 *highest* frequencies can be identified by
sampling "extremely fast ... requiring constant amount of very small space"
— the DB2/MVS approach of keeping the 10 most frequent values per column —
while no efficient technique finds the *lowest* frequencies.  This module
provides:

* :func:`reservoir_sample` — Vitter's Algorithm R, the classic one-pass
  uniform sample;
* :class:`SpaceSavingSketch` — the deterministic heavy-hitter counter
  (Metwally et al.) guaranteeing every value with frequency above ``T/k``
  appears among ``k`` counters after one pass;
* :func:`sampled_end_biased_histogram` — an approximate compact end-biased
  histogram built from a sketch + known relation totals, never materialising
  the full frequency distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.engine.catalog import CompactEndBiased
from repro.util.rng import RandomSource, derive_rng
from repro.util.validation import ensure_positive_int


def reservoir_sample(items: Iterable, size: int, rng: RandomSource = None) -> list:
    """Uniform sample of *size* items in one pass (Algorithm R)."""
    size = ensure_positive_int(size, "size")
    gen = derive_rng(rng)
    reservoir: list = []
    for index, item in enumerate(items):
        if index < size:
            reservoir.append(item)
        else:
            slot = int(gen.integers(0, index + 1))
            if slot < size:
                reservoir[slot] = item
    return reservoir


@dataclass
class _Counter:
    count: int
    error: int


class SpaceSavingSketch:
    """Space-Saving heavy-hitter sketch with *capacity* counters.

    Guarantees: every value occurring more than ``N / capacity`` times is
    monitored, and each reported count overestimates the true frequency by
    at most the counter's recorded ``error``.
    """

    def __init__(self, capacity: int):
        self.capacity = ensure_positive_int(capacity, "capacity")
        self._counters: dict[Hashable, _Counter] = {}
        self._observed = 0

    @property
    def observed(self) -> int:
        """Number of items fed to the sketch."""
        return self._observed

    def update(self, value: Hashable) -> None:
        """Feed one occurrence of *value*."""
        self._observed += 1
        counter = self._counters.get(value)
        if counter is not None:
            counter.count += 1
            return
        if len(self._counters) < self.capacity:
            self._counters[value] = _Counter(count=1, error=0)
            return
        # Evict the minimum counter; inherit its count as the error bound.
        victim = min(self._counters, key=lambda v: self._counters[v].count)
        floor = self._counters[victim].count
        del self._counters[victim]
        self._counters[value] = _Counter(count=floor + 1, error=floor)

    def extend(self, values: Iterable[Hashable]) -> None:
        """Feed many occurrences."""
        for value in values:
            self.update(value)

    def top(self, k: int) -> list[tuple[Hashable, int, int]]:
        """The *k* largest counters as ``(value, count, error)`` triples."""
        k = ensure_positive_int(k, "k")
        ranked = sorted(
            self._counters.items(), key=lambda item: (-item[1].count, repr(item[0]))
        )
        return [(value, c.count, c.error) for value, c in ranked[:k]]

    def guaranteed_heavy(self, k: int) -> list[tuple[Hashable, int]]:
        """Counters whose lower bound (count − error) beats every excluded one."""
        ranked = self.top(len(self._counters))
        if not ranked:
            return []
        cutoff = ranked[k][1] if k < len(ranked) else 0
        return [(v, c) for v, c, e in ranked[:k] if c - e >= cutoff]


def sampled_end_biased_histogram(
    column: Iterable[Hashable],
    buckets: int,
    total_tuples: int,
    distinct_count: int,
    *,
    sketch_capacity: int | None = None,
) -> CompactEndBiased:
    """Approximate compact end-biased histogram from one sketching pass.

    Finds the β−1 highest-frequency values with a Space-Saving sketch and
    spreads the remaining mass uniformly over the other ``M − (β−1)`` values
    — the cheap construction the paper recommends when the distribution is
    Zipf-like (high frequencies in the univalued buckets).  Needs only the
    relation's total tuple and distinct counts, both of which systems track
    anyway.
    """
    buckets = ensure_positive_int(buckets, "buckets")
    total_tuples = ensure_positive_int(total_tuples, "total_tuples")
    distinct_count = ensure_positive_int(distinct_count, "distinct_count")
    singles = min(buckets - 1, distinct_count - 1)
    capacity = sketch_capacity or max(4 * buckets, 16)
    sketch = SpaceSavingSketch(capacity)
    sketch.extend(column)

    explicit: dict[Hashable, float] = {}
    if singles > 0:
        for value, count, error in sketch.top(singles):
            # Midpoint of the [count − error, count] uncertainty interval.
            explicit[value] = float(count) - error / 2.0
    remainder_count = distinct_count - len(explicit)
    remaining_mass = max(0.0, float(total_tuples) - sum(explicit.values()))
    remainder_average = remaining_mass / remainder_count if remainder_count else 0.0
    return CompactEndBiased(
        explicit=explicit,
        remainder_count=remainder_count,
        remainder_average=remainder_average,
    )
