"""Workload generators for the Section 5.2 experiments.

The paper runs three query classes distinguished by how the Zipf skew of
each relation is drawn:

* **low skew** — ``z`` uniform over ``{0.0, 0.1, 0.25, 0.5, 0.75}``;
* **mixed skew** — ``z`` uniform over all ten values
  ``{0.0, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0}``;
* **high skew** — ``z`` uniform over ``{1.0, 1.5, 2.0, 2.5, 3.0}``.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.queries.chain import ChainQuery, make_zipf_chain
from repro.util.rng import RandomSource, derive_rng
from repro.util.validation import ensure_positive_int

#: The full z grid of Section 5.2.
MIXED_SKEW_Z: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0)
#: The low-skew half of the grid.
LOW_SKEW_Z: tuple[float, ...] = MIXED_SKEW_Z[:5]
#: The high-skew half of the grid.
HIGH_SKEW_Z: tuple[float, ...] = MIXED_SKEW_Z[5:]


class QueryClass(enum.Enum):
    """The three skew classes of the Section 5.2 experiments."""

    LOW_SKEW = "low skew"
    MIXED_SKEW = "mixed skew"
    HIGH_SKEW = "high skew"

    @property
    def z_choices(self) -> tuple[float, ...]:
        """The Zipf ``z`` values this class samples per relation."""
        if self is QueryClass.LOW_SKEW:
            return LOW_SKEW_Z
        if self is QueryClass.HIGH_SKEW:
            return HIGH_SKEW_Z
        return MIXED_SKEW_Z


def sample_chain_query(
    num_joins: int,
    query_class: QueryClass,
    rng: RandomSource = None,
    *,
    domain: int = 10,
    total: float = 1000.0,
) -> ChainQuery:
    """Draw one chain query of *query_class* with random per-relation skews."""
    num_joins = ensure_positive_int(num_joins, "num_joins")
    gen = derive_rng(rng)
    choices = query_class.z_choices
    z_values = [float(choices[gen.integers(0, len(choices))]) for _ in range(num_joins + 1)]
    return make_zipf_chain(num_joins, domain=domain, total=total, z_values=z_values)


def sample_query_batch(
    num_joins: int,
    query_class: QueryClass,
    count: int,
    rng: RandomSource = None,
    *,
    domain: int = 10,
    total: float = 1000.0,
) -> list[ChainQuery]:
    """Draw *count* independent queries of one class (one per experiment run)."""
    count = ensure_positive_int(count, "count")
    gen = derive_rng(rng)
    return [
        sample_chain_query(num_joins, query_class, gen, domain=domain, total=total)
        for _ in range(count)
    ]
