"""Chain-query model and experiment workload generators (Sections 2.2, 5.2)."""

from __future__ import annotations

from repro.queries.chain import ChainQuery, make_zipf_chain, selection_query
from repro.queries.tree import (
    TreeQuery,
    make_zipf_star,
    make_zipf_tree,
    random_tree_query,
)
from repro.queries.workload import (
    HIGH_SKEW_Z,
    LOW_SKEW_Z,
    MIXED_SKEW_Z,
    QueryClass,
    sample_chain_query,
    sample_query_batch,
)

__all__ = [
    "ChainQuery",
    "make_zipf_chain",
    "selection_query",
    "QueryClass",
    "LOW_SKEW_Z",
    "MIXED_SKEW_Z",
    "HIGH_SKEW_Z",
    "sample_chain_query",
    "sample_query_batch",
    "TreeQuery",
    "make_zipf_star",
    "make_zipf_tree",
    "random_tree_query",
]
