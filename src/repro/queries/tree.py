"""Arbitrary tree equality-join queries over frequency sets.

The paper's formal development uses chain queries "without loss of
generality" and defers general trees to the tensor machinery.  This module
provides that generalisation: a :class:`TreeQuery` is a tree of relations
whose edges are equality joins, each relation holding one frequency set
arranged (at evaluation time) into its frequency tensor.  Chains and star
queries are special cases; :func:`make_zipf_star` builds the star workload
used by the tree-query experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.frequency import FrequencySet
from repro.core.histogram import Histogram
from repro.core.tensor import FrequencyTensor, arrange_frequency_tensor, tree_result_size
from repro.data.zipf import zipf_frequencies
from repro.util.rng import RandomSource, derive_rng
from repro.util.validation import ensure_positive, ensure_positive_int


@dataclass(frozen=True)
class TreeQuery:
    """A tree query: relations joined pairwise on dedicated attributes.

    Attributes
    ----------
    num_relations:
        Relations are numbered ``0 .. num_relations − 1``.
    edges:
        One ``(left, right, domain_size)`` triple per join predicate; the
        edge set must form a tree over the relations.
    frequency_sets:
        One :class:`FrequencySet` per relation; its size must equal the
        product of the domain sizes of the relation's incident edges.
    """

    num_relations: int
    edges: tuple[tuple[int, int, int], ...]
    frequency_sets: tuple[FrequencySet, ...]
    skews: Optional[tuple[float, ...]] = None

    def __post_init__(self):
        n = self.num_relations
        if n < 2:
            raise ValueError("a tree query joins at least two relations")
        if len(self.edges) != n - 1:
            raise ValueError(
                f"a tree over {n} relations needs {n - 1} edges, got {len(self.edges)}"
            )
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for left, right, domain in self.edges:
            if not (0 <= left < n and 0 <= right < n):
                raise ValueError(f"edge ({left}, {right}) references unknown relation")
            if domain < 1:
                raise ValueError(f"edge domain must be positive, got {domain}")
            a, b = find(left), find(right)
            if a == b:
                raise ValueError("edges contain a cycle; tree queries only")
            parent[a] = b
        if len(self.frequency_sets) != n:
            raise ValueError(
                f"{n} relations need {n} frequency sets, got {len(self.frequency_sets)}"
            )
        for position in range(n):
            expected = int(np.prod([d for *_pair, d in self.incident_edges(position)]))
            actual = self.frequency_sets[position].size
            if expected != actual:
                raise ValueError(
                    f"relation {position}: tensor has {expected} cells but the "
                    f"frequency set has {actual} entries"
                )
        if self.skews is not None and len(self.skews) != n:
            raise ValueError("skews must align with relations")

    def incident_edges(self, relation: int) -> list[tuple[int, int, int]]:
        """Edges touching *relation*, as ``(edge_id, other_end, domain)``."""
        incident = []
        for edge_id, (left, right, domain) in enumerate(self.edges):
            if left == relation:
                incident.append((edge_id, right, domain))
            elif right == relation:
                incident.append((edge_id, left, domain))
        return incident

    def tensor_signature(self, relation: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Return ``(axis_labels, shape)`` for one relation's tensor."""
        incident = self.incident_edges(relation)
        axes = tuple(edge_id for edge_id, *_ in incident)
        shape = tuple(domain for *_pair, domain in incident)
        return axes, shape

    @property
    def num_joins(self) -> int:
        return len(self.edges)

    def degree(self, relation: int) -> int:
        """Number of joins the relation participates in."""
        return len(self.incident_edges(relation))

    def sample_arrangement(self, rng: RandomSource = None) -> list[FrequencyTensor]:
        """Materialise one uniformly random arrangement of every relation."""
        gen = derive_rng(rng)
        tensors = []
        for position in range(self.num_relations):
            axes, shape = self.tensor_signature(position)
            tensors.append(
                arrange_frequency_tensor(
                    self.frequency_sets[position].frequencies, shape, axes, gen
                )
            )
        return tensors

    def exact_size(self, arrangement: Sequence[FrequencyTensor]) -> float:
        """Exact result size of a sampled arrangement (tensor contraction)."""
        return tree_result_size(arrangement)

    def build_histograms(
        self, factory: Callable[[FrequencySet], Histogram]
    ) -> list[Histogram]:
        """One histogram per relation, from its frequency set alone."""
        return [factory(fset) for fset in self.frequency_sets]

    def estimate_size(
        self,
        arrangement: Sequence[FrequencyTensor],
        histograms: Sequence[Histogram],
    ) -> float:
        """Histogram estimate: contract the approximated tensors."""
        if len(histograms) != self.num_relations:
            raise ValueError(
                f"need {self.num_relations} histograms, got {len(histograms)}"
            )
        approximated = [
            FrequencyTensor(hist.approximate_array(tensor.array), tensor.axes)
            for tensor, hist in zip(arrangement, histograms)
        ]
        return tree_result_size(approximated)


def make_zipf_star(
    num_leaves: int,
    *,
    domain: int = 10,
    total: float = 1000.0,
    z_values: Sequence[float],
) -> TreeQuery:
    """Build a star query: one hub relation joined with *num_leaves* leaves.

    The hub carries a ``num_leaves``-dimensional frequency tensor (frequency
    set of ``domain**num_leaves`` entries); each leaf is a vector over its
    own join domain.  ``z_values[0]`` is the hub's skew.
    """
    num_leaves = ensure_positive_int(num_leaves, "num_leaves")
    domain = ensure_positive_int(domain, "domain")
    total = ensure_positive(total, "total")
    z_values = tuple(float(z) for z in z_values)
    if len(z_values) != num_leaves + 1:
        raise ValueError(
            f"{num_leaves} leaves need {num_leaves + 1} z values, got {len(z_values)}"
        )
    edges = tuple((0, leaf, domain) for leaf in range(1, num_leaves + 1))
    sets = [FrequencySet(zipf_frequencies(total, domain**num_leaves, z_values[0]))]
    for leaf in range(1, num_leaves + 1):
        sets.append(FrequencySet(zipf_frequencies(total, domain, z_values[leaf])))
    return TreeQuery(num_leaves + 1, edges, tuple(sets), skews=z_values)


def make_zipf_tree(
    edges: Sequence[tuple[int, int, int]],
    *,
    total: float = 1000.0,
    z_values: Sequence[float],
) -> TreeQuery:
    """Build a tree query of arbitrary shape with Zipf frequency sets.

    *edges* are ``(left, right, domain_size)`` triples over relations
    numbered ``0..N``; ``z_values`` supplies one skew per relation.
    """
    total = ensure_positive(total, "total")
    edges = tuple((int(l), int(r), int(d)) for l, r, d in edges)
    num_relations = len(edges) + 1
    z_values = tuple(float(z) for z in z_values)
    if len(z_values) != num_relations:
        raise ValueError(
            f"{num_relations} relations need {num_relations} z values, "
            f"got {len(z_values)}"
        )
    # Tensor cell counts follow from each relation's incident edges.
    cells = [1] * num_relations
    for left, right, domain in edges:
        for endpoint in (left, right):
            if not 0 <= endpoint < num_relations:
                raise ValueError(
                    f"edge endpoint {endpoint} out of range for "
                    f"{num_relations} relations"
                )
        cells[left] *= domain
        cells[right] *= domain
    sets = tuple(
        FrequencySet(zipf_frequencies(total, cells[i], z_values[i]))
        for i in range(num_relations)
    )
    return TreeQuery(num_relations, edges, sets, skews=z_values)


def random_tree_query(
    num_relations: int,
    *,
    domain: int = 5,
    total: float = 1000.0,
    z_choices: Sequence[float] = (0.5, 1.0, 1.5, 2.0),
    rng: RandomSource = None,
) -> TreeQuery:
    """Draw a uniformly random tree shape with random per-relation skews.

    Uses a random attachment process (each new relation joins a uniformly
    chosen earlier one), covering chains, stars and everything between.
    """
    num_relations = ensure_positive_int(num_relations, "num_relations")
    if num_relations < 2:
        raise ValueError("a tree query joins at least two relations")
    gen = derive_rng(rng)
    edges = []
    for node in range(1, num_relations):
        attach = int(gen.integers(0, node))
        edges.append((attach, node, domain))
    z_values = [float(z_choices[gen.integers(0, len(z_choices))]) for _ in range(num_relations)]
    return make_zipf_tree(edges, total=total, z_values=z_values)
