"""Chain equality-join queries over frequency sets (Section 2.2).

A :class:`ChainQuery` records, for each relation of the chain
``Q := (R0.a1 = R1.a1 and ... and R(N-1).aN = RN.aN)``, the *shape* of its
frequency matrix and its frequency *set* — exactly the *minimum required
knowledge* of Section 3.2.  Sampling an **arrangement** materialises one
possible database consistent with that knowledge: each frequency set is
permuted uniformly at random over its matrix cells.  The exact result size
of an arrangement is the chain matrix product (Theorem 2.1); histogram
estimates multiply the per-relation histogram matrices instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional, Sequence

import numpy as np

from repro.core.frequency import FrequencyLike, FrequencySet
from repro.core.histogram import Histogram
from repro.core.matrix import FrequencyMatrix, arrange_frequency_set, chain_result_size
from repro.data.zipf import zipf_frequencies
from repro.util.rng import RandomSource, derive_rng
from repro.util.validation import ensure_positive, ensure_positive_int


@dataclass(frozen=True)
class ChainQuery:
    """An N-join chain query described by per-relation frequency sets.

    Attributes
    ----------
    shapes:
        Matrix shape of each relation ``R_0 .. R_N``: the first is
        ``(1, M_1)``, interior relations ``(M_j, M_{j+1})``, the last
        ``(M_N, 1)``.
    frequency_sets:
        One :class:`FrequencySet` per relation, sized to its shape.
    skews:
        Optional record of the Zipf ``z`` used to generate each set (for
        reporting only).
    """

    shapes: tuple[tuple[int, int], ...]
    frequency_sets: tuple[FrequencySet, ...]
    skews: Optional[tuple[float, ...]] = None

    def __post_init__(self):
        if len(self.shapes) != len(self.frequency_sets):
            raise ValueError(
                f"{len(self.shapes)} shapes but {len(self.frequency_sets)} frequency sets"
            )
        if len(self.shapes) < 2:
            raise ValueError("a chain query joins at least two relations")
        if self.shapes[0][0] != 1 or self.shapes[-1][1] != 1:
            raise ValueError("end relations must be vectors (shape (1, M) and (M, 1))")
        for position, (shape, fset) in enumerate(zip(self.shapes, self.frequency_sets)):
            rows, cols = shape
            if rows * cols != fset.size:
                raise ValueError(
                    f"relation {position}: shape {shape} holds {rows * cols} cells "
                    f"but the frequency set has {fset.size} entries"
                )
        for position in range(len(self.shapes) - 1):
            if self.shapes[position][1] != self.shapes[position + 1][0]:
                raise ValueError(
                    f"join-domain mismatch between relations {position} and "
                    f"{position + 1}: {self.shapes[position][1]} vs "
                    f"{self.shapes[position + 1][0]}"
                )
        if self.skews is not None and len(self.skews) != len(self.shapes):
            raise ValueError("skews must align with relations")

    @property
    def num_relations(self) -> int:
        return len(self.shapes)

    @property
    def num_joins(self) -> int:
        """N: the number of join predicates in the chain."""
        return len(self.shapes) - 1

    def sample_arrangement(self, rng: RandomSource = None) -> list[FrequencyMatrix]:
        """Materialise one uniformly random arrangement of every relation."""
        gen = derive_rng(rng)
        return [
            arrange_frequency_set(fset.frequencies, shape, gen)
            for fset, shape in zip(self.frequency_sets, self.shapes)
        ]

    def exact_size(self, arrangement: Sequence[FrequencyMatrix]) -> float:
        """Exact result size of a sampled arrangement (Theorem 2.1)."""
        return chain_result_size(arrangement)

    def build_histograms(
        self, factory: Callable[[FrequencySet], Histogram]
    ) -> list[Histogram]:
        """Build one histogram per relation from its frequency set alone.

        This is the practical regime Theorem 3.3 legitimises: each
        relation's histogram is chosen without looking at the query or at
        the other relations.
        """
        return [factory(fset) for fset in self.frequency_sets]

    def estimate_size(
        self,
        arrangement: Sequence[FrequencyMatrix],
        histograms: Sequence[Histogram],
    ) -> float:
        """Histogram estimate of the arrangement's result size."""
        if len(histograms) != self.num_relations:
            raise ValueError(
                f"need {self.num_relations} histograms, got {len(histograms)}"
            )
        approx = [
            hist.approximate_array(matrix.array)
            for matrix, hist in zip(arrangement, histograms)
        ]
        return chain_result_size(approx)


def make_zipf_chain(
    num_joins: int,
    *,
    domain: int = 10,
    total: float = 1000.0,
    z_values: Sequence[float],
) -> ChainQuery:
    """Build the Section 5.2 chain query with Zipf frequency sets.

    Every join domain has *domain* values.  The two end relations are
    vectors over it (frequency sets of M = *domain* entries); interior
    relations are ``domain x domain`` matrices (frequency sets of M²
    entries) — the paper uses ``domain = 10``, so ends have M = 10 and
    interiors M = 100.  ``z_values`` supplies the Zipf skew of each of the
    ``num_joins + 1`` relations.
    """
    num_joins = ensure_positive_int(num_joins, "num_joins")
    domain = ensure_positive_int(domain, "domain")
    total = ensure_positive(total, "total")
    z_values = tuple(float(z) for z in z_values)
    if len(z_values) != num_joins + 1:
        raise ValueError(
            f"{num_joins} joins need {num_joins + 1} z values, got {len(z_values)}"
        )
    shapes: list[tuple[int, int]] = [(1, domain)]
    for _ in range(1, num_joins):
        shapes.append((domain, domain))
    shapes.append((domain, 1))

    sets = [
        FrequencySet(zipf_frequencies(total, shape[0] * shape[1], z))
        for shape, z in zip(shapes, z_values)
    ]
    return ChainQuery(tuple(shapes), tuple(sets), skews=z_values)


def selection_query(
    relation_distribution_values: Sequence[Hashable],
    relation_frequencies: FrequencyLike,
    selected: Sequence[Hashable],
) -> tuple[FrequencyMatrix, FrequencyMatrix]:
    """Encode a disjunctive equality selection as a two-relation chain.

    Returns ``(relation_vector, selection_vector)`` whose chain product is
    the exact selection size — the paper's Example 2.2 construction with the
    0/1 transpose vector.
    """
    from repro.core.matrix import selection_vector as _selection_vector

    values = list(relation_distribution_values)
    relation = FrequencyMatrix.row_vector(relation_frequencies, values=values)
    selector = _selection_vector(values, selected, column=True)
    return relation, selector
