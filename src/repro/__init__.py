"""repro — reproduction of Ioannidis & Poosala (SIGMOD 1995).

"Balancing Histogram Optimality and Practicality for Query Result Size
Estimation": serial and end-biased histograms, v-optimality, the V-OptHist
and V-OptBiasHist construction algorithms, and the full experimental
evaluation, on top of an in-memory relational substrate.

Quickstart::

    from repro import zipf_frequencies, v_opt_bias_hist, self_join_size

    freqs = zipf_frequencies(total=1000, domain_size=100, z=1.0)
    hist = v_opt_bias_hist(freqs, buckets=5)
    print(self_join_size(freqs), hist.self_join_estimate())
"""

from __future__ import annotations

from repro.core import (
    AttributeDistribution,
    EstimateOptions,
    FrequencyMatrix,
    FrequencySet,
    Histogram,
    advisory_report,
    arrange_frequency_set,
    chain_result_size,
    equi_depth_histogram,
    equi_width_histogram,
    estimate_chain,
    estimate_chain_size,
    estimate_equality,
    estimate_equality_selection,
    estimate_join,
    estimate_join_size,
    estimate_membership,
    estimate_not_equal,
    estimate_range,
    estimate_range_selection,
    estimate_self_join,
    joint_matrix_algorithm,
    matrix_algorithm,
    minimum_buckets,
    relative_error,
    selection_vector,
    self_join_error,
    self_join_size,
    trivial_histogram,
    v_opt_bias_hist,
    v_opt_hist_dp,
    v_opt_hist_exhaustive,
    v_optimal_serial_histogram,
)
from repro.data import zipf_frequencies

__version__ = "1.0.0"

__all__ = [
    "AttributeDistribution",
    "EstimateOptions",
    "FrequencyMatrix",
    "FrequencySet",
    "Histogram",
    "advisory_report",
    "arrange_frequency_set",
    "chain_result_size",
    "equi_depth_histogram",
    "equi_width_histogram",
    "estimate_chain",
    "estimate_chain_size",
    "estimate_equality",
    "estimate_equality_selection",
    "estimate_join",
    "estimate_join_size",
    "estimate_membership",
    "estimate_not_equal",
    "estimate_range",
    "estimate_range_selection",
    "estimate_self_join",
    "joint_matrix_algorithm",
    "matrix_algorithm",
    "minimum_buckets",
    "relative_error",
    "selection_vector",
    "self_join_error",
    "self_join_size",
    "trivial_histogram",
    "v_opt_bias_hist",
    "v_opt_hist_dp",
    "v_opt_hist_exhaustive",
    "v_optimal_serial_histogram",
    "zipf_frequencies",
    "__version__",
]
