"""Command-line interface to the reproduction.

Subcommands cover the common interactive uses:

* ``zipf`` — print a Zipf frequency vector (equation (1));
* ``histogram`` — build a histogram over a Zipf set and show its buckets;
* ``advise`` — minimum buckets for an error tolerance (Section 3.1);
* ``selfjoin`` — one row of the Figures 3-5 comparison;
* ``chain`` — one row of the Figures 6-7 comparison;
* ``table1`` — the construction-cost table;
* ``serve-stats`` — batched estimation-service workload with cache metrics
  (``--obs`` appends the metric registry; ``--emit-wire``/``--probes-from``
  write and replay wire-schema batch artifacts);
* ``serve`` — the asyncio network front-end over a synthetic analyzed
  catalog (length-prefixed frames + HTTP shim; see docs/NETWORK.md);
* ``obs dump`` — drive a serve+maintain+recover workload and expose the
  metric registry (Prometheus text or JSON);
* ``obs trace dump|tree|slowest`` — inspect a JSONL span-sink file
  (raw spans, assembled trace trees, slowest traces);
* ``stats check`` / ``stats repair`` — verify or repair an on-disk
  statistics catalog (checksums, journal replay, quarantine);
* ``agent run|status|enqueue|dead-letter`` — the durable maintenance
  agent and its job queue (see docs/MAINTENANCE.md);
* ``arrangements`` — the Section 3.1 arrangement study.

Exit codes for the scripting-oriented commands (``stats``, ``agent``)
are documented in docs/PERSISTENCE.md: 0 success, 1 findings
(``stats check``), 2 usage, :data:`EXIT_CORRUPTION` (3) when corruption
was found, :data:`EXIT_IO_ERROR` (4) when the storage itself failed.

Example::

    python -m repro.cli advise --total 10000 --domain 200 --z 1.5 --tolerance 0.01
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

#: Exit codes shared by the scripting-oriented subcommands so CI can tell
#: outcomes apart (documented in docs/PERSISTENCE.md).  0 = success,
#: 1 = findings reported (``stats check``), 2 = usage error (argparse).
EXIT_CORRUPTION = 3
EXIT_IO_ERROR = 4


def _add_zipf_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--total", type=float, default=1000.0, help="relation size T")
    parser.add_argument("--domain", type=int, default=100, help="domain size M")
    parser.add_argument("--z", type=float, default=1.0, help="Zipf skew parameter")


def _cmd_zipf(args) -> int:
    from repro.data.quantize import quantize_to_integers
    from repro.data.zipf import zipf_frequencies

    freqs = zipf_frequencies(args.total, args.domain, args.z)
    if args.quantize:
        freqs = quantize_to_integers(freqs)
    for rank, freq in enumerate(freqs, start=1):
        print(f"{rank}\t{freq:g}")
    return 0


def _cmd_histogram(args) -> int:
    from repro.data.zipf import zipf_frequencies
    from repro.core.biased import v_opt_bias_hist
    from repro.core.serial import v_optimal_serial_histogram
    from repro.core.heuristic import trivial_histogram
    from repro.core.optimality import self_join_size

    freqs = zipf_frequencies(args.total, args.domain, args.z)
    if args.kind == "end-biased":
        hist = v_opt_bias_hist(freqs, args.buckets)
    elif args.kind == "serial":
        hist = v_optimal_serial_histogram(freqs, args.buckets, method="dp")
    elif args.kind == "trivial":
        hist = trivial_histogram(freqs)
    else:
        print(f"unknown histogram kind {args.kind!r}", file=sys.stderr)
        return 2
    exact = self_join_size(freqs)
    print(f"kind={hist.kind} buckets={hist.bucket_count} M={args.domain}")
    for index, bucket in enumerate(hist.buckets, start=1):
        print(
            f"  bucket {index}: count={bucket.count} total={bucket.total:.2f} "
            f"avg={bucket.average:.4f} var={bucket.variance:.4f}"
        )
    print(f"self-join exact={exact:.1f} estimate={hist.self_join_estimate():.1f} "
          f"error={hist.self_join_error():.1f}")
    return 0


def _cmd_advise(args) -> int:
    from repro.core.advisor import advisory_report, minimum_buckets
    from repro.data.zipf import zipf_frequencies

    freqs = zipf_frequencies(args.total, args.domain, args.z)
    bucket_counts = [b for b in (1, 2, 5, 10, 20, 50) if b <= args.domain]
    for row in advisory_report(freqs, bucket_counts, kind=args.kind):
        print(f"  {row}")
    needed = minimum_buckets(freqs, args.tolerance, kind=args.kind)
    print(
        f"minimum {args.kind} buckets for {args.tolerance:.2%} relative "
        f"self-join error: {needed}"
    )
    return 0


def _cmd_selfjoin(args) -> int:
    from repro.data.zipf import zipf_frequencies
    from repro.experiments.selfjoin import HistogramType, self_join_sigmas

    freqs = zipf_frequencies(args.total, args.domain, args.z)
    sigmas = self_join_sigmas(
        freqs, args.buckets, trials=args.trials, rng=args.seed
    )
    for histogram_type in HistogramType:
        print(f"{histogram_type.value:>12s}  sigma={sigmas[histogram_type]:.2f}")
    return 0


def _cmd_chain(args) -> int:
    from repro.experiments.chains import CHAIN_HISTOGRAM_TYPES, mean_relative_error
    from repro.queries.workload import QueryClass, sample_chain_query

    query_class = {
        "low": QueryClass.LOW_SKEW,
        "mixed": QueryClass.MIXED_SKEW,
        "high": QueryClass.HIGH_SKEW,
    }[args.skew_class]
    query = sample_chain_query(args.joins, query_class, rng=args.seed)
    print(f"chain query: {args.joins} joins, skews={query.skews}")
    for histogram_type in CHAIN_HISTOGRAM_TYPES:
        error = mean_relative_error(
            query,
            histogram_type,
            args.buckets,
            permutations=args.permutations,
            rng=args.seed,
        )
        print(f"{histogram_type.value:>12s}  E[|S-S'|/S]={error:.4f}")
    return 0


def _cmd_table1(args) -> int:
    from repro.experiments.config import TimingExperimentConfig
    from repro.experiments.report import format_table
    from repro.experiments.timing import construction_timing_table

    config = TimingExperimentConfig(
        serial_sizes=tuple(args.serial_sizes),
        end_biased_sizes=tuple(args.end_biased_sizes),
        repeats=args.repeats,
    )
    rows = construction_timing_table(config)
    table = [
        [r.set_size, r.serial_seconds.get(3), r.serial_seconds.get(5), r.end_biased_seconds]
        for r in rows
    ]
    print(
        format_table(
            ["attribute values", "serial b=3", "serial b=5", "end-biased b=10"],
            table,
            precision=5,
        )
    )
    return 0


def _cmd_tune(args) -> int:
    """Demonstrate the statistics tuner on synthetic relations."""
    from repro.data.quantize import quantize_to_integers
    from repro.data.zipf import zipf_frequencies
    from repro.engine.catalog import StatsCatalog
    from repro.engine.relation import Relation
    from repro.engine.tuning import tune_database
    from repro.util.rng import derive_rng

    gen = derive_rng(args.seed)
    relations = []
    for index, z in enumerate(args.z_values):
        freqs = quantize_to_integers(zipf_frequencies(args.total, args.domain, z))
        column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
        gen.shuffle(column)
        relations.append(Relation.from_columns(f"R{index}", {"a": column}))
    catalog = StatsCatalog()
    for rec in tune_database(relations, catalog, tolerance=args.tolerance):
        print(rec)
    print(f"catalog now holds {len(catalog)} analyzed attributes")
    return 0


def _build_synthetic_catalog(args, gen):
    """Analyzed Zipf columns R0..Rn shared by ``serve-stats`` and ``serve``."""
    from repro.data.quantize import quantize_to_integers
    from repro.data.zipf import zipf_frequencies
    from repro.engine.analyze import analyze_relation
    from repro.engine.catalog import StatsCatalog
    from repro.engine.relation import Relation

    catalog = StatsCatalog()
    names = []
    for index, z in enumerate(args.z_values):
        freqs = quantize_to_integers(zipf_frequencies(args.total, args.domain, z))
        column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
        gen.shuffle(column)
        relation = Relation.from_columns(f"R{index}", {"a": column})
        analyze_relation(relation, "a", catalog, kind=args.kind, buckets=args.buckets)
        names.append(relation.name)
    return catalog, names


def _build_synthetic_probes(args, gen, names):
    """The mixed equality/range/join workload the serve commands drive."""
    from repro.serve import EqualityProbe, JoinProbe, RangeProbe

    probes = []
    for _ in range(args.probes):
        name = names[int(gen.integers(len(names)))]
        shape = int(gen.integers(3))
        if shape == 0:
            probes.append(EqualityProbe(name, "a", int(gen.integers(args.domain))))
        elif shape == 1:
            low, high = sorted(int(v) for v in gen.integers(args.domain, size=2))
            probes.append(RangeProbe(name, "a", low, high))
        else:
            other = names[int(gen.integers(len(names)))]
            probes.append(JoinProbe(name, "a", other, "a"))
    # Poison the tail with unknown-relation probes to demonstrate the
    # degradation accounting (--unknown-probes 0 keeps the batch clean).
    for index in range(getattr(args, "unknown_probes", 0)):
        probes.append(EqualityProbe("UNANALYZED", "a", index))
    return probes


def _load_wire_probes(path: str):
    """Read a wire-schema probe batch (see ``repro serve-stats --emit-wire``)."""
    import json

    from repro.net import probes_from_wire
    from repro.net.protocol import check_version

    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        check_version(payload)
        entries = payload.get("probes", [])
    else:
        entries = payload
    return probes_from_wire(entries)


def _dump_wire_probes(probes, path: str) -> None:
    """Write *probes* as a replayable wire-schema batch artifact."""
    import json

    from repro.net import probes_to_wire
    from repro.net.protocol import message

    payload = message("batch", probes=probes_to_wire(probes))
    text = json.dumps(payload, indent=2, allow_nan=False)
    if path == "-":
        print(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def _cmd_serve_stats(args) -> int:
    """Run a batched workload (synthetic or replayed) and report metrics."""
    import numpy as np

    from repro.serve import EstimationService
    from repro.util.rng import derive_rng

    gen = derive_rng(args.seed)
    catalog, names = _build_synthetic_catalog(args, gen)
    service = EstimationService(catalog, on_error=args.on_error)
    if args.probes_from:
        probes = _load_wire_probes(args.probes_from)
        print(f"replaying {len(probes)} probes from {args.probes_from}")
    else:
        probes = _build_synthetic_probes(args, gen, names)
    if args.emit_wire:
        _dump_wire_probes(probes, args.emit_wire)
        if args.emit_wire != "-":
            print(f"wrote wire batch artifact to {args.emit_wire}")
    estimates = service.estimate_batch(probes)
    finite = estimates[np.isfinite(estimates)]
    print(
        f"answered {estimates.size} probes over {len(names)} analyzed columns; "
        f"estimate mass {float(np.sum(finite, dtype=np.float64)):.1f}"
    )
    print(f"catalog version: {catalog.version}")
    print(service.stats().format())
    if args.obs:
        from repro.obs import get_registry

        print()
        print("# --- metric registry (repro obs) ---")
        sys.stdout.write(get_registry().to_prometheus())
    return 0


def _cmd_serve(args) -> int:
    """Serve a synthetic analyzed catalog over the network protocol.

    Binds the asyncio estimation server (length-prefixed frames + the
    HTTP/JSON shim on one port), prints the bound address, and serves
    until ``--duration`` elapses or Ctrl-C.  Tenants come from repeated
    ``--tenant NAME=TOKEN`` flags; without any, the server is open.
    """
    import asyncio

    from repro.net import EstimationServer, TenantConfig
    from repro.serve import EstimationService
    from repro.util.rng import derive_rng

    gen = derive_rng(args.seed)
    catalog, names = _build_synthetic_catalog(args, gen)
    service = EstimationService(catalog, on_error=args.on_error)
    tenants = []
    for spec in args.tenant or []:
        name, sep, token = spec.partition("=")
        if not sep or not name or not token:
            print(f"--tenant must look like NAME=TOKEN, got {spec!r}", file=sys.stderr)
            return 2
        tenants.append(
            TenantConfig(
                name=name,
                token=token,
                max_probes_per_batch=args.quota_batch,
                max_pending_probes=args.quota_pending,
            )
        )
    server = EstimationServer(
        service,
        host=args.host,
        port=args.port,
        tenants=tenants or None,
        chunk_probes=args.chunk_probes,
    )

    async def run() -> None:
        host, port = await server.start()
        print(f"serving {len(names)} analyzed columns on {host}:{port}", flush=True)
        try:
            if args.duration > 0:
                await asyncio.sleep(args.duration)
            else:
                await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    print(service.stats().format())
    return 0


def _run_obs_workload(seed: int, probes: int) -> object:
    """Drive a small serve + maintain + crash-recover workload.

    Populates the default metric registry with live counters, span
    histograms, events, and accuracy-monitor samples so ``repro obs dump``
    has something real to expose: batched equality/range/join probes over
    analyzed Zipf columns (each equality answer checked against the exact
    column frequency), a journaled maintained histogram that publishes and
    checkpoints through ``save_catalog``, a recovery load whose report the
    service absorbs, and a Proposition 3.1 self-join cross-check.
    """
    import tempfile
    from collections import Counter

    from repro.core.biased import v_opt_bias_hist
    from repro.core.frequency import AttributeDistribution
    from repro.core.optimality import self_join_size
    from repro.data.quantize import quantize_to_integers
    from repro.data.zipf import zipf_frequencies
    from repro.engine.analyze import analyze_relation
    from repro.engine.catalog import StatsCatalog
    from repro.engine.journal import MaintenanceJournal
    from repro.engine.persist import load_catalog, save_catalog
    from repro.engine.relation import Relation
    from repro.maint.update import MaintainedEndBiased
    from repro.obs import get_monitor
    from repro.serve import EqualityProbe, EstimationService, JoinProbe, RangeProbe
    from repro.util.rng import derive_rng

    gen = derive_rng(seed)
    catalog = StatsCatalog()
    columns: dict[str, Counter] = {}
    names = []
    domain = 120
    for index, z in enumerate((0.6, 1.2)):
        freqs = quantize_to_integers(zipf_frequencies(4000.0, domain, z))
        column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
        gen.shuffle(column)
        relation = Relation.from_columns(f"R{index}", {"a": column})
        analyze_relation(relation, "a", catalog, kind="end-biased", buckets=12)
        columns[relation.name] = Counter(column)
        names.append(relation.name)

    monitor = get_monitor()
    service = EstimationService(catalog, name="obs-workload")
    eq_probes = [
        EqualityProbe(
            names[int(gen.integers(len(names)))], "a", int(gen.integers(domain))
        )
        for _ in range(probes)
    ]
    estimates = service.estimate_batch(eq_probes)
    for probe, estimated in zip(eq_probes, estimates):
        actual = float(columns[probe.relation].get(probe.value, 0))
        monitor.record_observation(probe, float(estimated), actual)
    service.estimate_batch(
        [
            RangeProbe(names[0], "a", 3, 40),
            JoinProbe(names[0], "a", names[1], "a"),
        ]
    )

    # One loopback round-trip through the network front-end so the
    # net.* spans and per-tenant counters land in the registry too.
    from time import perf_counter, sleep

    from repro.net import EstimationClient, TenantConfig, serve_in_thread
    from repro.obs import get_registry

    with serve_in_thread(
        service,
        tenants=[TenantConfig(name="obs-tenant", token="obs")],
        name="obs-net",
    ) as handle:
        host, port = handle.address
        with EstimationClient(host, port, token="obs") as client:
            client.estimate_batch(eq_probes[:64])
        # The net.accept span closes when the server finishes tearing
        # down the connection we just left; wait for it (bounded) so the
        # dump reliably includes the whole span family.
        deadline = perf_counter() + 2.0
        while perf_counter() < deadline:
            if 'span="net.accept"' in get_registry().to_prometheus():
                break
            sleep(0.02)

    # Proposition 3.1 cross-check: S - S' = Σ p_i·v_i on a seeded Zipf set.
    check_freqs = quantize_to_integers(zipf_frequencies(2000.0, 60, 1.0))
    monitor.record_self_join(
        "zipf-check", v_opt_bias_hist(check_freqs, 8), self_join_size(check_freqs)
    )

    with tempfile.TemporaryDirectory(prefix="repro-obs-") as scratch:
        snapshot = Path(scratch) / "catalog.json"
        journal_path = Path(scratch) / "catalog.journal"
        journal = MaintenanceJournal(journal_path)
        maint_freqs = quantize_to_integers(zipf_frequencies(1500.0, 40, 1.0))
        distribution = AttributeDistribution(
            list(range(len(maint_freqs))), maint_freqs
        )
        maintained = MaintainedEndBiased(
            distribution, 6, journal=journal, relation="M0", attribute="a"
        )
        for _ in range(25):
            maintained.insert(int(gen.integers(len(maint_freqs))))
        maintained.publish(catalog, "M0", "a")
        save_catalog(catalog, snapshot, journal=journal)
        # Deltas after the snapshot are exactly what recovery must replay.
        for _ in range(10):
            maintained.insert(int(gen.integers(len(maint_freqs))))
        report = load_catalog(snapshot, recover=True, journal=journal_path)
        service.apply_recovery(report)
        service.estimate_batch([EqualityProbe("M0", "a", 1)])
    # The caller must keep the service alive through exposition: its
    # metrics are exported via a weak registry collector.
    return service


def _cmd_obs_dump(args) -> int:
    """Expose the default metric registry (after an optional workload)."""
    from repro.obs import get_registry

    service = None
    if not args.no_workload:
        service = _run_obs_workload(args.seed, args.probes)
    registry = get_registry()
    if args.format == "prom":
        sys.stdout.write(registry.to_prometheus())
    else:
        print(registry.to_json())
    del service  # held alive until after exposition (weak collector)
    return 0


def _cmd_obs_trace(args) -> int:
    """Inspect a JSONL span sink: raw spans, assembled trees, slowest."""
    import json

    from repro.obs.export import (
        assemble_traces,
        read_spans,
        render_trace_tree,
        slowest_traces,
        span_to_wire,
        trace_summary,
    )

    try:
        records, dropped = read_spans(args.file)
    except OSError as exc:
        print(f"repro obs trace: I/O error: {exc}", file=sys.stderr)
        return EXIT_IO_ERROR
    if dropped:
        print(
            f"repro obs trace: skipped {dropped} malformed line(s)",
            file=sys.stderr,
        )
    if args.mode == "dump":
        for record in records:
            print(json.dumps(span_to_wire(record), sort_keys=True))
        return 0
    traces = assemble_traces(records)
    if args.mode == "slowest":
        traces = slowest_traces(traces, limit=args.limit)
    elif args.limit:
        traces = traces[: args.limit]
    for trace in traces:
        summary = trace_summary(trace)
        duration_ms = summary["duration_seconds"] * 1000.0
        print(
            f"trace {summary['trace_id'] or '<untraced>'}: "
            f"{summary['spans']} spans, {duration_ms:.3f} ms"
            + (" [error]" if summary["error"] else "")
        )
        print(render_trace_tree(trace))
    return 0


def _cmd_stats_check(args) -> int:
    """Verify an on-disk catalog: checksums, format, journal health."""
    from repro.engine.persist import load_catalog

    try:
        report = load_catalog(args.catalog, recover=True, journal=args.journal)
    except OSError as exc:
        print(f"repro stats check: I/O error: {exc}", file=sys.stderr)
        return EXIT_IO_ERROR
    print(report.summary())
    return 0 if report.clean else 1


def _cmd_stats_repair(args) -> int:
    """Rewrite a catalog snapshot keeping only verified (+replayed) entries.

    Exit codes: 0 when the input was already clean, :data:`EXIT_CORRUPTION`
    when corruption was found (and repaired away), :data:`EXIT_IO_ERROR`
    when the storage itself failed.
    """
    from repro.engine.journal import MaintenanceJournal
    from repro.engine.persist import load_catalog, save_catalog

    try:
        report = load_catalog(args.catalog, recover=True, journal=args.journal)
    except OSError as exc:
        print(f"repro stats repair: I/O error: {exc}", file=sys.stderr)
        return EXIT_IO_ERROR
    print(report.summary())
    in_place = args.output is None
    destination = args.catalog if in_place else args.output
    # Checkpointing drops journal records the *repaired* snapshot includes.
    # That is only safe when the repaired snapshot replaces the original;
    # repairing to --output must leave the original snapshot/journal pair
    # untouched, or serving from the original path would lose those
    # acknowledged deltas.
    try:
        journal = (
            MaintenanceJournal(args.journal)
            if args.journal is not None and in_place
            else None
        )
        save_catalog(report.catalog, destination, journal=journal)
    except OSError as exc:
        print(f"repro stats repair: I/O error: {exc}", file=sys.stderr)
        return EXIT_IO_ERROR
    if args.journal is not None and not in_place:
        print(f"journal {args.journal} left untouched (repairing to a copy)")
    print(
        f"repaired snapshot written to {destination}: "
        f"{len(report.catalog)} entries kept, "
        f"{len(report.quarantined)} quarantined entries dropped"
    )
    if report.quarantined:
        print(
            "note: dropped statistics are gone; re-run ANALYZE for "
            + ", ".join(sorted({q.label() for q in report.quarantined}))
        )
    return 0 if report.clean else EXIT_CORRUPTION


def _run_agent_command(body) -> int:
    """Run one ``repro agent`` handler body under the shared exit-code map."""
    from repro.engine.eventlog import LogFormatError
    from repro.engine.persist import CatalogFormatError

    try:
        return body()
    except (LogFormatError, CatalogFormatError) as exc:
        print(f"repro agent: corruption: {exc}", file=sys.stderr)
        return EXIT_CORRUPTION
    except OSError as exc:
        print(f"repro agent: I/O error: {exc}", file=sys.stderr)
        return EXIT_IO_ERROR


def _open_queue(args):
    from repro.maint.queue import DurableJobQueue

    return DurableJobQueue(args.queue, lease_duration=args.lease)


def _cmd_agent_run(args) -> int:
    """Run the maintenance agent over a durable queue until drained/stopped."""

    def body() -> int:
        from repro.engine.catalog import StatsCatalog
        from repro.engine.journal import MaintenanceJournal
        from repro.engine.persist import load_catalog
        from repro.maint.agent import AgentContext, DriftPolicy, MaintenanceAgent

        queue = _open_queue(args)
        snapshot_path = Path(args.catalog) if args.catalog else None
        if snapshot_path is not None and snapshot_path.exists():
            catalog = load_catalog(snapshot_path, journal=args.journal)
        else:
            catalog = StatsCatalog()
        journal = (
            MaintenanceJournal(args.journal) if args.journal is not None else None
        )
        context = AgentContext(
            queue=queue,
            catalog=catalog,
            snapshot_path=snapshot_path,
            journal=journal,
            buckets=args.buckets,
            drift=DriftPolicy(
                max_relative_error=args.drift_threshold,
                min_observations=args.drift_min_observations,
            ),
        )
        agent = MaintenanceAgent(context, name=args.name)
        if args.max_jobs is not None:
            resolved = agent.run(max_jobs=args.max_jobs)
        else:
            try:
                resolved = agent.run()
            except KeyboardInterrupt:
                agent.stop()
                resolved = agent.drain()
        print(
            f"agent {args.name}: resolved {resolved} job(s); "
            f"queue depth now {queue.depth()} "
            f"(pending={queue.depth('pending')}, dead={queue.depth('dead')})"
        )
        return 0

    return _run_agent_command(body)


def _cmd_agent_status(args) -> int:
    """Read-only queue diagnosis; exit 3 on any log damage (strict scan)."""

    def body() -> int:
        from repro.engine.eventlog import scan_log
        from repro.maint.queue import JOB_STATUSES, _validate_event

        # Strict scan first: status must *report* damage, never repair it.
        scan_log(args.queue, strict=True, validate=_validate_event)
        queue = _open_queue(args)
        print(f"queue: {args.queue}")
        depths = " ".join(
            f"{status}={queue.depth(status)}" for status in JOB_STATUSES
        )
        print(f"jobs: total={queue.depth()} {depths}")
        print(f"oldest pending age: {queue.oldest_pending_age():.1f}s")
        for job in queue.jobs():
            if job["status"] == "done" and not args.all:
                continue
            line = (
                f"  {job['id']} {job['kind']} {job['status']} "
                f"attempts={job['attempts']}"
            )
            if job["owner"]:
                line += f" owner={job['owner']}"
            if job["last_error"]:
                line += f" error={job['last_error']!r}"
            print(line)
        return 0

    return _run_agent_command(body)


def _cmd_agent_enqueue(args) -> int:
    """Durably enqueue one maintenance job (idempotent with --dedupe-key)."""

    def body() -> int:
        queue = _open_queue(args)
        params: dict = {}
        if args.relation is not None:
            params["relation"] = args.relation
        if args.attribute is not None:
            params["attribute"] = args.attribute
        if args.threshold is not None:
            params["threshold"] = args.threshold
        dedupe_key = args.dedupe_key
        if dedupe_key is None and args.kind == "rebuild" and params:
            dedupe_key = (
                f"rebuild:{params.get('relation')}.{params.get('attribute')}"
            )
        job = queue.enqueue(args.kind, params or None, dedupe_key=dedupe_key)
        print(f"enqueued {job.id} ({job.kind})")
        return 0

    return _run_agent_command(body)


def _cmd_agent_dead_letter(args) -> int:
    """List the dead-letter lane, or requeue one job out of it."""

    def body() -> int:
        queue = _open_queue(args)
        if args.requeue is not None:
            try:
                job = queue.requeue_dead(args.requeue)
            except ValueError as exc:
                print(f"repro agent: {exc}", file=sys.stderr)
                return 2
            print(f"requeued {job.id} ({job.kind})")
            return 0
        lane = queue.dead_letters()
        if not lane:
            print("dead-letter lane is empty")
            return 0
        for job in lane:
            print(
                f"{job['id']} {job['kind']} attempts={job['attempts']} "
                f"error={job['last_error']!r}"
            )
        return 0

    return _run_agent_command(body)


def _cmd_describe(args) -> int:
    from repro.data.zipf import zipf_frequencies
    from repro.util.stats import profile_frequencies

    freqs = zipf_frequencies(args.total, args.domain, args.z)
    print(profile_frequencies(freqs))
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.diagnostics import format_report
    from repro.analysis.linter import (
        LintConfig,
        LintError,
        discover_changed_files,
        exit_code,
        lint_paths,
        parse_rule_selection,
    )
    from repro.analysis.rules import ALL_RULES
    from repro.analysis.sarif import to_sarif_json

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code} [{rule.severity.value}] {rule.name}: {rule.summary}")
        return 0
    paths = args.paths or _default_lint_paths()
    if not paths:
        print("repro lint: no lintable paths found", file=sys.stderr)
        return 2
    try:
        if args.changed is not False:
            base = args.changed if args.changed is not None else "HEAD"
            paths = discover_changed_files(base, roots=paths)
            if not paths:
                if args.format == "text":
                    print("repolint: clean (no changed files)")
                else:
                    print(to_sarif_json([]), end="")
                return 0
        config = LintConfig(select=parse_rule_selection(args.rules))
        violations = lint_paths(paths, config, jobs=args.jobs)
    except LintError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    if args.format == "sarif":
        print(to_sarif_json(violations), end="")
    else:
        print(format_report(violations))
    return exit_code(violations, strict=args.strict)


def _default_lint_paths() -> list[str]:
    """The project trees ``repro lint`` covers when no paths are given.

    The installed package is always linted; ``benchmarks/`` rides along when
    running from a source checkout that has it.
    """
    import repro

    package_dir = Path(repro.__file__).resolve().parent
    paths = [str(package_dir)]
    benchmarks = package_dir.parent.parent / "benchmarks"
    if benchmarks.is_dir():
        paths.append(str(benchmarks))
    return paths


def _cmd_arrangements(args) -> int:
    from repro.data.zipf import zipf_frequencies
    from repro.experiments.arrangements import optimal_biased_pair_study

    study = optimal_biased_pair_study(
        zipf_frequencies(args.total, args.domain, args.z_left),
        zipf_frequencies(args.total, args.domain, args.z_right),
        args.buckets,
        max_arrangements=args.max_arrangements,
        rng=args.seed,
    )
    print(study)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Ioannidis & Poosala (SIGMOD 1995): serial and "
            "end-biased histograms for query result size estimation."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("zipf", help="print a Zipf frequency vector (eq. (1))")
    _add_zipf_arguments(p)
    p.add_argument("--quantize", action="store_true", help="round to integers")
    p.set_defaults(func=_cmd_zipf)

    p = sub.add_parser("histogram", help="build and display one histogram")
    _add_zipf_arguments(p)
    p.add_argument("--buckets", type=int, default=5)
    p.add_argument("--kind", choices=["trivial", "end-biased", "serial"], default="end-biased")
    p.set_defaults(func=_cmd_histogram)

    p = sub.add_parser("advise", help="minimum buckets for an error tolerance")
    _add_zipf_arguments(p)
    p.add_argument("--tolerance", type=float, default=0.01)
    p.add_argument("--kind", choices=["end-biased", "serial"], default="end-biased")
    p.set_defaults(func=_cmd_advise)

    p = sub.add_parser("selfjoin", help="one self-join sigma comparison (Figs. 3-5)")
    _add_zipf_arguments(p)
    p.add_argument("--buckets", type=int, default=5)
    p.add_argument("--trials", type=int, default=50)
    p.add_argument("--seed", type=int, default=1995)
    p.set_defaults(func=_cmd_selfjoin)

    p = sub.add_parser("chain", help="one chain-query comparison (Figs. 6-7)")
    p.add_argument("--joins", type=int, default=5)
    p.add_argument("--buckets", type=int, default=5)
    p.add_argument("--skew-class", choices=["low", "mixed", "high"], default="mixed")
    p.add_argument("--permutations", type=int, default=20)
    p.add_argument("--seed", type=int, default=1995)
    p.set_defaults(func=_cmd_chain)

    p = sub.add_parser("table1", help="construction-cost table (Table 1)")
    p.add_argument("--serial-sizes", type=int, nargs="+", default=[10, 15, 20])
    p.add_argument("--end-biased-sizes", type=int, nargs="+", default=[100, 10_000])
    p.add_argument("--repeats", type=int, default=1)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("describe", help="summary statistics of a Zipf frequency set")
    _add_zipf_arguments(p)
    p.set_defaults(func=_cmd_describe)

    p = sub.add_parser("tune", help="recommend and apply per-attribute bucket counts")
    p.add_argument("--total", type=float, default=1000.0)
    p.add_argument("--domain", type=int, default=50)
    p.add_argument("--z-values", type=float, nargs="+", default=[0.05, 1.0, 2.0])
    p.add_argument("--tolerance", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=1995)
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser(
        "serve-stats",
        help="run a synthetic batched workload and print service metrics",
    )
    p.add_argument("--total", type=float, default=10_000.0)
    p.add_argument("--domain", type=int, default=200)
    p.add_argument("--z-values", type=float, nargs="+", default=[0.5, 1.0, 2.0])
    p.add_argument("--kind", choices=["end-biased", "serial"], default="end-biased")
    p.add_argument("--buckets", type=int, default=10)
    p.add_argument("--probes", type=int, default=1000)
    p.add_argument(
        "--on-error",
        choices=["fallback", "nan", "raise"],
        default="fallback",
        help="policy for unanswerable probes (see docs/API.md)",
    )
    p.add_argument(
        "--unknown-probes",
        type=int,
        default=0,
        help="append N probes against an un-ANALYZEd relation to exercise "
        "the degradation counters",
    )
    p.add_argument("--seed", type=int, default=1995)
    p.add_argument(
        "--obs",
        action="store_true",
        help="also dump the metric registry (Prometheus text) after the run",
    )
    p.add_argument(
        "--probes-from",
        metavar="FILE.json",
        default=None,
        help="replay a wire-schema probe batch instead of generating one "
        "(see --emit-wire and docs/NETWORK.md)",
    )
    p.add_argument(
        "--emit-wire",
        metavar="FILE.json",
        default=None,
        help="write the driven probe batch as a replayable wire-schema "
        "artifact ('-' for stdout)",
    )
    p.set_defaults(func=_cmd_serve_stats)

    p = sub.add_parser(
        "serve",
        help="serve a synthetic analyzed catalog over the network protocol",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0, help="0 picks a free port")
    p.add_argument("--total", type=float, default=10_000.0)
    p.add_argument("--domain", type=int, default=200)
    p.add_argument("--z-values", type=float, nargs="+", default=[0.5, 1.0, 2.0])
    p.add_argument("--kind", choices=["end-biased", "serial"], default="end-biased")
    p.add_argument("--buckets", type=int, default=10)
    p.add_argument(
        "--on-error",
        choices=["fallback", "nan", "raise"],
        default="fallback",
        help="service-wide policy for unanswerable probes",
    )
    p.add_argument(
        "--tenant",
        action="append",
        metavar="NAME=TOKEN",
        help="register a tenant (repeatable); omit for an open server",
    )
    p.add_argument(
        "--quota-batch",
        type=int,
        default=0,
        help="max probes per batch per tenant (0 = unlimited)",
    )
    p.add_argument(
        "--quota-pending",
        type=int,
        default=0,
        help="max probes in flight per tenant (0 = unlimited)",
    )
    p.add_argument("--chunk-probes", type=int, default=2048)
    p.add_argument(
        "--duration",
        type=float,
        default=0.0,
        help="serve for N seconds then exit (0 = until Ctrl-C)",
    )
    p.add_argument("--seed", type=int, default=1995)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "obs",
        help="observability: dump the metric registry, spans, and events",
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    sp = obs_sub.add_parser(
        "dump",
        help="run a serve+maintain+recover workload and dump the registry",
    )
    sp.add_argument(
        "--format",
        choices=["prom", "json"],
        default="prom",
        help="exposition format (Prometheus text or JSON with events)",
    )
    sp.add_argument(
        "--no-workload",
        action="store_true",
        help="dump whatever the registry already holds without driving "
        "the built-in workload",
    )
    sp.add_argument("--probes", type=int, default=400)
    sp.add_argument("--seed", type=int, default=1995)
    sp.set_defaults(func=_cmd_obs_dump)
    sp = obs_sub.add_parser(
        "trace",
        help="inspect a JSONL span-sink file (see docs/OBSERVABILITY.md)",
    )
    sp.add_argument(
        "mode",
        choices=["dump", "tree", "slowest"],
        help="dump raw span JSONL, render assembled trace trees, or show "
        "the slowest traces",
    )
    sp.add_argument("file", help="path of the JSONL span-sink file")
    sp.add_argument(
        "--limit",
        type=int,
        default=10,
        help="traces shown by tree/slowest (0 = all for tree)",
    )
    sp.set_defaults(func=_cmd_obs_trace)

    p = sub.add_parser(
        "stats", help="inspect or repair an on-disk statistics catalog"
    )
    stats_sub = p.add_subparsers(dest="stats_command", required=True)
    for name, func, help_text in (
        (
            "check",
            _cmd_stats_check,
            "verify checksums and journal health (exit 1 on findings)",
        ),
        (
            "repair",
            _cmd_stats_repair,
            "rewrite the snapshot from verified entries + journal replay",
        ),
    ):
        sp = stats_sub.add_parser(name, help=help_text)
        sp.add_argument("catalog", help="path of the catalog snapshot file")
        sp.add_argument(
            "--journal",
            default=None,
            help="maintenance journal to replay (and, for repair, checkpoint)",
        )
        if name == "repair":
            sp.add_argument(
                "--output",
                default=None,
                help="write the repaired snapshot here instead of in place",
            )
        sp.set_defaults(func=func)

    p = sub.add_parser(
        "agent",
        help="durable maintenance agent: run, inspect, and feed its job queue",
    )
    agent_sub = p.add_subparsers(dest="agent_command", required=True)

    def _add_agent_queue_arguments(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("queue", help="path of the durable job-queue log")
        sp.add_argument(
            "--lease",
            type=float,
            default=30.0,
            help="lease duration in seconds for claimed jobs",
        )

    sp = agent_sub.add_parser(
        "run", help="consume the queue until stopped (or --max-jobs resolved)"
    )
    _add_agent_queue_arguments(sp)
    sp.add_argument(
        "--catalog",
        default=None,
        help="catalog snapshot rebuilds/checkpoints republish to",
    )
    sp.add_argument(
        "--journal",
        default=None,
        help="maintenance journal checkpointed with snapshot writes",
    )
    sp.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="resolve at most N jobs, then exit (drain mode: an empty "
        "queue also exits)",
    )
    sp.add_argument("--buckets", type=int, default=16)
    sp.add_argument(
        "--name", default="maintenance-agent", help="worker name on claims"
    )
    sp.add_argument("--drift-threshold", type=float, default=0.5)
    sp.add_argument("--drift-min-observations", type=int, default=20)
    sp.set_defaults(func=_cmd_agent_run)

    sp = agent_sub.add_parser(
        "status",
        help="read-only queue report (exit 3 on log damage, 4 on I/O error)",
    )
    _add_agent_queue_arguments(sp)
    sp.add_argument(
        "--all",
        action="store_true",
        help="also list completed jobs (hidden by default)",
    )
    sp.set_defaults(func=_cmd_agent_status)

    sp = agent_sub.add_parser("enqueue", help="durably add one job")
    _add_agent_queue_arguments(sp)
    sp.add_argument(
        "kind",
        choices=("rebuild", "checkpoint", "quarantine-repair", "drift-audit"),
    )
    sp.add_argument("--relation", default=None)
    sp.add_argument("--attribute", default=None)
    sp.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="drift-audit override for the mean-relative-error line",
    )
    sp.add_argument(
        "--dedupe-key",
        default=None,
        help="idempotency key (rebuilds default to rebuild:REL.ATTR)",
    )
    sp.set_defaults(func=_cmd_agent_enqueue)

    sp = agent_sub.add_parser(
        "dead-letter", help="list the dead-letter lane or requeue out of it"
    )
    _add_agent_queue_arguments(sp)
    sp.add_argument(
        "--requeue",
        metavar="JOB_ID",
        default=None,
        help="return this dead job to the pending lane, attempts reset",
    )
    sp.set_defaults(func=_cmd_agent_dead_letter)

    p = sub.add_parser("lint", help="run repolint, the project static analyzer")
    p.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package "
        "and benchmarks/ when present)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings as well as errors (CI mode)",
    )
    p.add_argument(
        "--rules",
        metavar="CODES",
        help="comma-separated rule codes to run, e.g. R001,R003",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule with its severity and summary, then exit",
    )
    p.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="report format: human-readable text (default) or SARIF 2.1.0 "
        "for GitHub code scanning",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="lint files with N worker processes (tree-wide rules such as "
        "R010 still merge in the parent)",
    )
    p.add_argument(
        "--changed",
        nargs="?",
        const=None,
        default=False,
        metavar="BASE",
        help="lint only files differing from git merge-base with BASE "
        "(default HEAD: staged, unstaged, and untracked files)",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("arrangements", help="Section 3.1 arrangement study")
    p.add_argument("--total", type=float, default=1000.0)
    p.add_argument("--domain", type=int, default=6)
    p.add_argument("--z-left", type=float, default=1.0)
    p.add_argument("--z-right", type=float, default=2.0)
    p.add_argument("--buckets", type=int, default=3)
    p.add_argument("--max-arrangements", type=int, default=720)
    p.add_argument("--seed", type=int, default=1995)
    p.set_defaults(func=_cmd_arrangements)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
