"""Estimation-accuracy accounting: observed error versus the paper's bound.

The paper defines exactly what "accurate" means for a serial histogram.
Proposition 3.1 gives the self-join error of a histogram in closed form::

    S - S' = Σ_i p_i · v_i

where ``p_i`` is bucket *i*'s value count and ``v_i`` its frequency
variance — the quantity the v-optimal partitioning minimises, and the
per-bucket ``sse`` already stored on :class:`repro.core.buckets.Bucket`.
The v-optimality objective is the expectation ``E[(S - S')²]`` over query
distributions.

:class:`AccuracyMonitor` tracks the *measured* side of that equation:
every ``record_observation(probe, estimated, actual)`` call folds the
signed error ``actual - estimated`` (i.e. ``S - S'``) into per-
``(kind, relation, attribute)`` running statistics — count, mean signed
error, mean absolute and relative error, and the running mean of the
squared error as the ``E[(S - S')²]`` proxy.
:func:`theoretical_self_join_error` computes the *predicted* side from the
bucket ``p_i·v_i`` terms, so a test (or an operator) can check that a
histogram's observed self-join error agrees with Proposition 3.1.

A monitor exports itself through a :class:`~repro.obs.registry.MetricRegistry`
collector (weakly referenced — dropping the monitor drops its samples).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.obs import tracing
from repro.obs.registry import MetricRegistry, Sample

#: Fallback key component when a probe's relation/attribute is unknown.
UNKNOWN = "unknown"

#: An accuracy key: (probe kind, relation, attribute).
AccuracyKey = tuple[str, str, str]


@dataclass
class ErrorStats:
    """Running error aggregates for one ``(kind, relation, attribute)``."""

    count: int = 0
    #: Σ (actual - estimated) — signed, so bias shows up.
    sum_signed: float = 0.0
    #: Σ |actual - estimated|.
    sum_abs: float = 0.0
    #: Σ (actual - estimated)² — numerator of the E[(S-S')²] proxy.
    sum_squared: float = 0.0
    #: Σ |actual - estimated| / max(actual, 1).
    sum_relative: float = 0.0
    #: Trace ID of the most recent observation recorded under an active
    #: trace context ("" when none yet) — how a drift-triggered rebuild
    #: links back to the probe batch whose error crossed the threshold.
    last_trace_id: str = ""

    def record(self, estimated: float, actual: float) -> None:
        """Fold one observation into the aggregates."""
        signed = float(actual) - float(estimated)
        self.count += 1
        self.sum_signed += signed
        self.sum_abs += abs(signed)
        self.sum_squared += signed * signed
        self.sum_relative += abs(signed) / max(abs(float(actual)), 1.0)

    @property
    def mean_signed_error(self) -> float:
        """Mean of ``actual - estimated`` (0 when empty)."""
        return self.sum_signed / self.count if self.count else 0.0

    @property
    def mean_absolute_error(self) -> float:
        """Mean of ``|actual - estimated|`` (0 when empty)."""
        return self.sum_abs / self.count if self.count else 0.0

    @property
    def mean_squared_error(self) -> float:
        """Running ``E[(S - S')²]`` proxy (0 when empty)."""
        return self.sum_squared / self.count if self.count else 0.0

    @property
    def mean_relative_error(self) -> float:
        """Mean relative error (0 when empty)."""
        return self.sum_relative / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-ready summary of the aggregates."""
        return {
            "count": float(self.count),
            "mean_signed_error": self.mean_signed_error,
            "mean_absolute_error": self.mean_absolute_error,
            "mean_squared_error": self.mean_squared_error,
            "mean_relative_error": self.mean_relative_error,
        }


def probe_key(probe: object) -> AccuracyKey:
    """Derive the ``(kind, relation, attribute)`` key for *probe*.

    Duck-typed so :mod:`repro.obs` never imports the serve layer: any
    object with ``relation``/``attribute`` (equality and range probes),
    ``left_relation``/``right_relation`` (join probes), a 2-tuple of
    strings, or a bare string works.  Anything else keys under
    ``("other", "unknown", "unknown")``.
    """
    low = getattr(probe, "low", None)
    high = getattr(probe, "high", None)
    relation = getattr(probe, "relation", None)
    attribute = getattr(probe, "attribute", None)
    if isinstance(relation, str) and isinstance(attribute, str):
        kind = "range" if (low is not None or high is not None or hasattr(probe, "include_low")) else "equality"
        return (kind, relation, attribute)
    left_rel = getattr(probe, "left_relation", None)
    right_rel = getattr(probe, "right_relation", None)
    if isinstance(left_rel, str) and isinstance(right_rel, str):
        left_attr = getattr(probe, "left_attribute", UNKNOWN)
        right_attr = getattr(probe, "right_attribute", UNKNOWN)
        return ("join", f"{left_rel}⋈{right_rel}", f"{left_attr}={right_attr}")
    if isinstance(probe, tuple) and len(probe) == 2:
        return ("other", str(probe[0]), str(probe[1]))
    if isinstance(probe, str):
        return ("other", probe, UNKNOWN)
    return ("other", UNKNOWN, UNKNOWN)


def theoretical_self_join_error(histogram: object) -> float:
    """The Proposition 3.1 self-join error ``Σ p_i·v_i`` of *histogram*.

    Accepts any object exposing ``buckets`` whose items carry ``count``
    (``p_i``) and ``variance`` (``v_i``) — i.e.
    :class:`repro.core.buckets.Histogram` — without importing the core
    layer, keeping :mod:`repro.obs` dependency-free.
    """
    buckets = getattr(histogram, "buckets", None)
    if buckets is None:
        raise TypeError(
            f"expected an object with .buckets, got {type(histogram).__name__}"
        )
    total = 0.0
    for bucket in buckets:
        count = float(bucket.count)
        variance = float(bucket.variance)
        if count < 0 or variance < 0:
            raise ValueError(
                f"bucket p_i and v_i must be non-negative, got "
                f"count={count}, variance={variance}"
            )
        total += count * variance
    return total


class AccuracyMonitor:
    """Thread-safe per-(kind, relation, attribute) estimation-error stats."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats: dict[AccuracyKey, ErrorStats] = {}

    def record_observation(
        self, probe: object, estimated: float, actual: float
    ) -> AccuracyKey:
        """Fold one (estimate, truth) pair into the stats for *probe*.

        Non-finite values are dropped (counted nowhere) — a degraded NaN
        estimate must not poison every mean.  Returns the key the
        observation landed under.
        """
        key = probe_key(probe)
        est = float(estimated)
        act = float(actual)
        if not (math.isfinite(est) and math.isfinite(act)):
            return key
        context = tracing.current_trace_context()
        trace_id = context.trace_id if context is not None else ""
        with self._lock:
            stats = self._stats.get(key)
            if stats is None:
                stats = ErrorStats()
                self._stats[key] = stats
            stats.record(est, act)
            if trace_id:
                stats.last_trace_id = trace_id
        return key

    def record_self_join(self, relation: str, histogram: object, actual: float) -> AccuracyKey:
        """Record a self-join observation using the histogram's own estimate.

        Uses ``histogram.self_join_estimate()`` (Theorem 2.1's ``Σ T_i²/p_i``
        serial-histogram estimate) as the estimated value, so the measured
        signed error is exactly the ``S - S'`` of Proposition 3.1.
        """
        estimated = float(histogram.self_join_estimate())
        key = ("self_join", relation, UNKNOWN)
        est = estimated
        act = float(actual)
        if math.isfinite(est) and math.isfinite(act):
            with self._lock:
                stats = self._stats.get(key)
                if stats is None:
                    stats = ErrorStats()
                    self._stats[key] = stats
                stats.record(est, act)
        return key

    def stats(self, key: AccuracyKey) -> Optional[ErrorStats]:
        """A detached copy of the stats under *key*, if any."""
        with self._lock:
            current = self._stats.get(key)
            if current is None:
                return None
            return ErrorStats(
                count=current.count,
                sum_signed=current.sum_signed,
                sum_abs=current.sum_abs,
                sum_squared=current.sum_squared,
                sum_relative=current.sum_relative,
                last_trace_id=current.last_trace_id,
            )

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Every key's aggregates, keyed ``"kind/relation/attribute"``."""
        with self._lock:
            items = [(key, stats.as_dict()) for key, stats in self._stats.items()]
        return {"/".join(key): summary for key, summary in sorted(items)}

    def items(self) -> list[tuple[AccuracyKey, ErrorStats]]:
        """Detached ``(key, stats)`` pairs for every tracked key.

        The consumer loop of the maintenance agent's drift audit: typed
        keys (not the joined strings of :meth:`as_dict`) and stat copies
        that cannot race with concurrent recording.
        """
        with self._lock:
            keys = list(self._stats)
        return [
            (key, stats)
            for key in sorted(keys)
            if (stats := self.stats(key)) is not None
        ]

    def collect(self) -> list[Sample]:
        """Registry samples for every tracked key (collector callback)."""
        with self._lock:
            items = list(self._stats.items())
        samples: list[Sample] = []
        for (kind, relation, attribute), stats in sorted(items):
            labels = (
                ("attribute", attribute),
                ("kind", kind),
                ("relation", relation),
            )
            samples.append(
                Sample(
                    name="repro_accuracy_observations_total",
                    labels=labels,
                    value=float(stats.count),
                    kind="counter",
                    help="estimate/truth pairs folded into the accuracy monitor",
                )
            )
            samples.append(
                Sample(
                    name="repro_accuracy_mean_signed_error",
                    labels=labels,
                    value=stats.mean_signed_error,
                    kind="gauge",
                    help="mean of actual - estimated (S - S')",
                )
            )
            samples.append(
                Sample(
                    name="repro_accuracy_mean_squared_error",
                    labels=labels,
                    value=stats.mean_squared_error,
                    kind="gauge",
                    help="running E[(S - S')^2] proxy (v-optimality objective)",
                )
            )
            samples.append(
                Sample(
                    name="repro_accuracy_mean_relative_error",
                    labels=labels,
                    value=stats.mean_relative_error,
                    kind="gauge",
                    help="mean |actual - estimated| / max(|actual|, 1)",
                )
            )
        return samples

    def bind(self, registry: MetricRegistry) -> None:
        """Register this monitor's samples with *registry* (weakly)."""
        registry.register_collector(AccuracyMonitor.collect, owner=self)


def iter_samples(monitors: Iterable[AccuracyMonitor]) -> list[Sample]:
    """Concatenate :meth:`AccuracyMonitor.collect` over *monitors*."""
    samples: list[Sample] = []
    for monitor in monitors:
        samples.extend(monitor.collect())
    return samples


def _default_monitor_holder() -> dict[str, Any]:
    return {"monitor": None, "lock": threading.Lock()}


_default = _default_monitor_holder()


def get_monitor() -> AccuracyMonitor:
    """The process-wide default monitor, bound to the default registry."""
    from repro.obs import runtime

    with _default["lock"]:
        monitor = _default["monitor"]
        if monitor is None:
            monitor = AccuracyMonitor()
            monitor.bind(runtime.get_registry())
            _default["monitor"] = monitor
        return monitor


def reset_monitor() -> AccuracyMonitor:
    """Install a fresh default monitor (test isolation helper)."""
    from repro.obs import runtime

    with _default["lock"]:
        monitor = AccuracyMonitor()
        monitor.bind(runtime.get_registry())
        _default["monitor"] = monitor
        return monitor
