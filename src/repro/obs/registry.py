"""The metric registry: thread-safe counters, gauges, and histograms.

Production statistics serving needs more than an ad-hoc counter bag — it
needs one place where every subsystem (the estimation service, the
maintenance journal, the persistence layer) publishes what it did, in a
form an operator can scrape.  :class:`MetricRegistry` is that place:

* **instruments** — :class:`Counter`, :class:`Gauge`, and
  :class:`HistogramMetric`, each keyed by a Prometheus-style name plus a
  label set, created on first touch and shared thereafter.  Every
  instrument guards its state with its own lock, so concurrent writers
  never lose updates and a reader never observes a torn histogram (the
  bucket counts, count, and sum move together under one lock);
* **collectors** — callbacks that produce :class:`Sample` values at
  exposition time from state owned elsewhere (e.g.
  :class:`repro.serve.metrics.ServiceMetrics`), held through weak
  references so registering an object never extends its lifetime;
* an **event log** — a bounded ring buffer of recent structured events
  (monotonic timestamps; the oldest events fall off the end), for the
  "what just happened" questions counters cannot answer;
* **exposition** — :meth:`MetricRegistry.to_prometheus` renders the
  Prometheus text format, :meth:`MetricRegistry.to_json` a JSON document
  with the same content plus the event log.

Instrumented code does not use this class directly — it goes through the
cheap guarded helpers in :mod:`repro.obs.runtime` (``count``, ``observe``,
``emit_event``) and :func:`repro.obs.tracing.span`, which are no-ops when
instrumentation is disabled.
"""

from __future__ import annotations

import json
import math
import re
import threading
import weakref
from collections import deque
from dataclasses import dataclass, field
from time import monotonic
from typing import Any, Callable, Iterable, Optional, Union

#: Default upper bounds (seconds, inclusive) for duration histograms; one
#: final ``+Inf`` bucket catches everything slower.
DEFAULT_BUCKET_BOUNDS: tuple[float, ...] = (
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
    10.0,
)

#: Default capacity of the bounded event ring buffer.
DEFAULT_MAX_EVENTS = 256

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: A label set in canonical (sorted, hashable) form.
LabelItems = tuple[tuple[str, str], ...]


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(
            f"metric name must match {_NAME_RE.pattern!r}, got {name!r}"
        )
    return name


def _canonical_labels(labels: dict[str, object]) -> LabelItems:
    items = []
    for key in sorted(labels):
        if not isinstance(key, str) or not _LABEL_RE.match(key):
            raise ValueError(
                f"label name must match {_LABEL_RE.pattern!r}, got {key!r}"
            )
        items.append((key, str(labels[key])))
    return tuple(items)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(items: LabelItems, extra: tuple[tuple[str, str], ...] = ()) -> str:
    merged = items + extra
    if not merged:
        return ""
    parts = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in merged
    )
    return "{" + parts + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


@dataclass(frozen=True)
class Sample:
    """One exposition-ready metric value (as produced by collectors).

    ``kind`` is ``"counter"`` or ``"gauge"``; histograms are expanded into
    cumulative-bucket counter samples by whoever produces them.
    """

    name: str
    labels: LabelItems
    value: float
    kind: str = "gauge"
    help: str = ""

    def __post_init__(self) -> None:
        _check_name(self.name)
        if self.kind not in ("counter", "gauge"):
            raise ValueError(
                f"sample kind must be 'counter' or 'gauge', got {self.kind!r}"
            )


@dataclass(frozen=True)
class Event:
    """One entry of the bounded event ring buffer."""

    #: Monotonic timestamp (``time.monotonic()``) — ordering, not wall time.
    timestamp: float
    name: str
    fields: LabelItems = ()

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form."""
        return {
            "timestamp": self.timestamp,
            "name": self.name,
            "fields": dict(self.fields),
        }


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "_lock", "_value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "labels", "_lock", "_value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by *amount* (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current value."""
        with self._lock:
            return self._value


class HistogramMetric:
    """A fixed-bucket distribution (Prometheus histogram semantics).

    ``observe`` updates the matching bucket, the total count, and the sum
    under one lock, so a concurrent read never sees the three out of step.

    An observation may carry an **exemplar** — a tiny label set (e.g.
    ``trace_id``) pinning a concrete traced request to the bucket it
    landed in.  The histogram keeps the most recent exemplar per bucket
    and :meth:`MetricRegistry.to_prometheus` renders it in the
    OpenMetrics style (``... # {trace_id="..."} value``), which is how
    operators jump from a latency bucket to one representative trace.
    """

    __slots__ = (
        "name",
        "labels",
        "bounds",
        "_lock",
        "_counts",
        "_sum",
        "_count",
        "_exemplars",
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS,
    ):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(
                f"histogram bounds must be a sorted non-empty sequence, got {bounds!r}"
            )
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._exemplars: dict[int, tuple[LabelItems, float]] = {}

    def observe(
        self,
        value: float,
        exemplar: Optional[LabelItems] = None,
    ) -> None:
        """Record one observation, optionally pinning an exemplar.

        *exemplar* is a canonical label-items tuple (e.g.
        ``(("trace_id", "4f2a..."),)``); the latest exemplar per bucket
        wins.
        """
        index = len(self.bounds)
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                index = position
                break
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if exemplar:
                self._exemplars[index] = (tuple(exemplar), float(value))

    def snapshot(self) -> tuple[list[int], float, int]:
        """A consistent ``(per-bucket counts, sum, count)`` triple."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    def exemplars(self) -> dict[int, tuple[LabelItems, float]]:
        """Latest ``(labels, observed value)`` exemplar per bucket index."""
        with self._lock:
            return dict(self._exemplars)

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum


Instrument = Union[Counter, Gauge, HistogramMetric]


@dataclass
class _Collector:
    """One registered sample producer, weakly bound to its owner."""

    produce: Callable[..., Iterable[Sample]]
    owner: Optional[weakref.ref] = None


@dataclass
class _Family:
    """Every instrument sharing one metric name (one per label set)."""

    kind: str
    help: str
    bounds: Optional[tuple[float, ...]] = None
    children: dict[LabelItems, Instrument] = field(default_factory=dict)


class MetricRegistry:
    """Thread-safe home for instruments, collectors, and the event log."""

    def __init__(self, *, max_events: int = DEFAULT_MAX_EVENTS):
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._collectors: list[_Collector] = []
        self._events: deque[Event] = deque(maxlen=int(max_events))

    # ------------------------------------------------------------------
    # Instruments (get-or-create)
    # ------------------------------------------------------------------

    def _instrument(
        self,
        kind: str,
        name: str,
        help: str,
        labels: dict[str, object],
        bounds: Optional[tuple[float, ...]] = None,
    ) -> Instrument:
        _check_name(name)
        items = _canonical_labels(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(kind=kind, help=help, bounds=bounds)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {family.kind}, "
                    f"cannot re-register as a {kind}"
                )
            elif help and not family.help:
                family.help = help
            child = family.children.get(items)
            if child is None:
                if kind == "counter":
                    child = Counter(name, items)
                elif kind == "gauge":
                    child = Gauge(name, items)
                else:
                    child = HistogramMetric(
                        name, items, family.bounds or DEFAULT_BUCKET_BOUNDS
                    )
                family.children[items] = child
            return child

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        """The counter *name* with *labels*, created on first touch."""
        return self._instrument("counter", name, help, labels)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        """The gauge *name* with *labels*, created on first touch."""
        return self._instrument("gauge", name, help, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        buckets: Optional[tuple[float, ...]] = None,
        **labels: object,
    ) -> HistogramMetric:
        """The histogram *name* with *labels*; *buckets* fixes the family's
        bounds on first creation and is ignored afterwards."""
        return self._instrument(  # type: ignore[return-value]
            "histogram", name, help, labels, bounds=buckets
        )

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def record_event(self, name: str, **fields: object) -> Event:
        """Append one structured event to the bounded ring buffer."""
        if not isinstance(name, str) or not name:
            raise ValueError(f"event name must be a non-empty str, got {name!r}")
        event = Event(
            timestamp=monotonic(),
            name=name,
            fields=tuple((str(k), str(v)) for k, v in sorted(fields.items())),
        )
        with self._lock:
            self._events.append(event)
        return event

    def events(self) -> list[Event]:
        """The retained events, oldest first."""
        with self._lock:
            return list(self._events)

    # ------------------------------------------------------------------
    # Collectors
    # ------------------------------------------------------------------

    def register_collector(
        self,
        produce: Callable[..., Iterable[Sample]],
        *,
        owner: Optional[object] = None,
    ) -> None:
        """Register a sample producer consulted at exposition time.

        With *owner*, the registry holds only a weak reference: *produce*
        is called as ``produce(owner)`` while the owner is alive and the
        collector is silently dropped once it is garbage-collected — so
        instrumented objects (services, monitors) never leak through the
        registry.  Without an owner, *produce* is called with no
        arguments and lives until the registry does.
        """
        if not callable(produce):
            raise TypeError(f"collector must be callable, got {type(produce).__name__}")
        ref = weakref.ref(owner) if owner is not None else None
        with self._lock:
            self._collectors.append(_Collector(produce=produce, owner=ref))

    def collect(self) -> list[Sample]:
        """Run every live collector; a raising collector is skipped.

        Observer code must never fail the observed path — a collector
        that raises is counted in ``repro_obs_collector_errors_total``
        and its samples are simply absent from this exposition.
        """
        with self._lock:
            collectors = list(self._collectors)
        samples: list[Sample] = []
        dead: list[_Collector] = []
        errors = 0
        for collector in collectors:
            if collector.owner is not None:
                target = collector.owner()
                if target is None:
                    dead.append(collector)
                    continue
                args: tuple = (target,)
            else:
                args = ()
            try:
                samples.extend(collector.produce(*args))
            except Exception:
                errors += 1
        if dead:
            with self._lock:
                self._collectors = [c for c in self._collectors if c not in dead]
        if errors:
            self.counter(
                "repro_obs_collector_errors_total",
                "collector callbacks that raised during exposition",
            ).inc(errors)
        return samples

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------

    def _family_snapshot(self) -> list[tuple[str, _Family, list[Instrument]]]:
        with self._lock:
            return [
                (name, family, list(family.children.values()))
                for name, family in sorted(self._families.items())
            ]

    def to_prometheus(self) -> str:
        """Render everything in the Prometheus text exposition format."""
        lines: list[str] = []
        for name, family, children in self._family_snapshot():
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for child in children:
                if isinstance(child, HistogramMetric):
                    counts, total, count = child.snapshot()
                    exemplars = child.exemplars()
                    cumulative = 0
                    for index, (bound, bucket_count) in enumerate(
                        zip(child.bounds + (math.inf,), counts)
                    ):
                        cumulative += bucket_count
                        line = (
                            f"{name}_bucket"
                            + _render_labels(
                                child.labels, (("le", _format_value(bound)),)
                            )
                            + f" {cumulative}"
                        )
                        exemplar = exemplars.get(index)
                        if exemplar is not None:
                            exemplar_labels, observed = exemplar
                            line += (
                                f" # {_render_labels(exemplar_labels)} "
                                f"{_format_value(observed)}"
                            )
                        lines.append(line)
                    lines.append(
                        f"{name}_sum{_render_labels(child.labels)} "
                        f"{_format_value(total)}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(child.labels)} {count}"
                    )
                else:
                    lines.append(
                        f"{name}{_render_labels(child.labels)} "
                        f"{_format_value(child.value)}"
                    )
        collected: dict[str, list[Sample]] = {}
        for sample in self.collect():
            collected.setdefault(sample.name, []).append(sample)
        for name in sorted(collected):
            group = collected[name]
            if group[0].help:
                lines.append(f"# HELP {name} {group[0].help}")
            lines.append(f"# TYPE {name} {group[0].kind}")
            for sample in group:
                lines.append(
                    f"{name}{_render_labels(sample.labels)} "
                    f"{_format_value(sample.value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> dict[str, Any]:
        """The full registry state as a JSON-compatible dictionary."""
        metrics: list[dict[str, Any]] = []
        for name, family, children in self._family_snapshot():
            for child in children:
                entry: dict[str, Any] = {
                    "name": name,
                    "type": family.kind,
                    "labels": dict(child.labels),
                }
                if isinstance(child, HistogramMetric):
                    counts, total, count = child.snapshot()
                    exemplars = child.exemplars()
                    buckets = []
                    for index, (bound, bucket_count) in enumerate(
                        zip(child.bounds + (math.inf,), counts)
                    ):
                        bucket: dict[str, Any] = {"le": bound, "count": bucket_count}
                        exemplar = exemplars.get(index)
                        if exemplar is not None:
                            exemplar_labels, observed = exemplar
                            bucket["exemplar"] = {
                                "labels": dict(exemplar_labels),
                                "value": observed,
                            }
                        buckets.append(bucket)
                    entry["buckets"] = buckets
                    entry["sum"] = total
                    entry["count"] = count
                else:
                    entry["value"] = child.value
                metrics.append(entry)
        for sample in self.collect():
            metrics.append(
                {
                    "name": sample.name,
                    "type": sample.kind,
                    "labels": dict(sample.labels),
                    "value": sample.value,
                }
            )
        return {
            "metrics": metrics,
            "events": [event.as_dict() for event in self.events()],
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """Render :meth:`as_dict` as a JSON document."""
        def _encode_inf(value: float) -> float | str:
            return value

        data = self.as_dict()
        # json.dumps(allow_nan=True) would emit bare Infinity for the +Inf
        # bucket bound; encode it as the string "+Inf" instead so the output
        # is standard JSON.
        for metric in data["metrics"]:
            for bucket in metric.get("buckets", ()):
                if bucket["le"] == math.inf:
                    bucket["le"] = "+Inf"
        return json.dumps(data, indent=indent, sort_keys=True, allow_nan=False)
