"""Tracing spans with distributed trace context for the serving stack.

A span brackets one unit of work — a served batch, a table compile, a
WAL fsync — with :func:`time.perf_counter` timestamps (monotonic, so a
wall-clock step never produces a negative duration).  Spans nest: a
thread-local stack links each span to its parent, so ``journal.fsync``
inside ``journal.append`` inside ``maint.publish`` comes out with the
right parentage and depth even under concurrent serving threads.

Beyond in-thread nesting, every span now belongs to a **trace**: a
16-hex ``trace_id`` shared by all spans of one request's journey, plus
a per-span ``span_id`` and ``parent_id`` link.  A root span (no
enclosing span, no attached context) starts a new trace and takes a
head-sampling decision (:class:`HeadSampler`) that is deterministic per
trace ID; descendants inherit both.  To carry a trace across an
explicit boundary — an executor thread, the agent's heartbeat, a wire
hop — capture :func:`current_trace_context` on one side and
:func:`attach` it on the other (:func:`detach` restores the previous
context; both compose with ``try/finally``)::

    ctx = current_trace_context()          # producer side

    token = attach(ctx)                    # consumer side (other thread)
    try:
        with span("serve.batch", probes=len(batch)):
            ...
    finally:
        detach(token)

Event-loop code must not lean on the thread-local stack (concurrent
tasks share the thread): pass ``context=`` to :func:`span` to open a
*detached* span that is parented by the given context and never touches
the stack — the asyncio server uses this for every ``net.*`` span.

On exit every span (a) feeds the ``repro_span_duration_seconds``
histogram (with a ``trace_id`` exemplar when sampled) and the
``repro_span_total`` counter in the default registry
(``repro_span_errors_total`` too when the body raised), and (b) — when
sampled — is delivered as a :class:`SpanRecord` to every registered
sink (:func:`add_span_sink`).  Each sink receives its own record with a
defensively-copied tags mapping, so a sink that mutates its tags can
never corrupt a sibling sink's view.  Sinks are observer code and must
never fail the observed path: a raising sink is swallowed and counted
in ``repro_obs_sink_errors_total``.

Trace IDs come from a seedable :class:`TraceIdSource` (``derive_rng``
seeds the base state per the repo RNG discipline, then a splitmix64
counter mix makes per-ID generation allocation-free and cheap enough
for the instrumentation overhead budget).

When instrumentation is disabled (:func:`repro.obs.runtime.set_instrumentation`)
:func:`span` returns a shared no-op context manager and the hot path
pays only one boolean check.
"""

from __future__ import annotations

import itertools
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Callable, Iterator, Mapping, Optional

from repro.obs import runtime
from repro.util.rng import RandomSource, derive_rng

#: Human-readable catalogue of every span name emitted by the repro tree.
#: Kept here (and mirrored in docs/OBSERVABILITY.md) so tests can assert
#: that instrumentation stays in sync with the documentation.
SPAN_NAMES: tuple[str, ...] = (
    "serve.batch",
    "serve.table.compile",
    "serve.layout.compile",
    "journal.append",
    "journal.fsync",
    "journal.checkpoint",
    "persist.save",
    "persist.load",
    "persist.recover",
    "maint.publish",
    "maint.rebuild",
    "agent.job",
    "agent.drain",
    "net.accept",
    "net.batch",
    "net.stream",
    "net.client.batch",
)

_MASK64 = (1 << 64) - 1
#: Weyl-sequence increment (golden-ratio prime) feeding the splitmix64
#: finalizer below — the standard splitmix64 stream constant.
_WEYL = 0x9E3779B97F4A7C15


def _mix64(x: int) -> int:
    """splitmix64 finalizer: a cheap, high-quality 64-bit bijection."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


@dataclass(frozen=True)
class TraceContext:
    """An immutable handle naming a position inside a trace.

    ``span_id`` is the ID of the span that children should parent to
    (empty for a context that only names the trace, e.g. one recovered
    from a queue record).  ``sampled`` is the head-sampling decision —
    made once at the trace root and inherited by every descendant.
    """

    trace_id: str
    span_id: str = ""
    sampled: bool = True
    tenant: str = ""


class TraceIdSource:
    """Seedable, thread-safe generator of 16-hex trace/span IDs.

    The base state is drawn through :func:`repro.util.rng.derive_rng`
    (so ``seed=`` gives a reproducible ID stream per the repo RNG
    discipline); each ID is then a splitmix64 mix of a shared counter,
    which is allocation-free and cheap enough for per-span use.
    """

    __slots__ = ("_base", "_counter")

    def __init__(self, seed: RandomSource = None) -> None:
        gen = derive_rng(seed)
        self._base = int(gen.integers(0, _MASK64, dtype="uint64"))
        # itertools.count.__next__ is atomic under the GIL.
        self._counter = itertools.count(1)

    def next_id(self) -> str:
        raw = _mix64(self._base + _WEYL * next(self._counter))
        # Never emit the all-zero ID: it is indistinguishable from "no ID".
        return format(raw or 1, "016x")


def _id_bucket(trace_id: str) -> int:
    """Deterministic 16-bit bucket for a trace ID (any string)."""
    try:
        raw = int(trace_id, 16)
    except ValueError:
        raw = zlib.crc32(trace_id.encode("utf-8", "replace"))
    return _mix64(raw) & 0xFFFF


class HeadSampler:
    """Head-based sampling: decide once per trace, at the root.

    The decision is a pure function of the trace ID (and tenant), so
    every participant that sees the same trace ID — client, server,
    maintenance agent — independently reaches the same verdict, and
    re-deciding for the same ID is always consistent.  Rates are
    fractions in ``[0, 1]``; ``per_tenant`` overrides the default for
    named tenants.
    """

    __slots__ = ("default_rate", "per_tenant")

    def __init__(
        self,
        default_rate: float = 1.0,
        per_tenant: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.default_rate = float(default_rate)
        self.per_tenant = {k: float(v) for k, v in (per_tenant or {}).items()}

    def rate_for(self, tenant: str = "") -> float:
        return self.per_tenant.get(tenant, self.default_rate)

    def decision(self, trace_id: str, tenant: str = "") -> bool:
        rate = self.rate_for(tenant)
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return _id_bucket(trace_id) < int(rate * 0x10000)


_DEFAULT_ID_SOURCE = TraceIdSource()
_DEFAULT_SAMPLER = HeadSampler()
_id_source: TraceIdSource = _DEFAULT_ID_SOURCE
_sampler: HeadSampler = _DEFAULT_SAMPLER


def set_id_source(source: Optional[TraceIdSource]) -> TraceIdSource:
    """Install *source* as the process ID source; returns the previous one.

    ``None`` restores the process default (useful in test teardown).
    """
    global _id_source
    previous = _id_source
    _id_source = _DEFAULT_ID_SOURCE if source is None else source
    return previous


def set_sampler(sampler: Optional[HeadSampler]) -> HeadSampler:
    """Install *sampler* as the head sampler; returns the previous one.

    ``None`` restores the always-sample default.
    """
    global _sampler
    previous = _sampler
    _sampler = _DEFAULT_SAMPLER if sampler is None else sampler
    return previous


def get_sampler() -> HeadSampler:
    return _sampler


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as delivered to sinks."""

    name: str
    #: perf_counter() at entry — monotonic, not wall time.
    start: float
    #: perf_counter() at exit.
    end: float
    #: Nesting depth (0 for a root span on its thread).
    depth: int
    #: Name of the enclosing span, or ``None`` for a root span.
    parent: Optional[str]
    #: Whether the span body raised.
    error: bool
    #: Free-form tags passed to :func:`span`.  Sinks each receive their
    #: own copy of this mapping.
    tags: Mapping[str, str] = field(default_factory=dict)
    #: 16-hex ID shared by every span of one trace.
    trace_id: str = ""
    #: 16-hex ID of this span.
    span_id: str = ""
    #: ``span_id`` of the parent span ("" for a trace root).
    parent_id: str = ""
    #: Head-sampling decision inherited from the trace root.  Unsampled
    #: spans still feed metrics but are not delivered to sinks.
    sampled: bool = True

    @property
    def duration(self) -> float:
        """Elapsed seconds (always >= 0)."""
        return max(0.0, self.end - self.start)


SpanSink = Callable[[SpanRecord], None]

_sinks_lock = threading.Lock()
_sinks: list[SpanSink] = []


def add_span_sink(sink: SpanSink) -> None:
    """Register *sink* to receive every finished, sampled :class:`SpanRecord`."""
    if not callable(sink):
        raise TypeError(f"span sink must be callable, got {type(sink).__name__}")
    with _sinks_lock:
        _sinks.append(sink)


def remove_span_sink(sink: SpanSink) -> bool:
    """Unregister *sink*; returns whether it was registered."""
    with _sinks_lock:
        try:
            _sinks.remove(sink)
        except ValueError:
            return False
        return True


def clear_span_sinks() -> None:
    """Remove every registered sink (test isolation helper)."""
    with _sinks_lock:
        _sinks.clear()


class _SpanStack(threading.local):
    def __init__(self) -> None:
        # Each frame: (name, span_id, trace_id, sampled).
        self.frames: list[tuple[str, str, str, bool]] = []
        self.context: Optional[TraceContext] = None


_active = _SpanStack()


def current_span_name() -> Optional[str]:
    """Name of the innermost open span on this thread, if any."""
    frames = _active.frames
    return frames[-1][0] if frames else None


def current_trace_context() -> Optional[TraceContext]:
    """The trace position new work on this thread would parent to.

    Prefers the innermost open span; falls back to an explicitly
    attached context; ``None`` when neither exists (new root work would
    start a fresh trace).
    """
    frames = _active.frames
    if frames:
        _name, span_id, trace_id, sampled = frames[-1]
        return TraceContext(trace_id=trace_id, span_id=span_id, sampled=sampled)
    return _active.context


def new_trace(tenant: str = "") -> TraceContext:
    """Mint a fresh trace root context, taking the sampling decision."""
    trace_id = _id_source.next_id()
    return TraceContext(
        trace_id=trace_id,
        span_id="",
        sampled=_sampler.decision(trace_id, tenant),
        tenant=tenant,
    )


def attach(context: Optional[TraceContext]) -> Optional[TraceContext]:
    """Make *context* the calling thread's trace context.

    Returns a token (the previously attached context) that must be
    handed back to :func:`detach` — the pair composes like a stack, so
    ``try: token = attach(ctx) ... finally: detach(token)`` is safe to
    nest.  Attaching ``None`` explicitly clears the context.
    """
    previous = _active.context
    _active.context = context
    return previous


def detach(token: Optional[TraceContext]) -> None:
    """Restore the context that was active before the matching :func:`attach`."""
    _active.context = token


@contextmanager
def scope(context: Optional[TraceContext]) -> Iterator[None]:
    """Run a block on a **fresh span stack** with *context* attached.

    :func:`attach` alone is not enough for a worker loop executing units
    of work that belong to *foreign* traces (a queue job carrying the
    trace that enqueued it): any span the loop itself holds open — a
    drain span, a poll span — sits on the thread-local stack and wins
    over the attached context, grafting the job's spans into the loop's
    trace.  ``scope`` swaps in an empty stack for the duration of the
    block, so spans opened inside parent to *context* and nothing else,
    then restores the loop's stack exactly as it was.
    """
    saved_frames, saved_context = _active.frames, _active.context
    _active.frames, _active.context = [], context
    try:
        yield
    finally:
        _active.frames, _active.context = saved_frames, saved_context


class _NullSpan:
    """Shared do-nothing context manager used when instrumentation is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    @property
    def context(self) -> None:
        """No trace when instrumentation is off (propagate nothing)."""
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """An open span; records itself into the registry and sinks on exit."""

    __slots__ = (
        "name",
        "tags",
        "_start",
        "_depth",
        "_parent",
        "_entered",
        "_context_in",
        "_trace_id",
        "_span_id",
        "_parent_id",
        "_sampled",
    )

    def __init__(
        self,
        name: str,
        tags: dict[str, str],
        context: Optional[TraceContext] = None,
    ):
        self.name = name
        self.tags = tags
        self._start = 0.0
        self._depth = 0
        self._parent: Optional[str] = None
        self._entered = False
        self._context_in = context
        self._trace_id = ""
        self._span_id = ""
        self._parent_id = ""
        self._sampled = True

    @property
    def context(self) -> TraceContext:
        """Context naming this span — children attach or parent to it."""
        return TraceContext(
            trace_id=self._trace_id, span_id=self._span_id, sampled=self._sampled
        )

    @property
    def trace_id(self) -> str:
        return self._trace_id

    def __enter__(self) -> "_Span":
        self._span_id = _id_source.next_id()
        if self._context_in is not None:
            # Detached span: parented by the given context, never touches
            # the thread-local stack (safe for interleaved asyncio tasks).
            ctx = self._context_in
            self._trace_id = ctx.trace_id or _id_source.next_id()
            self._parent_id = ctx.span_id
            self._sampled = ctx.sampled
        else:
            frames = _active.frames
            self._depth = len(frames)
            if frames:
                parent_name, parent_span, trace_id, sampled = frames[-1]
                self._parent = parent_name
                self._parent_id = parent_span
                self._trace_id = trace_id
                self._sampled = sampled
            else:
                ctx = _active.context
                if ctx is not None:
                    self._trace_id = ctx.trace_id or _id_source.next_id()
                    self._parent_id = ctx.span_id
                    self._sampled = ctx.sampled
                else:
                    self._trace_id = _id_source.next_id()
                    self._sampled = _sampler.decision(self._trace_id)
            frames.append((self.name, self._span_id, self._trace_id, self._sampled))
            self._entered = True
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        end = perf_counter()
        if self._entered:
            frames = _active.frames
            # Pop our own frame; tolerate a corrupted stack rather than
            # masking the body's exception with ours.
            if frames and frames[-1][1] == self._span_id:
                frames.pop()
            else:
                for index in range(len(frames) - 1, -1, -1):
                    if frames[index][1] == self._span_id:
                        del frames[index]
                        break
            self._entered = False
        record = SpanRecord(
            name=self.name,
            start=self._start,
            end=end,
            depth=self._depth,
            parent=self._parent,
            error=exc_type is not None,
            tags=self.tags,
            trace_id=self._trace_id,
            span_id=self._span_id,
            parent_id=self._parent_id,
            sampled=self._sampled,
        )
        _finish(record)
        return False


def _finish(record: SpanRecord) -> None:
    exemplar = None
    if record.sampled and record.trace_id:
        exemplar = (("trace_id", record.trace_id),)
    runtime.observe(
        "repro_span_duration_seconds",
        record.duration,
        exemplar=exemplar,
        span=record.name,
    )
    runtime.count("repro_span_total", span=record.name)
    if record.error:
        runtime.count("repro_span_errors_total", span=record.name)
    if not record.sampled:
        # Head sampling: metrics stay complete, export is sampled.
        return
    with _sinks_lock:
        sinks = list(_sinks)
    for sink in sinks:
        try:
            # Each sink gets its own tags copy: a mutating sink must not
            # corrupt what sibling sinks (or later readers) observe.
            sink(replace(record, tags=dict(record.tags)))
        except Exception:
            runtime.count("repro_obs_sink_errors_total", kind="span_sink")


def span(
    name: str, *, context: Optional[TraceContext] = None, **tags: object
) -> _Span | _NullSpan:
    """A context manager timing one named unit of work.

    *tags* annotate the emitted :class:`SpanRecord` (they do not become
    metric labels — label cardinality stays bounded by span name).
    ``context=`` opens a *detached* span parented by that
    :class:`TraceContext` instead of the thread-local stack — required
    on event loops, where concurrent tasks share one thread.  When
    instrumentation is disabled this returns a shared no-op object.
    """
    if not runtime.is_enabled():
        return _NULL_SPAN
    if tags:
        built = {str(k): str(v) for k, v in sorted(tags.items())}
        return _Span(name, built, context)
    return _Span(name, {}, context)
