"""Lightweight tracing spans for the statistics-serving hot paths.

A span brackets one unit of work — a served batch, a table compile, a
WAL fsync — with :func:`time.perf_counter` timestamps (monotonic, so a
wall-clock step never produces a negative duration).  Spans nest: a
thread-local stack links each span to its parent, so ``journal.fsync``
inside ``journal.append`` inside ``maint.publish`` comes out with the
right parentage and depth even under concurrent serving threads.

Usage::

    with span("serve.batch", probes=len(batch)):
        ...

On exit every span (a) feeds the ``repro_span_duration_seconds``
histogram and ``repro_span_total`` counter in the default registry
(``repro_span_errors_total`` too when the body raised), and (b) is
delivered as a :class:`SpanRecord` to every registered sink
(:func:`add_span_sink`).  Sinks are observer code and must never fail
the observed path: a raising sink is swallowed and counted in
``repro_obs_sink_errors_total``.

When instrumentation is disabled (:func:`repro.obs.runtime.set_instrumentation`)
:func:`span` returns a shared no-op context manager and the hot path
pays only one boolean check.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Optional

from repro.obs import runtime

#: Human-readable catalogue of every span name emitted by the repro tree.
#: Kept here (and mirrored in docs/OBSERVABILITY.md) so tests can assert
#: that instrumentation stays in sync with the documentation.
SPAN_NAMES: tuple[str, ...] = (
    "serve.batch",
    "serve.table.compile",
    "serve.layout.compile",
    "journal.append",
    "journal.fsync",
    "journal.checkpoint",
    "persist.save",
    "persist.load",
    "persist.recover",
    "maint.publish",
    "maint.rebuild",
    "agent.job",
    "agent.drain",
)


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as delivered to sinks."""

    name: str
    #: perf_counter() at entry — monotonic, not wall time.
    start: float
    #: perf_counter() at exit.
    end: float
    #: Nesting depth (0 for a root span on its thread).
    depth: int
    #: Name of the enclosing span, or ``None`` for a root span.
    parent: Optional[str]
    #: Whether the span body raised.
    error: bool
    #: Free-form tags passed to :func:`span`.
    tags: tuple[tuple[str, str], ...] = ()

    @property
    def duration(self) -> float:
        """Elapsed seconds (always >= 0)."""
        return max(0.0, self.end - self.start)


SpanSink = Callable[[SpanRecord], None]

_sinks_lock = threading.Lock()
_sinks: list[SpanSink] = []


def add_span_sink(sink: SpanSink) -> None:
    """Register *sink* to receive every finished :class:`SpanRecord`."""
    if not callable(sink):
        raise TypeError(f"span sink must be callable, got {type(sink).__name__}")
    with _sinks_lock:
        _sinks.append(sink)


def remove_span_sink(sink: SpanSink) -> bool:
    """Unregister *sink*; returns whether it was registered."""
    with _sinks_lock:
        try:
            _sinks.remove(sink)
        except ValueError:
            return False
        return True


def clear_span_sinks() -> None:
    """Remove every registered sink (test isolation helper)."""
    with _sinks_lock:
        _sinks.clear()


class _SpanStack(threading.local):
    def __init__(self) -> None:
        self.stack: list[str] = []


_active = _SpanStack()


def current_span_name() -> Optional[str]:
    """Name of the innermost open span on this thread, if any."""
    stack = _active.stack
    return stack[-1] if stack else None


class _NullSpan:
    """Shared do-nothing context manager used when instrumentation is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """An open span; records itself into the registry and sinks on exit."""

    __slots__ = ("name", "tags", "_start", "_depth", "_parent", "_entered")

    def __init__(self, name: str, tags: tuple[tuple[str, str], ...]):
        self.name = name
        self.tags = tags
        self._start = 0.0
        self._depth = 0
        self._parent: Optional[str] = None
        self._entered = False

    def __enter__(self) -> "_Span":
        stack = _active.stack
        self._depth = len(stack)
        self._parent = stack[-1] if stack else None
        stack.append(self.name)
        self._entered = True
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        end = perf_counter()
        if self._entered:
            stack = _active.stack
            # Pop our own frame; tolerate a corrupted stack rather than
            # masking the body's exception with ours.
            if stack and stack[-1] == self.name:
                stack.pop()
            elif self.name in stack:
                stack.remove(self.name)
            self._entered = False
        record = SpanRecord(
            name=self.name,
            start=self._start,
            end=end,
            depth=self._depth,
            parent=self._parent,
            error=exc_type is not None,
            tags=self.tags,
        )
        _finish(record)
        return False


def _finish(record: SpanRecord) -> None:
    runtime.observe(
        "repro_span_duration_seconds", record.duration, span=record.name
    )
    runtime.count("repro_span_total", span=record.name)
    if record.error:
        runtime.count("repro_span_errors_total", span=record.name)
    with _sinks_lock:
        sinks = list(_sinks)
    for sink in sinks:
        try:
            sink(record)
        except Exception:
            runtime.count("repro_obs_sink_errors_total", kind="span_sink")


def span(name: str, **tags: object) -> _Span | _NullSpan:
    """A context manager timing one named unit of work.

    *tags* annotate the emitted :class:`SpanRecord` (they do not become
    metric labels — label cardinality stays bounded by span name).  When
    instrumentation is disabled this returns a shared no-op object.
    """
    if not runtime.is_enabled():
        return _NULL_SPAN
    if tags:
        return _Span(name, tuple((str(k), str(v)) for k, v in sorted(tags.items())))
    return _Span(name, ())
