"""Span export and trace assembly: JSONL sink, tree builder, renderers.

The tracing layer (:mod:`repro.obs.tracing`) emits flat
:class:`~repro.obs.tracing.SpanRecord` values, in whatever order spans
*finish* — a child always closes before its parent, concurrent requests
interleave freely, and records from different processes (server,
agent) land in the same stream.  This module turns that stream back
into something an operator can read:

* :class:`JsonlSpanSink` — a bounded span sink persisting the most
  recent records as JSON lines.  Writes go through
  :func:`repro.engine.durable.atomic_write_text` (write-temp, fsync,
  rename), so the file is always a well-formed prefix-free snapshot —
  a reader never sees a torn line.  The sink honors the
  :func:`repro.obs.runtime.set_instrumentation` kill-switch: when
  instrumentation is disabled it drops records without touching the
  filesystem.
* :func:`assemble_traces` — reconstructs per-trace span forests from
  *any* interleaved, shuffled, duplicated, or truncated record stream.
  Spans whose parent never arrived (sampled away, crashed mid-flight,
  or cut off by the bounded sink) are promoted to roots rather than
  dropped, and parent-link cycles in adversarial input are broken
  deterministically — the output is always a forest.
* :func:`render_trace_tree` / :func:`slowest_traces` — the text views
  behind the ``repro obs trace`` CLI and the server's ``/v1/tracez``
  endpoint.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.engine.durable import PathLike, atomic_write_text
from repro.obs import runtime
from repro.obs.tracing import SpanRecord

#: JSONL schema version stamped on every exported span line.
SPAN_WIRE_VERSION = 1


def span_to_wire(record: SpanRecord) -> dict:
    """The JSON-ready form of one :class:`SpanRecord`."""
    return {
        "v": SPAN_WIRE_VERSION,
        "name": record.name,
        "trace_id": record.trace_id,
        "span_id": record.span_id,
        "parent_id": record.parent_id,
        "parent": record.parent,
        "depth": record.depth,
        "start": record.start,
        "end": record.end,
        "error": record.error,
        "sampled": record.sampled,
        "tags": dict(record.tags),
    }


def span_from_wire(wire: dict) -> SpanRecord:
    """Rebuild a :class:`SpanRecord` from its JSONL form.

    Raises ``ValueError`` on structurally invalid input; unknown extra
    keys are ignored so newer writers stay readable.
    """
    if not isinstance(wire, dict):
        raise ValueError(f"span line must be a JSON object, got {type(wire).__name__}")
    name = wire.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"span line missing a non-empty 'name', got {name!r}")
    tags = wire.get("tags", {})
    if not isinstance(tags, dict):
        raise ValueError(f"span tags must be an object, got {type(tags).__name__}")
    parent = wire.get("parent")
    if parent is not None and not isinstance(parent, str):
        raise ValueError(f"span parent must be a string or null, got {parent!r}")
    return SpanRecord(
        name=name,
        start=float(wire.get("start", 0.0)),
        end=float(wire.get("end", 0.0)),
        depth=int(wire.get("depth", 0)),
        parent=parent,
        error=bool(wire.get("error", False)),
        tags={str(k): str(v) for k, v in tags.items()},
        trace_id=str(wire.get("trace_id", "")),
        span_id=str(wire.get("span_id", "")),
        parent_id=str(wire.get("parent_id", "")),
        sampled=bool(wire.get("sampled", True)),
    )


def read_spans(path: PathLike) -> tuple[list[SpanRecord], int]:
    """Load span records from a JSONL file.

    Returns ``(records, dropped)`` — malformed lines (a torn tail from a
    non-atomic writer, foreign junk) are counted, never fatal.
    """
    records: list[SpanRecord] = []
    dropped = 0
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(span_from_wire(json.loads(line)))
        except (ValueError, TypeError):
            dropped += 1
    return records, dropped


class JsonlSpanSink:
    """A bounded span sink persisting recent spans as JSON lines.

    Keeps the newest *max_spans* records and rewrites the whole file
    atomically every *flush_every* appended spans (and on
    :meth:`flush`/:meth:`close`), so the on-disk file is always
    well-formed — the atomic-write discipline of the persistence layer
    applied to telemetry.  Register it with
    :func:`repro.obs.tracing.add_span_sink`; unsampled spans never reach
    sinks, and when instrumentation is disabled the sink performs no
    file I/O at all.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        max_spans: int = 4096,
        flush_every: int = 32,
    ) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self._path = Path(path)
        self._lock = threading.Lock()
        self._records: deque[SpanRecord] = deque(maxlen=int(max_spans))
        self._flush_every = int(flush_every)
        self._pending = 0

    @property
    def path(self) -> Path:
        return self._path

    def __call__(self, record: SpanRecord) -> None:
        # The kill-switch gate: disabling instrumentation must stop file
        # I/O too, even for records already in flight.
        if not runtime.is_enabled():
            return
        with self._lock:
            self._records.append(record)
            self._pending += 1
            if self._pending >= self._flush_every:
                self._flush_locked()

    def flush(self) -> None:
        """Force the current buffer onto disk (atomic rewrite)."""
        if not runtime.is_enabled():
            return
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        text = "".join(
            json.dumps(span_to_wire(record), sort_keys=True) + "\n"
            for record in self._records
        )
        atomic_write_text(self._path, text)
        self._pending = 0

    def close(self) -> None:
        """Flush; the sink stays usable (idempotent)."""
        self.flush()

    def __enter__(self) -> "JsonlSpanSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class TraceNode:
    """One span inside an assembled trace tree."""

    record: SpanRecord
    children: list["TraceNode"] = field(default_factory=list)
    #: True when this span's ``parent_id`` named a span that is absent
    #: from the stream — it was promoted to a root instead of dropped.
    orphan: bool = False


@dataclass
class Trace:
    """All spans sharing one trace ID, assembled into a forest."""

    trace_id: str
    roots: list[TraceNode]
    spans: list[SpanRecord]

    @property
    def span_count(self) -> int:
        return len(self.spans)

    @property
    def duration(self) -> float:
        """max(end) - min(start) over the member spans (>= 0)."""
        if not self.spans:
            return 0.0
        return max(0.0, max(r.end for r in self.spans) - min(r.start for r in self.spans))

    @property
    def error(self) -> bool:
        return any(r.error for r in self.spans)

    def names(self) -> list[str]:
        """Distinct span names in the trace, sorted."""
        return sorted({r.name for r in self.spans})


def _sort_key(record: SpanRecord) -> tuple:
    return (record.start, record.span_id, record.name)


def assemble_traces(records: Iterable[SpanRecord]) -> list[Trace]:
    """Reconstruct per-trace forests from an arbitrary span stream.

    Tolerates everything a real stream does: arbitrary order (children
    finish first), duplicates (first record per span ID wins), missing
    parents (promoted to orphan roots), records without IDs (grouped
    under the ``""`` trace as independent roots), and adversarial
    parent-link cycles (broken at the earliest-starting member, which
    becomes a root).  The result is always a list of well-formed
    forests, ordered by trace start time.
    """
    by_trace: dict[str, dict[str, TraceNode]] = {}
    anonymous: list[TraceNode] = []
    for record in records:
        node = TraceNode(record=record)
        if not record.span_id:
            anonymous.append(node)
            continue
        nodes = by_trace.setdefault(record.trace_id, {})
        # First record per span ID wins — re-reading a rewritten JSONL
        # snapshot must not double spans.
        nodes.setdefault(record.span_id, node)

    traces: list[Trace] = []
    for trace_id, nodes in by_trace.items():
        roots: list[TraceNode] = []
        for node in nodes.values():
            parent_id = node.record.parent_id
            if not parent_id or parent_id == node.record.span_id:
                # A self-parenting span is a degenerate cycle: it becomes
                # a root but is flagged — its claimed parent is not real.
                node.orphan = bool(parent_id)
                roots.append(node)
            else:
                parent = nodes.get(parent_id)
                if parent is None:
                    node.orphan = True
                    roots.append(node)
                else:
                    parent.children.append(node)
        # Any node not reachable from a root sits on a parent cycle.
        visited: set[str] = set()
        frontier = list(roots)
        while frontier:
            node = frontier.pop()
            if node.record.span_id in visited:
                continue
            visited.add(node.record.span_id)
            frontier.extend(node.children)
        missing = [n for n in nodes.values() if n.record.span_id not in visited]
        while missing:
            # Break the cycle at its earliest-starting member: detach it
            # from its parent and promote it to a root.
            breaker = min(missing, key=lambda n: _sort_key(n.record))
            parent = nodes.get(breaker.record.parent_id)
            if parent is not None and breaker in parent.children:
                parent.children.remove(breaker)
            breaker.orphan = True
            roots.append(breaker)
            frontier = [breaker]
            while frontier:
                node = frontier.pop()
                if node.record.span_id in visited:
                    continue
                visited.add(node.record.span_id)
                frontier.extend(node.children)
            missing = [n for n in missing if n.record.span_id not in visited]

        def _order(node: TraceNode) -> None:
            node.children.sort(key=lambda n: _sort_key(n.record))
            for child in node.children:
                _order(child)

        roots.sort(key=lambda n: _sort_key(n.record))
        for root in roots:
            _order(root)
        spans = sorted((n.record for n in nodes.values()), key=_sort_key)
        traces.append(Trace(trace_id=trace_id, roots=roots, spans=spans))

    for node in anonymous:
        traces.append(
            Trace(trace_id="", roots=[node], spans=[node.record])
        )

    traces.sort(
        key=lambda t: (min((r.start for r in t.spans), default=0.0), t.trace_id)
    )
    return traces


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}µs"


def render_trace_tree(trace: Trace) -> str:
    """An ASCII tree of one assembled trace."""
    lines = [
        f"trace {trace.trace_id or '(no id)'} — {trace.span_count} span"
        f"{'s' if trace.span_count != 1 else ''}, {_format_duration(trace.duration)}"
        + (" [error]" if trace.error else "")
    ]

    def _walk(node: TraceNode, prefix: str, is_last: bool) -> None:
        record = node.record
        connector = "└─ " if is_last else "├─ "
        marks = ""
        if record.error:
            marks += " !error"
        if node.orphan:
            marks += " ~orphan"
        tags = ""
        if record.tags:
            inner = ",".join(f"{k}={v}" for k, v in sorted(dict(record.tags).items()))
            tags = f" [{inner}]"
        lines.append(
            f"{prefix}{connector}{record.name} "
            f"{_format_duration(record.duration)}{tags}{marks}"
        )
        child_prefix = prefix + ("   " if is_last else "│  ")
        for index, child in enumerate(node.children):
            _walk(child, child_prefix, index == len(node.children) - 1)

    for index, root in enumerate(trace.roots):
        _walk(root, "", index == len(trace.roots) - 1)
    return "\n".join(lines)


def slowest_traces(traces: Sequence[Trace], limit: int = 10) -> list[Trace]:
    """The *limit* longest traces, slowest first (ties by trace ID)."""
    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    return sorted(traces, key=lambda t: (-t.duration, t.trace_id))[:limit]


def trace_summary(trace: Trace) -> dict:
    """JSON-ready summary of one trace (the ``/v1/tracez`` row shape)."""
    return {
        "trace_id": trace.trace_id,
        "spans": trace.span_count,
        "duration_seconds": trace.duration,
        "error": trace.error,
        "names": trace.names(),
        "roots": [node.record.name for node in trace.roots],
    }
