"""Unified telemetry for the repro statistics stack.

Three layers, all thread-safe and all optional at runtime:

* :mod:`repro.obs.registry` — metric instruments (counters, gauges,
  histograms with labels), collectors, a bounded event ring buffer, and
  Prometheus-text/JSON exposition;
* :mod:`repro.obs.tracing` — ``span("serve.batch")`` context managers
  over monotonic clocks with parent/child nesting and pluggable sinks;
* :mod:`repro.obs.accuracy` — estimation-error accounting
  (``record_observation(probe, estimated, actual)``) with the
  Proposition 3.1 ``Σ p_i·v_i`` cross-check.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and metric catalogue.
"""

from __future__ import annotations

from repro.obs.accuracy import (
    AccuracyMonitor,
    ErrorStats,
    get_monitor,
    probe_key,
    reset_monitor,
    theoretical_self_join_error,
)
from repro.obs.registry import (
    DEFAULT_BUCKET_BOUNDS,
    DEFAULT_MAX_EVENTS,
    Counter,
    Event,
    Gauge,
    HistogramMetric,
    MetricRegistry,
    Sample,
)
from repro.obs.runtime import (
    count,
    emit_event,
    get_registry,
    is_enabled,
    observe,
    reset,
    set_gauge,
    set_instrumentation,
    set_registry,
)
from repro.obs.tracing import (
    SPAN_NAMES,
    SpanRecord,
    add_span_sink,
    clear_span_sinks,
    current_span_name,
    remove_span_sink,
    span,
)

__all__ = [
    "AccuracyMonitor",
    "Counter",
    "DEFAULT_BUCKET_BOUNDS",
    "DEFAULT_MAX_EVENTS",
    "ErrorStats",
    "Event",
    "Gauge",
    "HistogramMetric",
    "MetricRegistry",
    "SPAN_NAMES",
    "Sample",
    "SpanRecord",
    "add_span_sink",
    "clear_span_sinks",
    "count",
    "current_span_name",
    "emit_event",
    "get_monitor",
    "get_registry",
    "is_enabled",
    "observe",
    "probe_key",
    "remove_span_sink",
    "reset",
    "reset_monitor",
    "set_gauge",
    "set_instrumentation",
    "set_registry",
    "span",
    "theoretical_self_join_error",
]
