"""Unified telemetry for the repro statistics stack.

Four layers, all thread-safe and all optional at runtime:

* :mod:`repro.obs.registry` — metric instruments (counters, gauges,
  histograms with labels and per-bucket exemplars), collectors, a
  bounded event ring buffer, and Prometheus-text/JSON exposition;
* :mod:`repro.obs.tracing` — ``span("serve.batch")`` context managers
  over monotonic clocks with parent/child nesting, distributed trace
  context (trace/span IDs, ``attach``/``detach`` propagation, head
  sampling), and pluggable sinks;
* :mod:`repro.obs.export` — the bounded JSONL span sink, the trace
  assembler turning interleaved span streams back into trees, and the
  renderers behind ``repro obs trace``;
* :mod:`repro.obs.accuracy` — estimation-error accounting
  (``record_observation(probe, estimated, actual)``) with the
  Proposition 3.1 ``Σ p_i·v_i`` cross-check, now tagging each key with
  the trace that last touched it.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and metric catalogue.
"""

from __future__ import annotations

from repro.obs.accuracy import (
    AccuracyMonitor,
    ErrorStats,
    get_monitor,
    probe_key,
    reset_monitor,
    theoretical_self_join_error,
)
from repro.obs.registry import (
    DEFAULT_BUCKET_BOUNDS,
    DEFAULT_MAX_EVENTS,
    Counter,
    Event,
    Gauge,
    HistogramMetric,
    MetricRegistry,
    Sample,
)
from repro.obs.runtime import (
    count,
    emit_event,
    get_registry,
    is_enabled,
    observe,
    reset,
    set_gauge,
    set_instrumentation,
    set_registry,
)
from repro.obs.tracing import (
    SPAN_NAMES,
    HeadSampler,
    SpanRecord,
    TraceContext,
    TraceIdSource,
    add_span_sink,
    attach,
    clear_span_sinks,
    current_span_name,
    current_trace_context,
    detach,
    get_sampler,
    new_trace,
    remove_span_sink,
    scope,
    set_id_source,
    set_sampler,
    span,
)
from repro.obs.export import (
    JsonlSpanSink,
    Trace,
    TraceNode,
    assemble_traces,
    read_spans,
    render_trace_tree,
    slowest_traces,
    span_from_wire,
    span_to_wire,
    trace_summary,
)

__all__ = [
    "AccuracyMonitor",
    "Counter",
    "DEFAULT_BUCKET_BOUNDS",
    "DEFAULT_MAX_EVENTS",
    "ErrorStats",
    "Event",
    "Gauge",
    "HeadSampler",
    "HistogramMetric",
    "JsonlSpanSink",
    "MetricRegistry",
    "SPAN_NAMES",
    "Sample",
    "SpanRecord",
    "Trace",
    "TraceContext",
    "TraceIdSource",
    "TraceNode",
    "add_span_sink",
    "assemble_traces",
    "attach",
    "clear_span_sinks",
    "count",
    "current_span_name",
    "current_trace_context",
    "detach",
    "emit_event",
    "get_monitor",
    "get_registry",
    "get_sampler",
    "is_enabled",
    "new_trace",
    "observe",
    "probe_key",
    "read_spans",
    "remove_span_sink",
    "scope",
    "render_trace_tree",
    "reset",
    "reset_monitor",
    "set_gauge",
    "set_id_source",
    "set_instrumentation",
    "set_registry",
    "set_sampler",
    "slowest_traces",
    "span",
    "span_from_wire",
    "span_to_wire",
    "theoretical_self_join_error",
    "trace_summary",
]
