"""Process-wide observability runtime: the default registry and cheap helpers.

Instrumented code in the serve/engine/maint layers does not thread a
registry through every call — it uses the module-global default registry
via the helpers here.  Two properties make that safe for hot paths:

* **disable switch** — :func:`set_instrumentation` flips one module-level
  boolean; when off, :func:`count`, :func:`observe`, :func:`set_gauge`,
  and :func:`emit_event` return immediately without touching the
  registry (and :func:`repro.obs.tracing.span` yields a shared no-op).
  This is what the overhead benchmark toggles.
* **failure isolation** — observer code must never fail the observed
  path.  Every helper swallows registry errors after counting them via a
  best-effort internal counter; a broken metric name or label can make a
  metric disappear, never an estimate.

Tests swap the registry with :func:`set_registry` / :func:`reset` so
assertions never race against another test's leftover counters.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.obs.registry import Event, MetricRegistry

_state_lock = threading.Lock()
_registry = MetricRegistry()
_enabled = True


def get_registry() -> MetricRegistry:
    """The process-wide default registry."""
    return _registry


def set_registry(registry: MetricRegistry) -> MetricRegistry:
    """Replace the default registry; returns the previous one."""
    global _registry
    if not isinstance(registry, MetricRegistry):
        raise TypeError(
            f"expected a MetricRegistry, got {type(registry).__name__}"
        )
    with _state_lock:
        previous = _registry
        _registry = registry
    return previous


def reset(*, max_events: Optional[int] = None) -> MetricRegistry:
    """Install a fresh empty registry (and re-enable instrumentation)."""
    global _registry, _enabled
    with _state_lock:
        if max_events is None:
            _registry = MetricRegistry()
        else:
            _registry = MetricRegistry(max_events=max_events)
        _enabled = True
        return _registry


def is_enabled() -> bool:
    """Whether instrumentation helpers currently record anything."""
    return _enabled


def set_instrumentation(enabled: bool) -> bool:
    """Turn instrumentation on or off process-wide; returns the old state."""
    global _enabled
    with _state_lock:
        previous = _enabled
        _enabled = bool(enabled)
    return previous


def _note_internal_error() -> None:
    """Best-effort bump of the internal-error counter; never raises."""
    try:
        _registry.counter(
            "repro_obs_internal_errors_total",
            "instrumentation helper calls that raised and were swallowed",
        ).inc()
    except Exception:
        pass


def count(name: str, amount: float = 1.0, **labels: object) -> None:
    """Increment counter *name* by *amount*; a no-op when disabled."""
    if not _enabled:
        return
    try:
        _registry.counter(name, **labels).inc(amount)
    except Exception:
        _note_internal_error()


def observe(name: str, value: float, **labels: object) -> None:
    """Record *value* into histogram *name*; a no-op when disabled."""
    if not _enabled:
        return
    try:
        _registry.histogram(name, **labels).observe(value)
    except Exception:
        _note_internal_error()


def set_gauge(name: str, value: float, **labels: object) -> None:
    """Set gauge *name* to *value*; a no-op when disabled."""
    if not _enabled:
        return
    try:
        _registry.gauge(name, **labels).set(value)
    except Exception:
        _note_internal_error()


def emit_event(name: str, **fields: object) -> Optional[Event]:
    """Append an event to the default registry's ring buffer.

    Returns the recorded :class:`Event`, or ``None`` when instrumentation
    is disabled or recording failed.
    """
    if not _enabled:
        return None
    try:
        return _registry.record_event(name, **fields)
    except Exception:
        _note_internal_error()
        return None
