"""Process-wide observability runtime: the default registry and cheap helpers.

Instrumented code in the serve/engine/maint layers does not thread a
registry through every call — it uses the module-global default registry
via the helpers here.  Two properties make that safe for hot paths:

* **disable switch** — :func:`set_instrumentation` flips one module-level
  boolean; when off, :func:`count`, :func:`observe`, :func:`set_gauge`,
  and :func:`emit_event` return immediately without touching the
  registry (and :func:`repro.obs.tracing.span` yields a shared no-op).
  This is what the overhead benchmark toggles.
* **failure isolation** — observer code must never fail the observed
  path.  Every helper swallows registry errors after counting them via a
  best-effort internal counter; a broken metric name or label can make a
  metric disappear, never an estimate.

Tests swap the registry with :func:`set_registry` / :func:`reset` so
assertions never race against another test's leftover counters.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.obs.registry import Event, MetricRegistry

_state_lock = threading.Lock()
_registry = MetricRegistry()
_enabled = True

#: Memoized instrument handles, keyed by (kind, name, canonical labels).
#: Resolving a child through :class:`MetricRegistry` costs a name-regex
#: match, a label sort, and the registry lock on every call — measurable
#: on hot paths like span finish (two lookups per span).  The cache turns
#: the steady state into one dict probe.  It is invalidated whenever the
#: default registry changes and capped so unbounded label cardinality
#: cannot leak memory (past the cap, calls fall back to direct lookup).
_handles: dict[tuple, Any] = {}
_MAX_CACHED_HANDLES = 4096


def get_registry() -> MetricRegistry:
    """The process-wide default registry."""
    return _registry


def set_registry(registry: MetricRegistry) -> MetricRegistry:
    """Replace the default registry; returns the previous one."""
    global _registry
    if not isinstance(registry, MetricRegistry):
        raise TypeError(
            f"expected a MetricRegistry, got {type(registry).__name__}"
        )
    with _state_lock:
        previous = _registry
        _registry = registry
        _handles.clear()
    return previous


def reset(*, max_events: Optional[int] = None) -> MetricRegistry:
    """Install a fresh empty registry (and re-enable instrumentation)."""
    global _registry, _enabled
    with _state_lock:
        if max_events is None:
            _registry = MetricRegistry()
        else:
            _registry = MetricRegistry(max_events=max_events)
        _enabled = True
        _handles.clear()
        return _registry


def _handle(kind: str, name: str, labels: dict[str, object]) -> Any:
    """The cached instrument for (*kind*, *name*, *labels*).

    The fast path is a single read of an immutable dict entry (atomic in
    CPython, so no lock).  A miss resolves through the registry and
    publishes the handle under the state lock; a registry swap between
    the read and the publish at worst caches a handle one call used —
    the next call re-resolves because the cache was cleared.
    """
    key = (
        kind,
        name,
        tuple(sorted((label, str(value)) for label, value in labels.items())),
    )
    handle = _handles.get(key)
    if handle is not None:
        return handle
    registry = _registry
    if kind == "counter":
        handle = registry.counter(name, **labels)
    elif kind == "gauge":
        handle = registry.gauge(name, **labels)
    else:
        handle = registry.histogram(name, **labels)
    with _state_lock:
        if registry is _registry and len(_handles) < _MAX_CACHED_HANDLES:
            _handles[key] = handle
    return handle


def is_enabled() -> bool:
    """Whether instrumentation helpers currently record anything."""
    return _enabled


def set_instrumentation(enabled: bool) -> bool:
    """Turn instrumentation on or off process-wide; returns the old state."""
    global _enabled
    with _state_lock:
        previous = _enabled
        _enabled = bool(enabled)
    return previous


def _note_internal_error() -> None:
    """Best-effort bump of the internal-error counter; never raises."""
    try:
        _registry.counter(
            "repro_obs_internal_errors_total",
            "instrumentation helper calls that raised and were swallowed",
        ).inc()
    except Exception:
        pass


def count(name: str, amount: float = 1.0, **labels: object) -> None:
    """Increment counter *name* by *amount*; a no-op when disabled."""
    if not _enabled:
        return
    try:
        _handle("counter", name, labels).inc(amount)
    except Exception:
        _note_internal_error()


def observe(
    name: str,
    value: float,
    *,
    exemplar: Optional[tuple[tuple[str, str], ...]] = None,
    **labels: object,
) -> None:
    """Record *value* into histogram *name*; a no-op when disabled.

    *exemplar* is an optional canonical label-items tuple (e.g.
    ``(("trace_id", "..."),)``) pinned to the bucket the value lands in
    — see :meth:`repro.obs.registry.HistogramMetric.observe`.
    """
    if not _enabled:
        return
    try:
        _handle("histogram", name, labels).observe(value, exemplar=exemplar)
    except Exception:
        _note_internal_error()


def set_gauge(name: str, value: float, **labels: object) -> None:
    """Set gauge *name* to *value*; a no-op when disabled."""
    if not _enabled:
        return
    try:
        _handle("gauge", name, labels).set(value)
    except Exception:
        _note_internal_error()


def emit_event(name: str, **fields: object) -> Optional[Event]:
    """Append an event to the default registry's ring buffer.

    Returns the recorded :class:`Event`, or ``None`` when instrumentation
    is disabled or recording failed.
    """
    if not _enabled:
        return None
    try:
        return _registry.record_event(name, **fields)
    except Exception:
        _note_internal_error()
        return None
