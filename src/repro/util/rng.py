"""Deterministic random-number plumbing.

Every stochastic component in the library (data generators, permutation
experiments, sampling operators) accepts either an integer seed, an existing
:class:`numpy.random.Generator`, or ``None``.  Centralising the coercion here
keeps experiment code reproducible: the same seed always regenerates the same
figure rows.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: Anything accepted where randomness is needed.
RandomSource = Union[None, int, np.random.Generator]


def derive_rng(source: RandomSource = None) -> np.random.Generator:
    """Coerce *source* into a :class:`numpy.random.Generator`.

    ``None`` produces a non-deterministic generator, an ``int`` seeds a fresh
    PCG64 generator, and an existing generator is passed through unchanged
    (so callers can share one stream across components).
    """
    if source is None:
        return np.random.default_rng()
    if isinstance(source, np.random.Generator):
        return source
    if isinstance(source, (int, np.integer)):
        return np.random.default_rng(int(source))
    raise TypeError(
        f"random source must be None, an int seed, or a numpy Generator, "
        f"got {type(source).__name__}"
    )


def spawn_rngs(source: RandomSource, count: int) -> list[np.random.Generator]:
    """Derive *count* independent child generators from *source*.

    Children are created through :class:`numpy.random.SeedSequence` spawning,
    so each child stream is statistically independent and the whole family is
    reproducible from a single seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = derive_rng(source)
    seeds = root.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]
