"""Shared utilities: validation, seeded randomness, and majorization helpers."""

from __future__ import annotations

from repro.util.rng import RandomSource, derive_rng, spawn_rngs
from repro.util.validation import (
    ensure_in_range,
    ensure_non_negative,
    ensure_positive,
    ensure_positive_int,
)
from repro.util.stats import (
    FrequencyProfile,
    coefficient_of_variation,
    effective_zipf_z,
    gini_coefficient,
    profile_frequencies,
    skewness,
    top_k_share,
)
from repro.util.majorization import (
    dalton_transfer,
    is_majorized_by,
    lorenz_curve,
    majorization_distance,
)

__all__ = [
    "RandomSource",
    "derive_rng",
    "spawn_rngs",
    "ensure_in_range",
    "ensure_non_negative",
    "ensure_positive",
    "ensure_positive_int",
    "dalton_transfer",
    "is_majorized_by",
    "lorenz_curve",
    "majorization_distance",
    "FrequencyProfile",
    "coefficient_of_variation",
    "effective_zipf_z",
    "gini_coefficient",
    "profile_frequencies",
    "skewness",
    "top_k_share",
]
