"""Descriptive statistics of frequency sets.

"A common claim is that, in many attributes in real databases, there are
few domain values with high frequencies and many with low frequencies" —
the paper's motivation for the Zipf family.  This module quantifies that
claim for arbitrary frequency sets, feeding the advisor, the CLI's
``describe`` command, and experiment reports:

* coefficient of variation and (population) skewness;
* the Gini coefficient (area distance of the Lorenz curve from equality);
* top-k mass share (how much of the relation a few values cover);
* an *effective Zipf z* fitted by least squares in log-log rank space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike

from repro.util.validation import ensure_positive_int


def as_frequency_array(frequencies: ArrayLike) -> np.ndarray:
    """Local coercion to a 1-D non-negative float array.

    Deliberately duplicated from :mod:`repro.core.frequency` (which accepts
    the richer core types): ``repro.util`` must stay import-free of
    ``repro.core`` to avoid a package cycle.  Core objects still work here
    because they expose ``.frequencies``.
    """
    if hasattr(frequencies, "frequencies"):
        frequencies = frequencies.frequencies
    arr = np.array(frequencies, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("frequencies must be a non-empty 1-D sequence")
    if np.any(~np.isfinite(arr)) or np.any(arr < 0):
        raise ValueError("frequencies must be finite and non-negative")
    return arr


def coefficient_of_variation(frequencies: ArrayLike) -> float:
    """Population standard deviation over the mean (0 for uniform sets)."""
    freqs = as_frequency_array(frequencies)
    mean = freqs.mean()
    if mean == 0:
        return 0.0
    return float(freqs.std() / mean)


def skewness(frequencies: ArrayLike) -> float:
    """Population (Fisher) skewness; 0 for symmetric frequency sets."""
    freqs = as_frequency_array(frequencies)
    std = freqs.std()
    if std == 0:
        return 0.0
    return float(np.mean(((freqs - freqs.mean()) / std) ** 3))


def gini_coefficient(frequencies: ArrayLike) -> float:
    """Gini index of the frequency mass: 0 uniform, → 1 fully concentrated."""
    freqs = np.sort(as_frequency_array(frequencies))
    total = freqs.sum()
    if total == 0:
        return 0.0
    n = freqs.size
    # Standard closed form over sorted values.
    index = np.arange(1, n + 1)
    return float((2 * np.dot(index, freqs) - (n + 1) * total) / (n * total))


def top_k_share(frequencies: ArrayLike, k: int) -> float:
    """Fraction of total mass carried by the *k* most frequent values."""
    k = ensure_positive_int(k, "k")
    freqs = np.sort(as_frequency_array(frequencies))[::-1]
    total = freqs.sum()
    if total == 0:
        return 0.0
    return float(freqs[: min(k, freqs.size)].sum() / total)


def effective_zipf_z(frequencies: ArrayLike) -> float:
    """Least-squares Zipf exponent in log-log rank space.

    Fits ``log f_i ≈ c − z · log i`` over the positive frequencies in rank
    order; returns ``max(z, 0)``.  Exact on true Zipf inputs; a useful scalar
    summary ("how Zipf-like is this attribute?") elsewhere.
    """
    freqs = np.sort(as_frequency_array(frequencies))[::-1]
    positive = freqs[freqs > 0]
    if positive.size < 2:
        return 0.0
    ranks = np.log(np.arange(1, positive.size + 1, dtype=float))
    values = np.log(positive)
    slope = np.polyfit(ranks, values, 1)[0]
    return float(max(-slope, 0.0))


@dataclass(frozen=True)
class FrequencyProfile:
    """Summary statistics of one frequency set."""

    size: int
    total: float
    coefficient_of_variation: float
    skewness: float
    gini: float
    top_1_share: float
    top_10_share: float
    effective_z: float

    def __str__(self) -> str:
        return (
            f"M={self.size} T={self.total:g} cv={self.coefficient_of_variation:.3f} "
            f"skew={self.skewness:.3f} gini={self.gini:.3f} "
            f"top1={self.top_1_share:.1%} top10={self.top_10_share:.1%} "
            f"z≈{self.effective_z:.2f}"
        )


def profile_frequencies(frequencies: ArrayLike) -> FrequencyProfile:
    """Compute the full :class:`FrequencyProfile` of a frequency set."""
    freqs = as_frequency_array(frequencies)
    return FrequencyProfile(
        size=int(freqs.size),
        total=float(freqs.sum()),
        coefficient_of_variation=coefficient_of_variation(freqs),
        skewness=skewness(freqs),
        gini=gini_coefficient(freqs),
        top_1_share=top_k_share(freqs, 1),
        top_10_share=top_k_share(freqs, 10),
        effective_z=effective_zipf_z(freqs),
    )
