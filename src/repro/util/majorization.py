"""Majorization helpers (Marshall & Olkin, reference [17] of the paper).

The paper's Theorem 3.1 (optimality of serial histograms for extreme
arrangements) is derived from the theory of majorization: a frequency vector
``x`` is *majorized* by ``y`` when the partial sums of ``y`` in decreasing
order dominate those of ``x`` while the totals agree.  Self-join sizes
(``sum of squares``) are Schur-convex, so majorization ordering implies
self-join-size ordering — a fact the test suite uses to cross-check the
optimality machinery.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def _as_vector(values: Sequence[float], name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return arr


def is_majorized_by(x: Sequence[float], y: Sequence[float], *, atol: float = 1e-9) -> bool:
    """Return ``True`` when vector *x* is majorized by vector *y* (``x ≺ y``).

    Requires equal lengths and (within *atol*) equal totals; partial sums of
    the decreasingly sorted *y* must dominate those of *x*.
    """
    xv = _as_vector(x, "x")
    yv = _as_vector(y, "y")
    if xv.size != yv.size:
        raise ValueError(f"vectors must have equal length, got {xv.size} and {yv.size}")
    xs = np.sort(xv)[::-1]
    ys = np.sort(yv)[::-1]
    if abs(xs.sum() - ys.sum()) > atol * max(1.0, abs(ys.sum())):
        return False
    cx = np.cumsum(xs)
    cy = np.cumsum(ys)
    return bool(np.all(cy[:-1] >= cx[:-1] - atol))


def lorenz_curve(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return the Lorenz curve of a non-negative vector.

    Produces ``(population_fraction, mass_fraction)`` arrays (each starting at
    0 and ending at 1), with values accumulated in *increasing* order.  Useful
    for visualising how skewed a frequency set is: the further the curve bows
    below the diagonal, the more a few values dominate.
    """
    arr = _as_vector(values, "values")
    if np.any(arr < 0):
        raise ValueError("Lorenz curve requires non-negative values")
    total = arr.sum()
    if total == 0:
        raise ValueError("Lorenz curve undefined for an all-zero vector")
    sorted_vals = np.sort(arr)
    mass = np.concatenate([[0.0], np.cumsum(sorted_vals)]) / total
    population = np.linspace(0.0, 1.0, arr.size + 1)
    return population, mass


def majorization_distance(x: Sequence[float], y: Sequence[float]) -> float:
    """Return ``max_k (P_k(y) − P_k(x))`` over partial sums of sorted vectors.

    Zero (up to sign) when the vectors are permutations of each other; positive
    when *y* is strictly "more skewed".  The quantity is a convenient scalar
    for tests asserting that Zipf skew grows with its ``z`` parameter.
    """
    xv = np.sort(_as_vector(x, "x"))[::-1]
    yv = np.sort(_as_vector(y, "y"))[::-1]
    if xv.size != yv.size:
        raise ValueError(f"vectors must have equal length, got {xv.size} and {yv.size}")
    return float(np.max(np.cumsum(yv) - np.cumsum(xv)))


def dalton_transfer(values: Sequence[float], rich: int, poor: int, amount: float) -> np.ndarray:
    """Apply a Dalton (Robin Hood) transfer: move *amount* from index *rich* to *poor*.

    A transfer from a larger to a smaller entry that does not reverse their
    order produces a vector majorized by the original — the elementary step in
    majorization proofs.  The test suite uses it to generate ordered pairs of
    frequency vectors.
    """
    arr = _as_vector(values, "values").copy()
    if not 0 <= rich < arr.size or not 0 <= poor < arr.size:
        raise IndexError("rich/poor indices out of range")
    if rich == poor:
        raise ValueError("rich and poor indices must differ")
    if amount < 0:
        raise ValueError(f"amount must be non-negative, got {amount}")
    if arr[rich] < arr[poor]:
        raise ValueError("transfer must go from the larger entry to the smaller")
    if amount > (arr[rich] - arr[poor]) / 2:
        raise ValueError("transfer would reverse the order of the two entries")
    arr[rich] -= amount
    arr[poor] += amount
    return arr
