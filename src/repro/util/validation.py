"""Argument-validation helpers shared across the library.

These raise ``ValueError``/``TypeError`` with uniform, descriptive messages so
call sites stay one-liners and the error text always names the offending
parameter.
"""

from __future__ import annotations

from numbers import Integral, Real
from typing import Optional

import numpy as np


def ensure_positive_int(value: object, name: str) -> int:
    """Return *value* as ``int`` after checking it is a positive integer."""
    if isinstance(value, bool) or not isinstance(value, (Integral, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def ensure_positive(value: object, name: str) -> float:
    """Return *value* as ``float`` after checking it is strictly positive."""
    if isinstance(value, bool) or not isinstance(value, (Real, np.floating, np.integer)):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def ensure_non_negative(value: object, name: str) -> float:
    """Return *value* as ``float`` after checking it is not negative or NaN."""
    if isinstance(value, bool) or not isinstance(value, (Real, np.floating, np.integer)):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if np.isnan(value) or value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def ensure_in_range(
    value: object,
    name: str,
    low: Optional[float] = None,
    high: Optional[float] = None,
) -> float:
    """Return *value* as ``float`` after checking ``low <= value <= high``."""
    if isinstance(value, bool) or not isinstance(value, (Real, np.floating, np.integer)):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if np.isnan(value):
        raise ValueError(f"{name} must be a number within range, got nan")
    if low is not None and value < low:
        raise ValueError(f"{name} must be >= {low}, got {value}")
    if high is not None and value > high:
        raise ValueError(f"{name} must be <= {high}, got {value}")
    return value
