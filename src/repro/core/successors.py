"""Successor histogram classes: MaxDiff and Compressed.

The paper's conclusions set up a research program the same authors executed
in "Improved Histograms for Selectivity Estimation of Range Predicates"
(Poosala, Ioannidis, Haas & Shekita, SIGMOD 1996).  Two of its heuristics
are natural *cheap approximations of the v-optimal serial histogram* and
are implemented here as extensions:

* **MaxDiff** — sort the frequencies and cut at the β−1 largest adjacent
  gaps.  Serial by construction, ``O(M log M)``, and usually close to the
  dynamic-programming optimum because large SSE reductions happen at large
  frequency jumps.
* **Compressed** — values whose frequency exceeds the equi-depth bucket
  mass ``T/β`` get singleton buckets (they would dominate any shared
  bucket); the remaining frequencies are split into the leftover buckets
  with near-equal total mass.  This is the frequency-set formulation of the
  layout many systems adopted.

Both return ordinary :class:`~repro.core.histogram.Histogram` objects, so
every estimator, error formula, and experiment applies unchanged.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.frequency import FrequencyLike, as_frequency_array
from repro.core.histogram import Histogram
from repro.util.validation import ensure_positive_int


def max_diff_histogram(
    frequencies: FrequencyLike, buckets: int, values: Optional[Sequence] = None
) -> Histogram:
    """Build the MaxDiff(F) histogram: boundaries at the largest frequency gaps.

    With *buckets* = M every value is exact; with one bucket it degenerates
    to the trivial histogram.  Ties between equal gaps break toward the
    front of the (descending) sorted order, deterministically.
    """
    freqs = as_frequency_array(frequencies)
    buckets = ensure_positive_int(buckets, "buckets")
    if buckets > freqs.size:
        raise ValueError(
            f"cannot build {buckets} buckets over {freqs.size} frequencies"
        )
    ordered = np.sort(freqs)[::-1]
    if buckets == 1:
        return Histogram.from_sorted_sizes(freqs, (freqs.size,), kind="max-diff", values=values)
    gaps = ordered[:-1] - ordered[1:]  # non-negative, length M-1
    # Indices of the beta-1 largest gaps; stable tie-break by position.
    order = np.lexsort((np.arange(gaps.size, dtype=np.int64), -gaps))
    cut_positions = np.sort(order[: buckets - 1]) + 1  # cut after these ranks
    sizes = np.diff(np.concatenate([[0], cut_positions, [freqs.size]]))
    return Histogram.from_sorted_sizes(
        freqs, tuple(int(s) for s in sizes), kind="max-diff", values=values
    )


def compressed_histogram(
    frequencies: FrequencyLike, buckets: int, values: Optional[Sequence] = None
) -> Histogram:
    """Build a Compressed histogram: singletons for heavy values, balanced rest.

    A frequency is *heavy* when it exceeds ``T / β``; each heavy frequency
    (up to β − 1 of them) takes a singleton bucket, and the remaining
    frequencies fill the leftover buckets with near-equal total mass
    (equi-depth over the sorted residue).  Serial by construction.
    """
    freqs = as_frequency_array(frequencies)
    buckets = ensure_positive_int(buckets, "buckets")
    if buckets > freqs.size:
        raise ValueError(
            f"cannot build {buckets} buckets over {freqs.size} frequencies"
        )
    ordered = np.sort(freqs)[::-1]
    total = float(ordered.sum())
    threshold = total / buckets

    singles = 0
    while (
        singles < buckets - 1
        and singles < freqs.size - 1
        and ordered[singles] > threshold
    ):
        singles += 1
    remaining_buckets = buckets - singles
    residue = ordered[singles:]
    if remaining_buckets >= residue.size:
        sizes = (1,) * singles + (1,) * residue.size
        # If fewer residue entries than leftover buckets, merge the surplus
        # into singleton buckets (all exact anyway).
        return Histogram.from_sorted_sizes(
            freqs, sizes, kind="compressed", values=values
        )

    # Equi-depth split of the residue into remaining_buckets runs.
    cumulative = np.cumsum(residue, dtype=np.float64)
    residue_total = cumulative[-1]
    boundaries = [0]
    for k in range(1, remaining_buckets):
        target = residue_total * k / remaining_buckets
        cut = int(np.searchsorted(cumulative, target, side="left")) + 1
        cut = max(cut, boundaries[-1] + 1)
        cut = min(cut, residue.size - (remaining_buckets - k))
        boundaries.append(cut)
    boundaries.append(residue.size)
    residue_sizes = tuple(
        boundaries[i + 1] - boundaries[i] for i in range(remaining_buckets)
    )
    sizes = (1,) * singles + residue_sizes
    return Histogram.from_sorted_sizes(freqs, sizes, kind="compressed", values=values)
