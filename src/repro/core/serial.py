"""Optimal serial histograms: the paper's V-OptHist algorithm (Section 4.1).

Serial histograms partition the *sorted* frequency set into contiguous runs.
By Theorem 3.3 the serial histogram minimising the self-join error
``Σ_i p_i·v_i`` (Proposition 3.1) is v-optimal for every query the relation
participates in, so finding it is a local, per-relation computation.

Two equivalent algorithms are provided:

* :func:`v_opt_hist_exhaustive` — the paper's V-OptHist: sort, then try every
  contiguous partition into β buckets.  Cost ``O(M log M + C(M−1, β−1))``
  (Theorem 4.1); only viable for small M/β, which is exactly the paper's
  point (Table 1).
* :func:`v_opt_hist_dp` — an ``O(M²·β)`` dynamic program over the same search
  space.  Because the optimal serial histogram is a contiguous partition of
  the sorted set and bucket costs are additive, the DP provably returns the
  same optimum; the test suite asserts equality against the exhaustive
  algorithm on all small inputs.  The figure sweeps with ``M = 100`` use it.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.core.frequency import FrequencyLike, as_frequency_array
from repro.core.histogram import Histogram
from repro.util.validation import ensure_positive_int

#: Partition-count threshold below which ``method="auto"`` picks the
#: exhaustive algorithm.  Above it the dynamic program is used.
AUTO_EXHAUSTIVE_LIMIT = 20_000


def _prepare(frequencies, buckets: int) -> tuple[np.ndarray, int]:
    freqs = as_frequency_array(frequencies)
    buckets = ensure_positive_int(buckets, "buckets")
    if buckets > freqs.size:
        raise ValueError(
            f"cannot build {buckets} buckets over {freqs.size} frequencies"
        )
    return freqs, buckets


def _segment_sse(prefix_sum: np.ndarray, prefix_sq: np.ndarray, start: int, stop: int) -> float:
    """SSE (``p·v``) of the sorted-slice ``[start, stop)`` via prefix sums."""
    count = stop - start
    seg_sum = prefix_sum[stop] - prefix_sum[start]
    seg_sq = prefix_sq[stop] - prefix_sq[start]
    return seg_sq - seg_sum * seg_sum / count


def serial_error_from_sizes(frequencies: FrequencyLike, sizes: Sequence[int]) -> float:
    """Self-join error (formula (3)) of the serial histogram with *sizes*.

    *sizes* are bucket counts over the descending-sorted frequencies; the
    error is ``Σ_i p_i·v_i`` computed with prefix sums in ``O(M + β)``.
    """
    freqs = as_frequency_array(frequencies)
    sizes = tuple(int(s) for s in sizes)
    if any(s <= 0 for s in sizes):
        raise ValueError(f"bucket sizes must be positive, got {sizes}")
    if sum(sizes) != freqs.size:
        raise ValueError(
            f"bucket sizes {sizes} must sum to the number of frequencies "
            f"({freqs.size})"
        )
    ordered = np.sort(freqs)[::-1]
    prefix_sum = np.concatenate([[0.0], np.cumsum(ordered, dtype=np.float64)])
    prefix_sq = np.concatenate([[0.0], np.cumsum(ordered * ordered, dtype=np.float64)])
    error = 0.0
    start = 0
    for size in sizes:
        error += _segment_sse(prefix_sum, prefix_sq, start, start + size)
        start += size
    return float(max(error, 0.0))


def enumerate_serial_partitions(count: int, buckets: int) -> Iterator[tuple[int, ...]]:
    """Yield every composition of *count* into *buckets* positive parts.

    Each composition is the size tuple of one serial histogram over the
    sorted frequency set — the search space of the paper's V-OptHist.  There
    are ``C(count−1, buckets−1)`` of them.
    """
    count = ensure_positive_int(count, "count")
    buckets = ensure_positive_int(buckets, "buckets")
    if buckets > count:
        return
    for cuts in combinations(range(1, count), buckets - 1):
        edges = (0,) + cuts + (count,)
        yield tuple(edges[i + 1] - edges[i] for i in range(buckets))


def serial_partition_count(count: int, buckets: int) -> int:
    """Number of serial histograms with *buckets* buckets: ``C(M−1, β−1)``."""
    count = ensure_positive_int(count, "count")
    buckets = ensure_positive_int(buckets, "buckets")
    if buckets > count:
        return 0
    return comb(count - 1, buckets - 1)


def v_opt_hist_exhaustive(
    frequencies: FrequencyLike, buckets: int, values: Optional[Sequence] = None
) -> Histogram:
    """The paper's V-OptHist: exhaustive search over serial partitions.

    Sorts the frequency set, evaluates formula (3) for every contiguous
    partition into *buckets* buckets via prefix sums, and returns the
    histogram with minimum error.  Runs in
    ``O(M log M + C(M−1, β−1)·β)`` — exponential in practice (Table 1), so
    use :func:`v_opt_hist_dp` beyond small inputs.
    """
    freqs, buckets = _prepare(frequencies, buckets)
    ordered = np.sort(freqs)[::-1]
    prefix_sum = np.concatenate([[0.0], np.cumsum(ordered, dtype=np.float64)])
    prefix_sq = np.concatenate([[0.0], np.cumsum(ordered * ordered, dtype=np.float64)])

    best_sizes: Optional[tuple[int, ...]] = None
    best_error = np.inf
    for sizes in enumerate_serial_partitions(freqs.size, buckets):
        error = 0.0
        start = 0
        for size in sizes:
            error += _segment_sse(prefix_sum, prefix_sq, start, start + size)
            start += size
            if error >= best_error:
                break
        if error < best_error:
            best_error = error
            best_sizes = sizes
    assert best_sizes is not None  # buckets <= M guarantees a partition exists
    return Histogram.from_sorted_sizes(freqs, best_sizes, kind="serial", values=values)


def dp_contiguous_partition(ordered: np.ndarray, buckets: int) -> tuple[int, ...]:
    """Minimum-SSE partition of *ordered* into *buckets* contiguous runs.

    The order is the caller's: descending frequency order yields the serial
    optimum (V-OptHist); natural value order yields the value-range
    V-Optimal histogram used for range predicates.  ``O(M²·β)`` with the
    inner minimisation vectorised.
    """
    buckets = ensure_positive_int(buckets, "buckets")
    size = int(ordered.size)
    prefix_sum = np.concatenate([[0.0], np.cumsum(ordered, dtype=np.float64)])
    prefix_sq = np.concatenate([[0.0], np.cumsum(ordered * ordered, dtype=np.float64)])

    best = np.full(size + 1, np.inf, dtype=np.float64)
    for j in range(1, size + 1):
        best[j] = _segment_sse(prefix_sum, prefix_sq, 0, j)
    back = np.zeros((buckets + 1, size + 1), dtype=int)

    for k in range(2, buckets + 1):
        new_best = np.full(size + 1, np.inf, dtype=np.float64)
        for j in range(k, size + 1):
            splits = np.arange(k - 1, j, dtype=np.int64)
            seg_sum = prefix_sum[j] - prefix_sum[splits]
            seg_sq = prefix_sq[j] - prefix_sq[splits]
            costs = best[splits] + seg_sq - seg_sum * seg_sum / (j - splits)
            choice = int(np.argmin(costs))
            new_best[j] = costs[choice]
            back[k][j] = splits[choice]
        best = new_best

    sizes_reversed = []
    j = size
    for k in range(buckets, 1, -1):
        i = int(back[k][j])
        sizes_reversed.append(j - i)
        j = i
    sizes_reversed.append(j)
    return tuple(reversed(sizes_reversed))


def v_opt_hist_dp(
    frequencies: FrequencyLike, buckets: int, values: Optional[Sequence] = None
) -> Histogram:
    """Dynamic-program equivalent of V-OptHist in ``O(M²·β)``.

    ``best[k][j]`` is the minimum total SSE of splitting the first *j* sorted
    frequencies into *k* buckets; bucket costs are additive so the optimal
    solution has optimal prefixes.  Returns the same optimum as the
    exhaustive search (asserted by the test suite on small inputs), possibly
    differing in tie-broken bucket boundaries of equal error.
    """
    freqs, buckets = _prepare(frequencies, buckets)
    ordered = np.sort(freqs)[::-1]
    sizes = dp_contiguous_partition(ordered, buckets)
    return Histogram.from_sorted_sizes(freqs, sizes, kind="serial", values=values)


def v_optimal_serial_histogram(
    frequencies: FrequencyLike,
    buckets: int,
    values: Optional[Sequence] = None,
    method: str = "auto",
) -> Histogram:
    """Return the v-optimal serial histogram with *buckets* buckets.

    ``method`` selects the algorithm: ``"exhaustive"`` (the paper's
    V-OptHist), ``"dp"`` (the equivalent dynamic program), or ``"auto"``
    (exhaustive while the partition count stays below
    ``AUTO_EXHAUSTIVE_LIMIT``, DP otherwise).
    """
    freqs, buckets = _prepare(frequencies, buckets)
    if method == "auto":
        partitions = serial_partition_count(freqs.size, buckets)
        method = "exhaustive" if partitions <= AUTO_EXHAUSTIVE_LIMIT else "dp"
    if method == "exhaustive":
        return v_opt_hist_exhaustive(freqs, buckets, values=values)
    if method == "dp":
        return v_opt_hist_dp(freqs, buckets, values=values)
    raise ValueError(f"unknown method {method!r}; expected auto, exhaustive, or dp")


def all_serial_histograms(frequencies: FrequencyLike, buckets: int) -> Iterator[Histogram]:
    """Yield every serial histogram with *buckets* buckets (for small inputs).

    Used by the test suite to verify optimality claims exhaustively.
    """
    freqs, buckets = _prepare(frequencies, buckets)
    for sizes in enumerate_serial_partitions(freqs.size, buckets):
        yield Histogram.from_sorted_sizes(freqs, sizes, kind="serial")
