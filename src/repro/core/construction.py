"""Statistics collection: the Matrix and JointMatrix algorithms (Section 3.3).

``Matrix`` computes the frequency distribution of an attribute in a single
scan with a hash table — the cheap, per-relation information v-optimality
needs.  ``JointMatrix`` additionally *joins* the per-relation frequency
tables on the attribute value, producing the joint-frequency table that full
(per-query) optimality would require; the paper's point is that this join
step makes full knowledge "quite expensive".

These functions operate on plain value sequences so they can be unit-tested
in isolation; :mod:`repro.engine.analyze` wraps them for engine relations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.analysis.contracts import check_estimate, contracts_enabled, require
from repro.core.frequency import AttributeDistribution
from repro.core.matrix import FrequencyMatrix


def matrix_algorithm(column: Iterable[Hashable]) -> AttributeDistribution:
    """The paper's ``Matrix``: one hash-counting scan over *column*.

    Returns the attribute's frequency distribution (values with counts); its
    :meth:`~repro.core.frequency.AttributeDistribution.frequency_set` is the
    input to every v-optimal histogram construction.
    """
    if contracts_enabled():
        column = list(column)
        distribution = AttributeDistribution.from_column(column)
        require(
            int(sum(distribution.frequencies)) == len(column),
            "Matrix must conserve the scanned tuple count: "
            f"Σ freq={int(sum(distribution.frequencies))} != |column|={len(column)}",
        )
        return distribution
    return AttributeDistribution.from_column(column)


def matrix_algorithm_2d(
    pairs: Iterable[tuple[Hashable, Hashable]]
) -> FrequencyMatrix:
    """Two-dimensional ``Matrix``: count value pairs of two attributes."""
    if contracts_enabled():
        pairs = list(pairs)
        matrix = FrequencyMatrix.from_joint_counts(pairs)
        require(
            int(matrix.array.sum()) == len(pairs),
            "2-D Matrix must conserve the scanned pair count",
        )
        return matrix
    return FrequencyMatrix.from_joint_counts(pairs)


@dataclass(frozen=True)
class JointFrequencyRow:
    """One row of a two-way joint-frequency table: a shared value with both counts."""

    value: Hashable
    frequency_left: float
    frequency_right: float


def joint_matrix_algorithm(  # repolint: boundary-exempt — both columns validated by matrix_algorithm
    column_left: Iterable[Hashable], column_right: Iterable[Hashable]
) -> list[JointFrequencyRow]:
    """The paper's ``JointMatrix`` for a two-way join.

    Computes both attributes' frequency tables (two hash-counting scans) and
    joins them on the attribute value, keeping both frequency columns.  The
    exact join result size is ``Σ_rows f_left·f_right`` — Theorem 2.1 read off
    the joint table.
    """
    left = matrix_algorithm(column_left)  # validates/contracts both columns
    right = matrix_algorithm(column_right)
    right_index = {v: i for i, v in enumerate(right.values)}
    rows = []
    for i, value in enumerate(left.values):
        j = right_index.get(value)
        if j is not None:
            rows.append(
                JointFrequencyRow(
                    value=value,
                    frequency_left=float(left.frequencies[i]),
                    frequency_right=float(right.frequencies[j]),
                )
            )
    return rows


def joint_table_result_size(rows: Sequence[JointFrequencyRow]) -> float:
    """Exact two-way join size from a joint-frequency table.

    Contract: a product of non-negative frequency columns, so the result is
    finite and non-negative (Theorem 2.1).
    """
    size = float(sum(r.frequency_left * r.frequency_right for r in rows))
    if contracts_enabled():
        check_estimate(size, "joint_table_result_size")
    return size
