"""Optimality metrics: Proposition 3.1, Theorems 3.2/3.3 machinery (Section 3).

When only frequency *sets* are known, the quality of a histogram tuple for a
query is judged over all arrangements of each set into its frequency matrix:

* ``E[S − S'] = 0`` for every histogram (Theorem 3.2), so the bias is useless
  as a criterion;
* the *v-error* ``E[(S − S')²]`` — equivalently the variance of ``S − S'`` —
  defines v-optimality (Definition 3.2);
* the v-optimal tuple is obtained per relation by optimising each relation's
  **self-join** (Theorem 3.3), for which Proposition 3.1 gives closed forms.

This module provides the self-join formulas, plus three independent ways of
computing the two-way-join v-error used to validate the theory: exhaustive
enumeration over permutations (tiny inputs), an ``O(M²)`` closed form derived
from permutation moments, and seeded Monte-Carlo sampling.
"""

from __future__ import annotations

from itertools import permutations
from typing import Callable

import numpy as np

from repro.core.frequency import AttributeDistribution, FrequencyLike, as_frequency_array
from repro.core.histogram import Histogram
from repro.util.rng import RandomSource, derive_rng
from repro.util.validation import ensure_positive_int


# ----------------------------------------------------------------------
# Self-join quantities (Proposition 3.1)
# ----------------------------------------------------------------------


def _ensure_histogram(value: Histogram, name: str) -> Histogram:
    """Boundary check: error formulas need a Histogram."""
    if not isinstance(value, Histogram):
        raise TypeError(f"{name} must be a Histogram, got {type(value).__name__}")
    return value


def self_join_size(frequencies: FrequencyLike) -> float:
    """Exact self-join result size: ``S = Σ_i f_i²``."""
    freqs = as_frequency_array(frequencies)
    return float(np.dot(freqs, freqs))


def approximate_self_join_size(histogram: Histogram, *, rounded: bool = False) -> float:
    """Approximate self-join size under *histogram*.

    With exact bucket averages this equals formula (2), ``Σ_i T_i²/p_i``;
    with *rounded* averages it is the sum of squared integer approximations.
    """
    _ensure_histogram(histogram, "histogram")
    approx = histogram.approximate_frequencies(rounded=rounded)
    return float(np.dot(approx, approx))


def self_join_error(histogram: Histogram) -> float:
    """Self-join estimation error ``S − S' = Σ_i p_i·v_i`` (formula (3))."""
    _ensure_histogram(histogram, "histogram")
    return histogram.self_join_error()


def self_join_sigma(
    frequencies: FrequencyLike,
    histogram_factory: Callable[[AttributeDistribution], Histogram],
    *,
    trials: int = 1,
    rng: RandomSource = None,
) -> float:
    """σ = sqrt(E[(S − S')²]) for a self-join under randomised arrangements.

    *histogram_factory* receives an :class:`AttributeDistribution` (a random
    association of the frequency multiset with domain values ``0..M−1``) and
    returns the histogram to evaluate.  Frequency-based histograms (trivial,
    serial, end-biased) ignore the arrangement, so one trial suffices;
    value-order-based histograms (equi-width, equi-depth) are averaged over
    *trials* arrangements — the paper's "no correlation" modelling of
    Section 5.1.
    """
    freqs = as_frequency_array(frequencies)
    trials = ensure_positive_int(trials, "trials")
    gen = derive_rng(rng)
    exact = float(np.dot(freqs, freqs))
    base = AttributeDistribution(range(freqs.size), freqs)
    squared_errors = np.empty(trials, dtype=np.float64)
    for t in range(trials):
        arrangement = base.permuted(gen)
        histogram = histogram_factory(arrangement)
        approx = histogram.approximate_frequencies()
        estimate = float(np.dot(approx, approx))
        squared_errors[t] = (exact - estimate) ** 2
    return float(np.sqrt(squared_errors.mean()))


# ----------------------------------------------------------------------
# Two-way join v-error under unknown arrangements (Section 3.2)
# ----------------------------------------------------------------------

def _deviation_matrix(freqs0, freqs1, hist0, hist1) -> np.ndarray:
    """``x[i, k] = a_i·b_k − a'_i·b'_k`` over the shared join domain.

    The joint arrangement of two frequency vectors over one join domain is
    determined (up to relabelling) by a single relative permutation τ:
    ``S = Σ_i a_i·b_{τ(i)}`` and ``S' = Σ_i a'_i·b'_{τ(i)}``, so every
    permutation statistic of ``S − S'`` is a statistic of this matrix.
    """
    a = as_frequency_array(freqs0)
    b = as_frequency_array(freqs1)
    if a.size != b.size:
        raise ValueError(
            f"join-domain sizes must match, got {a.size} and {b.size}"
        )
    a_approx = hist0.approximate_array(a)
    b_approx = hist1.approximate_array(b)
    return np.outer(a, b) - np.outer(a_approx, b_approx)


def exact_expected_difference_two_way(
    freqs0: FrequencyLike, freqs1: FrequencyLike, hist0: Histogram, hist1: Histogram
) -> float:  # repolint: boundary-exempt — validated by _deviation_matrix
    """``E[S − S']`` over uniform arrangements — zero by Theorem 3.2.

    Computed in closed form: the expectation of ``Σ_i x_{i,τ(i)}`` over a
    uniform permutation τ is the grand mean of the deviation matrix times M,
    and histograms preserve totals, so the grand sum vanishes.
    """
    x = _deviation_matrix(freqs0, freqs1, hist0, hist1)
    m = x.shape[0]
    return float(x.sum() / m)


def exact_v_error_two_way(
    freqs0: FrequencyLike, freqs1: FrequencyLike, hist0: Histogram, hist1: Histogram
) -> float:
    """``E[(S − S')²]`` by exhaustive enumeration of relative permutations.

    Cost is ``M!`` — intended for the test suite's tiny cases (M ≤ 7), where
    it anchors both the closed form and the Monte-Carlo estimator.
    """
    x = _deviation_matrix(freqs0, freqs1, hist0, hist1)
    m = x.shape[0]
    if m > 9:
        raise ValueError(
            f"exhaustive enumeration over {m}! permutations is not sensible; "
            "use analytic_v_error_two_way or monte_carlo_v_error_two_way"
        )
    total = 0.0
    count = 0
    indices = range(m)
    for tau in permutations(indices):
        diff = sum(x[i, tau[i]] for i in indices)
        total += diff * diff
        count += 1
    return total / count


def analytic_v_error_two_way(
    freqs0: FrequencyLike, freqs1: FrequencyLike, hist0: Histogram, hist1: Histogram
) -> float:  # repolint: boundary-exempt — validated by _deviation_matrix
    """``E[(S − S')²]`` in closed form, ``O(M²)``.

    For ``D = Σ_i x_{i,τ(i)}`` with τ uniform over permutations:

    ``E[D²] = (1/M)·Σ_{i,k} x_{i,k}²
              + (G² − Σ_i R_i² − Σ_k C_k² + Σ_{i,k} x_{i,k}²) / (M(M−1))``

    where ``R_i``/``C_k``/``G`` are row/column/grand sums of the deviation
    matrix.  Validated against :func:`exact_v_error_two_way` in the tests.
    """
    x = _deviation_matrix(freqs0, freqs1, hist0, hist1)
    m = x.shape[0]
    sq_sum = float(np.sum(x * x))
    if m == 1:
        return sq_sum
    row_sums = x.sum(axis=1)
    col_sums = x.sum(axis=0)
    grand = float(x.sum())
    pair_term = (
        grand * grand
        - float(np.dot(row_sums, row_sums))
        - float(np.dot(col_sums, col_sums))
        + sq_sum
    )
    return sq_sum / m + pair_term / (m * (m - 1))


def monte_carlo_v_error_two_way(
    freqs0: FrequencyLike,
    freqs1: FrequencyLike,
    hist0: Histogram,
    hist1: Histogram,
    *,
    trials: int = 1000,
    rng: RandomSource = None,
) -> float:
    """``E[(S − S')²]`` by sampling random relative permutations."""
    trials = ensure_positive_int(trials, "trials")
    x = _deviation_matrix(freqs0, freqs1, hist0, hist1)
    m = x.shape[0]
    gen = derive_rng(rng)
    rows = np.arange(m, dtype=np.int64)
    acc = 0.0
    for _ in range(trials):
        tau = gen.permutation(m)
        diff = float(x[rows, tau].sum())
        acc += diff * diff
    return acc / trials
