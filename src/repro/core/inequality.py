"""Non-equality operators: ``≠`` joins/selections and range joins (Section 6).

The paper's conclusions observe that serial histograms remain optimal
beyond equality predicates:

* a ``≠`` join is "simply the complement of equality joins": its size is
  the Cartesian product minus the equality-join size, so the estimation
  error is the *negated* equality error and every optimality property
  transfers verbatim (the test suite checks the v-errors coincide);
* range selections are disjunctive equality selections over the values in
  range, and (by a symmetric argument) range *joins* ``R.a < S.b`` decompose
  into per-value products weighted by cumulative frequencies.

This module provides exact sizes (from value-aware distributions) and
histogram estimates for these operators.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.analysis.contracts import returns_estimate
from repro.core.frequency import AttributeDistribution
from repro.core.histogram import Histogram

#: Comparison operators supported by range joins.
RANGE_OPERATORS = ("<", "<=", ">", ">=")


# ----------------------------------------------------------------------
# Exact sizes from full distributions
# ----------------------------------------------------------------------


def _ensure_distribution(value: AttributeDistribution, name: str) -> AttributeDistribution:
    """Boundary check: exact-size formulas need full frequency distributions."""
    if not isinstance(value, AttributeDistribution):
        raise TypeError(
            f"{name} must be an AttributeDistribution, got {type(value).__name__}"
        )
    return value


def not_equals_selection_size(distribution: AttributeDistribution, value: Hashable) -> float:
    """Exact size of ``σ_{a ≠ c}(R)``: ``T − f(c)``."""
    _ensure_distribution(distribution, "distribution")
    return distribution.total - distribution.frequency_of(value)


def not_equals_join_size(
    left: AttributeDistribution, right: AttributeDistribution
) -> float:
    """Exact size of ``R ⋈_{a≠b} S``: Cartesian product minus the equality join."""
    _ensure_distribution(left, "left")
    _ensure_distribution(right, "right")
    return left.total * right.total - left.join_size(right)


def _aligned_frequencies(
    left: AttributeDistribution, right: AttributeDistribution
) -> tuple[list, np.ndarray, np.ndarray]:
    """Union of both domains (sorted) with aligned frequency vectors."""
    values = sorted(set(left.values) | set(right.values))
    f_left = np.array([left.frequency_of(v) for v in values], dtype=np.float64)
    f_right = np.array([right.frequency_of(v) for v in values], dtype=np.float64)
    return values, f_left, f_right


def range_join_size(
    left: AttributeDistribution,
    right: AttributeDistribution,
    operator: str = "<",
) -> float:
    """Exact size of ``R ⋈_{a <op> b} S`` for a comparison operator.

    Computed with cumulative sums over the sorted union of the two value
    domains: ``Σ_u f_L(u) · Σ_{v : u <op> v} f_R(v)``.
    """
    if operator not in RANGE_OPERATORS:
        raise ValueError(f"operator must be one of {RANGE_OPERATORS}, got {operator!r}")
    _, f_left, f_right = _aligned_frequencies(left, right)
    cumulative = np.cumsum(f_right, dtype=np.float64)
    total_right = cumulative[-1]
    if operator == "<":
        # Right values strictly greater: total − cumulative up to and incl. u.
        partner_mass = total_right - cumulative
    elif operator == "<=":
        partner_mass = total_right - np.concatenate([[0.0], cumulative[:-1]])
    elif operator == ">":
        partner_mass = np.concatenate([[0.0], cumulative[:-1]])
    else:  # ">="
        partner_mass = cumulative
    return float(np.dot(f_left, partner_mass))


# ----------------------------------------------------------------------
# Histogram estimates
# ----------------------------------------------------------------------

def _approx_distribution(histogram: Histogram) -> AttributeDistribution:
    if histogram.values is None:
        raise ValueError(
            "inequality estimation requires value-aware histograms"
        )
    return histogram.approximate_distribution()


@returns_estimate
def estimate_not_equals_join(left: Histogram, right: Histogram) -> float:
    """Estimate a ``≠`` join: approximate product minus approximate equality join.

    Because bucket averaging preserves totals, the ``≠``-join estimation
    error equals the negated equality-join error — serial histograms are
    therefore exactly as (v-)optimal here (Section 6).
    """
    left_dist = _approx_distribution(left)
    right_dist = _approx_distribution(right)
    return not_equals_join_size(left_dist, right_dist)


@returns_estimate
def estimate_range_join(
    left: Histogram, right: Histogram, operator: str = "<"
) -> float:
    """Estimate a comparison join from two value-aware histograms."""
    left_dist = _approx_distribution(left)
    right_dist = _approx_distribution(right)
    return range_join_size(left_dist, right_dist, operator)


def estimate_band_join(
    left: Histogram, right: Histogram, low: float, high: float, *, include_bounds: bool = True
) -> float:
    """Estimate a band join ``low <= b − a <= high`` over numeric domains.

    A small extension beyond the paper: per-value products restricted to a
    difference band, computed from the approximate distributions.  With
    ``low = high = 0`` this degenerates to the equality join.
    """
    if low > high:
        raise ValueError(f"band bounds reversed: low={low} > high={high}")
    left_dist = _approx_distribution(left)
    right_dist = _approx_distribution(right)
    total = 0.0
    right_values = np.array(right_dist.values, dtype=float)
    right_freqs = right_dist.frequencies
    for value, freq in zip(left_dist.values, left_dist.frequencies):
        deltas = right_values - float(value)
        if include_bounds:
            mask = (deltas >= low) & (deltas <= high)
        else:
            mask = (deltas > low) & (deltas < high)
        total += float(freq) * float(right_freqs[mask].sum())
    return total


def not_equals_estimation_error(  # repolint: boundary-exempt — a signed error; inputs validated by callees
    left: AttributeDistribution,
    right: AttributeDistribution,
    left_histogram: Histogram,
    right_histogram: Histogram,
) -> float:
    """``S_≠ − S'_≠`` for a concrete pair of distributions.

    Equal to ``−(S_= − S'_=)`` whenever the histograms preserve totals —
    the formal content of the Section 6 complement argument.
    """
    exact = not_equals_join_size(left, right)
    estimate = estimate_not_equals_join(left_histogram, right_histogram)
    return exact - estimate
