"""Buckets: the building block of every histogram (Section 2.3).

A bucket groups a subset of the (value, frequency) pairs of a distribution;
the histogram approximates every frequency in the bucket by the bucket
average.  Buckets carry the three statistics the paper's Proposition 3.1
formulas need: the frequency sum ``T_i``, the count ``p_i`` and the
population variance ``v_i``.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.contracts import maybe_check_bucket


class Bucket:
    """An immutable group of frequencies, optionally with their values.

    ``values`` is ``None`` when the histogram was built from a bare frequency
    set (the value-oblivious v-optimality setting); value-aware histograms
    (equi-width, equi-depth, catalog histograms) attach the domain values.
    """

    __slots__ = ("_frequencies", "_values")

    def __init__(
        self,
        frequencies: Sequence[float],
        values: Optional[Sequence[Hashable]] = None,
    ):
        arr = np.array(frequencies, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("a bucket needs a non-empty 1-D frequency list")
        if np.any(~np.isfinite(arr)) or np.any(arr < 0):
            raise ValueError("bucket frequencies must be finite and non-negative")
        arr.setflags(write=False)
        self._frequencies = arr
        if values is not None:
            values = tuple(values)
            if len(values) != arr.size:
                raise ValueError(
                    f"bucket values and frequencies must align, got {len(values)} "
                    f"values and {arr.size} frequencies"
                )
        self._values = values
        maybe_check_bucket(self)

    @property
    def frequencies(self) -> np.ndarray:
        """The frequencies grouped in this bucket (read-only view)."""
        return self._frequencies

    @property
    def values(self) -> Optional[tuple]:
        """The attribute values in the bucket, if known."""
        return self._values

    @property
    def count(self) -> int:
        """``p_i``: number of frequencies in the bucket."""
        return int(self._frequencies.size)

    @property
    def total(self) -> float:
        """``T_i``: sum of the frequencies in the bucket."""
        return float(self._frequencies.sum())

    @property
    def average(self) -> float:
        """The uniform approximation used for every frequency in the bucket."""
        return self.total / self.count

    @property
    def variance(self) -> float:
        """``v_i``: population variance of the frequencies."""
        return float(self._frequencies.var())

    @property
    def sse(self) -> float:
        """``p_i · v_i``: the bucket's contribution to the self-join error."""
        return self.count * self.variance

    def is_univalued(self) -> bool:
        """True when all frequencies in the bucket are equal (Section 2.3)."""
        return bool(np.all(self._frequencies == self._frequencies[0]))

    @property
    def min_frequency(self) -> float:
        return float(self._frequencies.min())

    @property
    def max_frequency(self) -> float:
        return float(self._frequencies.max())

    def rounded_average(self) -> float:
        """The paper's integer approximation: nearest integer to the average."""
        return float(np.rint(self.average))

    def __len__(self) -> int:
        return self.count

    def __eq__(self, other) -> bool:
        if not isinstance(other, Bucket):
            return NotImplemented
        return (
            self._frequencies.shape == other._frequencies.shape
            and bool(np.allclose(np.sort(self._frequencies), np.sort(other._frequencies)))
            and self._values == other._values
        )

    def __repr__(self) -> str:
        return (
            f"Bucket(count={self.count}, total={self.total:g}, "
            f"avg={self.average:.4g}, var={self.variance:.4g})"
        )


def buckets_interleave(first: Bucket, second: Bucket) -> bool:
    """Return True when two buckets' frequency ranges interleave.

    A histogram is *serial* exactly when no pair of its buckets interleaves
    (Definition 2.1): for every pair, all frequencies of one bucket must be
    <= all frequencies of the other.
    """
    if not isinstance(first, Bucket) or not isinstance(second, Bucket):
        raise TypeError("buckets_interleave expects two Bucket instances")
    return not (
        first.max_frequency <= second.min_frequency
        or second.max_frequency <= first.min_frequency
    )


def partition_sizes(buckets: Sequence[Bucket]) -> Tuple[int, ...]:
    """Return the tuple of bucket counts ``(p_1, ..., p_β)``."""
    if any(not isinstance(b, Bucket) for b in buckets):
        raise TypeError("partition_sizes expects a sequence of Bucket instances")
    return tuple(b.count for b in buckets)
