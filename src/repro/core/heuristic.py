"""Baseline histograms: trivial, equi-width, equi-depth (Section 5 baselines).

Equi-width and equi-depth histograms bucket over the *natural order of the
attribute values* — the traditional approach the paper shows can be far from
optimal, because value order and frequency order are generally unrelated.
They therefore require an :class:`AttributeDistribution` (values attached);
the trivial histogram accepts a bare frequency set as well.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.core.frequency import AttributeDistribution, FrequencySet, as_frequency_array
from repro.core.histogram import Histogram
from repro.util.validation import ensure_positive_int


def trivial_histogram(
    source: Union[AttributeDistribution, FrequencySet, "np.ndarray", list]
) -> Histogram:
    """Build the single-bucket histogram (uniform-distribution assumption)."""
    if isinstance(source, AttributeDistribution):
        return Histogram.single_bucket(source.frequencies, values=source.values)
    return Histogram.single_bucket(as_frequency_array(source))


def _contiguous_value_groups(boundaries: list[int]) -> list[tuple[int, ...]]:
    groups = []
    for start, stop in zip(boundaries[:-1], boundaries[1:]):
        groups.append(tuple(range(start, stop)))
    return groups


def equi_width_histogram(distribution: AttributeDistribution, buckets: int) -> Histogram:
    """Build an equi-width histogram: equal *number of values* per bucket.

    Buckets are contiguous ranges in the natural (sorted) value order, each
    holding ``M/β`` values (earlier buckets take the remainder).  This is the
    classical equi-width histogram of Piatetsky-Shapiro & Connell, the
    weakest informative baseline in the paper's experiments.
    """
    buckets = ensure_positive_int(buckets, "buckets")
    size = distribution.domain_size
    if buckets > size:
        raise ValueError(
            f"cannot build {buckets} equi-width buckets over {size} values"
        )
    base, extra = divmod(size, buckets)
    boundaries = [0]
    for i in range(buckets):
        boundaries.append(boundaries[-1] + base + (1 if i < extra else 0))
    return Histogram(
        distribution.frequencies,
        _contiguous_value_groups(boundaries),
        kind="equi-width",
        values=distribution.values,
    )


def equi_depth_histogram(distribution: AttributeDistribution, buckets: int) -> Histogram:
    """Build an equi-depth (equi-height) histogram: equal *tuple mass* per bucket.

    Bucket boundaries are placed at the ``k·T/β`` quantiles of the cumulative
    frequency over the natural value order, with each boundary advanced far
    enough to keep every bucket non-empty.  The construction always returns
    at most β buckets and exactly β when ``β <= M``.
    """
    buckets = ensure_positive_int(buckets, "buckets")
    size = distribution.domain_size
    if buckets > size:
        raise ValueError(
            f"cannot build {buckets} equi-depth buckets over {size} values"
        )
    freqs = distribution.frequencies
    total = float(freqs.sum())
    cumulative = np.cumsum(freqs, dtype=np.float64)
    boundaries = [0]
    for k in range(1, buckets):
        target = total * k / buckets
        # First value index whose cumulative mass reaches the target...
        cut = int(np.searchsorted(cumulative, target, side="left")) + 1
        # ...but never behind the previous boundary, and always leaving
        # enough values for the remaining buckets.
        cut = max(cut, boundaries[-1] + 1)
        cut = min(cut, size - (buckets - k))
        boundaries.append(cut)
    boundaries.append(size)
    return Histogram(
        freqs,
        _contiguous_value_groups(boundaries),
        kind="equi-depth",
        values=distribution.values,
    )
