"""Frequency matrices and chain-query result sizes (Theorem 2.1).

For the chain query ``Q := (R0.a1 = R1.a1 and ... and R(N-1).aN = RN.aN)``
the frequency matrix of relation ``R_j`` is the ``(M_j x M_{j+1})`` matrix of
pair frequencies over attributes ``(a_j, a_{j+1})``, with ``M_0 = M_{N+1} =
1`` so the end relations carry a horizontal and a vertical vector.  The
query's exact result size is the (scalar) product of the chain of matrices.

Selections enter as singleton relations: an equality selection ``R.a = c``
is a join with a one-tuple relation, and a disjunctive selection
``R.a ∈ {c1..ck}`` is a join with a relation holding one tuple per constant
— :func:`selection_vector` builds exactly those 0/1 end vectors (the paper's
Example 2.2 transpose-vector trick).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence, Union

import numpy as np

from repro.core.frequency import FrequencyLike, FrequencySet, as_frequency_array
from repro.util.rng import RandomSource, derive_rng


class FrequencyMatrix:
    """A two-dimensional frequency matrix with optional domain labels.

    ``row_values`` / ``col_values`` are the attribute domains of the two
    dimensions.  End-of-chain relations use shape ``(1, M)`` or ``(M, 1)``
    with the degenerate dimension unlabelled.
    """

    __slots__ = ("_array", "_row_values", "_col_values")

    def __init__(
        self,
        array: FrequencyLike,
        row_values: Optional[Sequence[Hashable]] = None,
        col_values: Optional[Sequence[Hashable]] = None,
    ):
        arr = np.array(array, dtype=float)
        if arr.ndim == 1:
            raise ValueError(
                "frequency matrices are two-dimensional; use row_vector() or "
                "column_vector() to build end-of-chain vectors"
            )
        if arr.ndim != 2:
            raise ValueError(f"array must be two-dimensional, got shape {arr.shape}")
        if arr.size == 0:
            raise ValueError("frequency matrix must be non-empty")
        if np.any(~np.isfinite(arr)) or np.any(arr < 0):
            raise ValueError("frequency matrix entries must be finite and non-negative")
        self._array = arr
        self._array.setflags(write=False)
        self._row_values = self._check_labels(row_values, arr.shape[0], "row_values")
        self._col_values = self._check_labels(col_values, arr.shape[1], "col_values")

    @staticmethod
    def _check_labels(labels, expected: int, name: str) -> Optional[tuple]:
        if labels is None:
            return None
        labels = tuple(labels)
        if len(labels) != expected:
            raise ValueError(f"{name} has {len(labels)} entries, expected {expected}")
        if len(set(labels)) != len(labels):
            raise ValueError(f"{name} must be distinct")
        return labels

    @classmethod
    def row_vector(
        cls, frequencies: FrequencyLike, values: Optional[Sequence[Hashable]] = None
    ) -> "FrequencyMatrix":
        """Build the ``(1 x M)`` matrix of the first chain relation ``R_0``."""
        arr = as_frequency_array(frequencies)
        return cls(arr.reshape(1, -1), row_values=None, col_values=values)

    @classmethod
    def column_vector(
        cls, frequencies: FrequencyLike, values: Optional[Sequence[Hashable]] = None
    ) -> "FrequencyMatrix":
        """Build the ``(M x 1)`` matrix of the last chain relation ``R_N``."""
        arr = as_frequency_array(frequencies)
        return cls(arr.reshape(-1, 1), row_values=values, col_values=None)

    @classmethod
    def from_joint_counts(
        cls, pairs: Iterable[tuple[Hashable, Hashable]]
    ) -> "FrequencyMatrix":
        """Count ``(a, b)`` value pairs of a two-attribute column pair.

        This is the two-dimensional ``Matrix`` statistics step: a single scan
        with a hash table, then a dense matrix over the observed domains.
        """
        counts: dict[tuple[Hashable, Hashable], int] = {}
        for pair in pairs:
            counts[pair] = counts.get(pair, 0) + 1
        if not counts:
            raise ValueError("pairs must be non-empty")
        rows = sorted({a for a, _ in counts})
        cols = sorted({b for _, b in counts})
        row_index = {v: i for i, v in enumerate(rows)}
        col_index = {v: i for i, v in enumerate(cols)}
        arr = np.zeros((len(rows), len(cols)), dtype=np.float64)
        for (a, b), count in counts.items():
            arr[row_index[a], col_index[b]] = count
        return cls(arr, row_values=rows, col_values=cols)

    @property
    def array(self) -> np.ndarray:
        """The underlying matrix (read-only view)."""
        return self._array

    @property
    def shape(self) -> tuple[int, int]:
        return self._array.shape

    @property
    def row_values(self) -> Optional[tuple]:
        return self._row_values

    @property
    def col_values(self) -> Optional[tuple]:
        return self._col_values

    @property
    def total(self) -> float:
        """Sum of all entries — the relation size ``T``."""
        return float(self._array.sum())

    def frequency_set(self) -> FrequencySet:
        """The multiset of all cell frequencies (Section 2.2's frequency set)."""
        return FrequencySet(self._array.ravel())

    def transpose(self) -> "FrequencyMatrix":
        """Return the transposed matrix with labels swapped."""
        return FrequencyMatrix(
            self._array.T, row_values=self._col_values, col_values=self._row_values
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, FrequencyMatrix):
            return NotImplemented
        return (
            self._array.shape == other._array.shape
            and bool(np.allclose(self._array, other._array))
            and self._row_values == other._row_values
            and self._col_values == other._col_values
        )

    def __repr__(self) -> str:
        return f"FrequencyMatrix(shape={self.shape}, total={self.total:g})"


MatrixLike = Union[FrequencyMatrix, np.ndarray, Sequence[Sequence[float]]]


def _as_array(matrix: MatrixLike) -> np.ndarray:
    if isinstance(matrix, FrequencyMatrix):
        return matrix.array
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"chain matrices must be two-dimensional, got shape {arr.shape}")
    return arr


def chain_result_size(matrices: Sequence[MatrixLike]) -> float:
    """Exact result size of a chain query — Theorem 2.1.

    *matrices* are the frequency matrices ``F_0 .. F_N`` of the query's
    relations in chain order: the first must have one row, the last one
    column, and adjacent dimensions must agree (they share a join domain).
    """
    if len(matrices) < 1:
        raise ValueError("a chain query needs at least one relation")
    arrays = [_as_array(m) for m in matrices]
    if arrays[0].shape[0] != 1:
        raise ValueError(
            f"first chain matrix must have a single row, got shape {arrays[0].shape}"
        )
    if arrays[-1].shape[1] != 1:
        raise ValueError(
            f"last chain matrix must have a single column, got shape {arrays[-1].shape}"
        )
    product = arrays[0]
    for position, arr in enumerate(arrays[1:], start=1):
        if product.shape[1] != arr.shape[0]:
            raise ValueError(
                f"join-domain mismatch between relations {position - 1} and "
                f"{position}: {product.shape[1]} vs {arr.shape[0]} values"
            )
        product = product @ arr
    return float(product[0, 0])


def arrange_frequency_set(
    frequencies: FrequencyLike,
    shape: tuple[int, int],
    rng: RandomSource = None,
) -> FrequencyMatrix:
    """Randomly arrange a frequency multiset into a matrix of *shape*.

    Implements one uniformly random *arrangement* of a frequency set over
    the cross product of the join domains — the sampling unit of the
    Section 5.2 experiments and of the expectation in Definition 3.2.
    """
    arr = as_frequency_array(frequencies)
    rows, cols = shape
    if rows * cols != arr.size:
        raise ValueError(
            f"cannot arrange {arr.size} frequencies into a {rows}x{cols} matrix"
        )
    gen = derive_rng(rng)
    permuted = gen.permutation(arr)
    return FrequencyMatrix(permuted.reshape(rows, cols))


def selection_vector(
    domain: Sequence[Hashable], selected: Iterable[Hashable], *, column: bool = True
) -> FrequencyMatrix:
    """Build the 0/1 end vector encoding an equality/disjunctive selection.

    ``selection_vector(domain, {c1, c2})`` is the frequency matrix of the
    virtual relation with one tuple per selected constant, so appending it to
    a chain turns the last join into the selection ``a ∈ {c1, c2}``
    (Section 2.2 / Example 2.2).
    """
    domain = list(domain)
    selected = set(selected)
    unknown = selected - set(domain)
    if unknown:
        raise ValueError(f"selected values not in domain: {sorted(unknown, key=repr)}")
    indicator = np.array([1.0 if v in selected else 0.0 for v in domain], dtype=np.float64)
    if column:
        return FrequencyMatrix.column_vector(indicator, values=domain)
    return FrequencyMatrix.row_vector(indicator, values=domain)
