"""The histogram abstraction (Sections 2.3-2.4).

A :class:`Histogram` is a partition of a reference frequency vector into
buckets, each approximated by its average.  The class is deliberately
partition-based rather than boundary-based because the paper's histograms may
place *any* subset of domain values in a bucket — serial histograms group by
frequency proximity, not by value ranges.

Classification predicates implement the paper's taxonomy:

* **trivial** — one bucket (the uniform-distribution assumption);
* **serial** — no two buckets' frequency ranges interleave (Definition 2.1);
* **biased** — β−1 univalued buckets plus one multivalued bucket
  (Definition 2.2);
* **end-biased** — biased, with the univalued buckets holding the highest
  and lowest frequencies.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Iterable, Optional, Sequence

import numpy as np

from repro.analysis.contracts import maybe_check_histogram
from repro.core.buckets import Bucket, buckets_interleave
from repro.core.frequency import (
    AttributeDistribution,
    FrequencyLike,
    FrequencySet,
    as_frequency_array,
)


class Histogram:
    """A partition of a frequency vector into buckets.

    Parameters
    ----------
    frequencies:
        The reference frequency vector (any order).  When *values* is given
        it must align with this vector.
    index_groups:
        A partition of ``range(len(frequencies))``; each group becomes one
        bucket.
    kind:
        A label recording which construction produced the histogram
        (``"trivial"``, ``"equi-width"``, ``"equi-depth"``, ``"serial"``,
        ``"end-biased"``, ``"biased"``, or ``"custom"``).
    values:
        Optional domain values aligned with *frequencies*, enabling
        value-aware estimation.
    """

    __slots__ = ("_frequencies", "_groups", "_buckets", "_values", "kind", "_compiled")

    def __init__(
        self,
        frequencies: FrequencyLike,
        index_groups: Sequence[Sequence[int]],
        kind: str = "custom",
        values: Optional[Sequence[Hashable]] = None,
    ):
        freqs = as_frequency_array(frequencies)
        groups = tuple(tuple(int(i) for i in group) for group in index_groups)
        if not groups:
            raise ValueError("a histogram needs at least one bucket")
        flat = [i for group in groups for i in group]
        if sorted(flat) != list(range(freqs.size)):
            raise ValueError(
                "index_groups must partition the frequency indices exactly"
            )
        if any(len(group) == 0 for group in groups):
            raise ValueError("buckets must be non-empty")
        if values is not None:
            values = tuple(values)
            if len(values) != freqs.size:
                raise ValueError(
                    f"values and frequencies must align, got {len(values)} values "
                    f"and {freqs.size} frequencies"
                )
        freqs.setflags(write=False)
        self._frequencies = freqs
        self._groups = groups
        self._values = values
        self.kind = kind
        # Lazily-populated serving-layer lookup table; see repro.serve.tables.
        self._compiled = None
        self._buckets = tuple(
            Bucket(
                freqs[list(group)],
                values=None if values is None else tuple(values[i] for i in group),
            )
            for group in groups
        )
        maybe_check_histogram(self)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_sorted_sizes(
        cls,
        frequencies: FrequencyLike,
        sizes: Sequence[int],
        kind: str = "serial",
        values: Optional[Sequence[Hashable]] = None,
    ) -> "Histogram":
        """Build a serial histogram from bucket sizes over descending order.

        ``sizes = (p_1, ..., p_β)`` carves the frequencies, sorted in
        descending order, into contiguous runs — exactly the serial
        histograms enumerated by the paper's V-OptHist.  The reference order
        of *frequencies* (and *values*) is preserved; only the grouping
        follows sorted order.
        """
        freqs = as_frequency_array(frequencies)
        sizes = tuple(int(s) for s in sizes)
        if any(s <= 0 for s in sizes):
            raise ValueError(f"bucket sizes must be positive, got {sizes}")
        if sum(sizes) != freqs.size:
            raise ValueError(
                f"bucket sizes {sizes} must sum to the number of frequencies "
                f"({freqs.size})"
            )
        order = np.argsort(-freqs, kind="stable")
        groups = []
        start = 0
        for size in sizes:
            groups.append(tuple(int(i) for i in order[start : start + size]))
            start += size
        return cls(freqs, groups, kind=kind, values=values)

    @classmethod
    def single_bucket(
        cls, frequencies: FrequencyLike, values: Optional[Sequence[Hashable]] = None
    ) -> "Histogram":
        """Build the trivial histogram (uniform-distribution assumption)."""
        freqs = as_frequency_array(frequencies)
        return cls(freqs, [tuple(range(freqs.size))], kind="trivial", values=values)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def buckets(self) -> tuple[Bucket, ...]:
        return self._buckets

    @property
    def bucket_count(self) -> int:
        """β: the number of buckets."""
        return len(self._buckets)

    @property
    def frequencies(self) -> np.ndarray:
        """The reference frequency vector (read-only view)."""
        return self._frequencies

    @property
    def values(self) -> Optional[tuple]:
        return self._values

    @property
    def index_groups(self) -> tuple[tuple[int, ...], ...]:
        return self._groups

    def frequency_set(self) -> FrequencySet:
        """The frequency multiset the histogram was built from."""
        return FrequencySet(self._frequencies)

    # ------------------------------------------------------------------
    # Classification (paper taxonomy)
    # ------------------------------------------------------------------

    def is_trivial(self) -> bool:
        return self.bucket_count == 1

    def is_serial(self) -> bool:
        """Definition 2.1: no pair of buckets interleaves in frequency."""
        return not any(
            buckets_interleave(a, b) for a, b in combinations(self._buckets, 2)
        )

    def is_biased(self) -> bool:
        """Definition 2.2: at most one bucket is multivalued."""
        multivalued = sum(1 for b in self._buckets if not b.is_univalued())
        return multivalued <= 1

    def is_end_biased(self) -> bool:
        """Definition 2.2: biased, univalued buckets at the frequency extremes.

        Every univalued bucket must sit entirely at or above the multivalued
        bucket's maximum, or entirely at or below its minimum.  Degenerate
        histograms whose buckets are all univalued count as end-biased (the
        largest bucket plays the multivalued role).
        """
        if not self.is_biased():
            return False
        multivalued = [b for b in self._buckets if not b.is_univalued()]
        if not multivalued:
            # All buckets exact; designate the widest as the "multivalued" one.
            anchor = max(self._buckets, key=lambda b: b.count)
        else:
            anchor = multivalued[0]
        for bucket in self._buckets:
            if bucket is anchor:
                continue
            level = bucket.max_frequency  # univalued: all entries equal
            if not (level >= anchor.max_frequency or level <= anchor.min_frequency):
                return False
        return True

    # ------------------------------------------------------------------
    # Approximation
    # ------------------------------------------------------------------

    def approximate_frequencies(self, *, rounded: bool = False) -> np.ndarray:
        """Return the approximate frequency vector aligned with the reference.

        Every frequency is replaced by its bucket average (or the nearest
        integer to it when *rounded*, matching the paper's definition for
        integer-valued databases).
        """
        out = np.empty_like(self._frequencies)
        for bucket, group in zip(self._buckets, self._groups):
            approx = bucket.rounded_average() if rounded else bucket.average
            out[list(group)] = approx
        return out

    def approximate_distribution(self, *, rounded: bool = False) -> AttributeDistribution:
        """Return the histogram matrix as a value->approximation mapping."""
        if self._values is None:
            raise ValueError(
                "histogram was built from a bare frequency set; no values to map"
            )
        return AttributeDistribution(
            self._values, self.approximate_frequencies(rounded=rounded)
        )

    def approx_of_value(self, value: Hashable) -> float:
        """Approximate frequency the optimizer would use for *value*.

        Only available for value-aware histograms; unknown values estimate
        to 0 (they are outside the recorded domain).
        """
        if self._values is None:
            raise ValueError(
                "histogram was built from a bare frequency set; no values to map"
            )
        for bucket in self._buckets:
            if value in bucket.values:
                return bucket.average
        return 0.0

    def _approx_descending(self, *, rounded: bool = False) -> np.ndarray:
        """Approximations aligned with the descending-sorted reference."""
        order = np.argsort(-self._frequencies, kind="stable")
        return self.approximate_frequencies(rounded=rounded)[order]

    def approximate_array(self, array: FrequencyLike, *, rounded: bool = False) -> np.ndarray:
        """Apply the histogram to any arrangement of its frequency multiset.

        *array* may have any shape; its entries must form the same multiset
        as the histogram's reference vector.  Entries are matched to buckets
        by rank (descending), which is well defined for serial histograms and
        an arbitrary-but-deterministic tie-break otherwise.  The result has
        the shape of *array* with every entry replaced by its bucket average.
        """
        arr = np.asarray(array, dtype=float)
        flat = arr.ravel()
        if flat.size != self._frequencies.size or not np.allclose(
            np.sort(flat), np.sort(self._frequencies)
        ):
            raise ValueError(
                "array entries do not match the histogram's frequency multiset"
            )
        approx_desc = self._approx_descending(rounded=rounded)
        order = np.argsort(-flat, kind="stable")
        out = np.empty_like(flat)
        out[order] = approx_desc
        return out.reshape(arr.shape)

    # ------------------------------------------------------------------
    # Proposition 3.1: self-join size and error formulas
    # ------------------------------------------------------------------

    def self_join_estimate(self) -> float:
        """Approximate self-join size: ``S' = Σ_i T_i² / p_i`` (formula (2))."""
        return float(sum(b.total**2 / b.count for b in self._buckets))

    def self_join_error(self) -> float:
        """Self-join error: ``S − S' = Σ_i p_i·v_i`` (formula (3)).

        Non-negative for every histogram of the relation being self-joined,
        and zero exactly when every bucket is univalued.
        """
        return float(sum(b.sse for b in self._buckets))

    # ------------------------------------------------------------------

    def storage_entries(self) -> int:
        """Rough catalog footprint: explicit (value, frequency) slots needed.

        Univalued and singleton buckets store their values explicitly; the
        single largest bucket can be stored implicitly ("not found => use
        this average"), the space trick of Section 4.1.
        """
        if not self._buckets:
            return 0
        largest = max(self._buckets, key=lambda b: b.count)
        return sum(b.count for b in self._buckets if b is not largest) + 1

    def __eq__(self, other) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        if self._frequencies.shape != other._frequencies.shape:
            return False
        if not np.allclose(self._frequencies, other._frequencies):
            return False
        mine = sorted(sorted(g) for g in self._groups)
        theirs = sorted(sorted(g) for g in other._groups)
        return mine == theirs and self._values == other._values

    def __repr__(self) -> str:
        return (
            f"Histogram(kind={self.kind!r}, buckets={self.bucket_count}, "
            f"M={self._frequencies.size}, error={self.self_join_error():.4g})"
        )
