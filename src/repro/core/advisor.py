"""Bucket-count advisor (an application of Proposition 3.1, Section 3.1).

"By applying the error formula to histograms of various numbers of buckets,
administrators can determine the minimum number of buckets required for
tolerable errors."  This module turns that remark into an API: compute the
optimal error per bucket count for a histogram class and search for the
smallest count meeting a tolerance.

Because the *optimal* error of both the serial and the end-biased class is
non-increasing in β (splitting a bucket never increases total SSE; removing
an extreme value never increases the middle bucket's SSE), the search is a
binary search over β.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.biased import v_opt_bias_hist
from repro.core.frequency import FrequencyLike, as_frequency_array
from repro.core.serial import v_optimal_serial_histogram
from repro.util.validation import ensure_non_negative, ensure_positive_int

#: Histogram classes the advisor can reason about.
ADVISABLE_KINDS = ("serial", "end-biased")


def optimal_error_for_buckets(frequencies: FrequencyLike, buckets: int, kind: str = "end-biased") -> float:
    """Optimal self-join error (formula (3)) achievable with *buckets* buckets.

    ``kind`` selects the class: ``"serial"`` uses the v-optimal serial
    histogram (dynamic program for large inputs), ``"end-biased"`` the
    v-optimal end-biased histogram.
    """
    if kind == "serial":
        return v_optimal_serial_histogram(frequencies, buckets, method="auto").self_join_error()
    if kind == "end-biased":
        return v_opt_bias_hist(frequencies, buckets).self_join_error()
    raise ValueError(f"unknown histogram kind {kind!r}; expected one of {ADVISABLE_KINDS}")


def minimum_buckets(
    frequencies: FrequencyLike,
    tolerance: float,
    kind: str = "end-biased",
    *,
    relative: bool = True,
    max_buckets: Optional[int] = None,
) -> int:
    """Smallest bucket count whose optimal error is within *tolerance*.

    With *relative* (the default) the tolerance is a fraction of the exact
    self-join size; otherwise it is an absolute error bound.  Raises
    ``ValueError`` when even *max_buckets* buckets (default: one per
    frequency, i.e. a perfect histogram) cannot meet the tolerance — which
    can only happen for absolute tolerances below zero error.
    """
    freqs = as_frequency_array(frequencies)
    tolerance = ensure_non_negative(tolerance, "tolerance")
    limit = freqs.size if max_buckets is None else ensure_positive_int(max_buckets, "max_buckets")
    limit = min(limit, freqs.size)
    bound = tolerance * float(np.dot(freqs, freqs)) if relative else tolerance

    if optimal_error_for_buckets(freqs, limit, kind) > bound:
        raise ValueError(
            f"even {limit} buckets cannot reach the requested tolerance"
        )
    low, high = 1, limit
    while low < high:
        mid = (low + high) // 2
        if optimal_error_for_buckets(freqs, mid, kind) <= bound:
            high = mid
        else:
            low = mid + 1
    return low


def allocate_bucket_budget(
    frequency_sets: Sequence,
    budget: int,
    kind: str = "end-biased",
    *,
    weights: Optional[Sequence[float]] = None,
) -> list[int]:
    """Split a global bucket *budget* across attributes to minimise total error.

    A catalog has finite space; giving every attribute the same β wastes it
    on near-uniform columns.  Because the optimal-error curve need not have
    monotone marginal gains (end-biased errors can plunge to zero at a
    specific β), a greedy allocator can be arbitrarily suboptimal, so this
    uses an exact dynamic program over the budget: ``best[j][t]`` is the
    minimum total (optionally *weights*-scaled) error of the first *j*
    attributes using *t* buckets, with every attribute getting at least one.

    Returns the per-attribute bucket counts, summing to at most *budget*
    (extra budget beyond one-bucket-per-distinct-value is left unused).
    """
    budget = ensure_positive_int(budget, "budget")
    sets = [as_frequency_array(fs) for fs in frequency_sets]
    count = len(sets)
    if count == 0:
        return []
    if budget < count:
        raise ValueError(
            f"budget {budget} cannot give each of {count} attributes a bucket"
        )
    if weights is None:
        weights = [1.0] * count
    weights = [ensure_non_negative(w, "weight") for w in weights]
    if len(weights) != count:
        raise ValueError("weights must align with frequency_sets")

    caps = [min(s.size, budget) for s in sets]
    effective_budget = min(budget, sum(caps))
    error_table = [
        [
            weights[i] * optimal_error_for_buckets(sets[i], beta, kind)
            for beta in range(1, caps[i] + 1)
        ]
        for i in range(count)
    ]

    infinity = float("inf")
    # best[t] after processing j attributes; choice[j][t] = buckets given to j.
    best = [infinity] * (effective_budget + 1)
    best[0] = 0.0
    choice = [[0] * (effective_budget + 1) for _ in range(count)]
    for j in range(count):
        remaining_after = count - j - 1  # attributes still needing >=1 bucket
        new_best = [infinity] * (effective_budget + 1)
        for t in range(j + 1, effective_budget - remaining_after + 1):
            for beta in range(1, min(caps[j], t - j) + 1):
                prior = best[t - beta]
                if prior == infinity:
                    continue
                candidate = prior + error_table[j][beta - 1]
                if candidate < new_best[t]:
                    new_best[t] = candidate
                    choice[j][t] = beta
        best = new_best

    # Best achievable total within the budget.
    usable = range(count, effective_budget + 1)
    total = min(usable, key=lambda t: (best[t], t))
    allocation = [0] * count
    t = total
    for j in range(count - 1, -1, -1):
        allocation[j] = choice[j][t]
        t -= allocation[j]
    return allocation


@dataclass(frozen=True)
class AdvisoryRow:
    """One row of an advisory report: the error profile at a bucket count."""

    buckets: int
    error: float
    relative_error: float

    def __str__(self) -> str:
        return (
            f"beta={self.buckets:>4d}  error={self.error:>14.2f}  "
            f"relative={self.relative_error:>8.4%}"
        )


def advisory_report(
    frequencies: FrequencyLike,
    bucket_counts: Sequence[int],
    kind: str = "end-biased",
) -> list[AdvisoryRow]:
    """Error profile over *bucket_counts* — the table shown to administrators.

    Near-uniform distributions report near-zero error at every β, signalling
    that "one or two buckets will suffice" (the paper's example).
    """
    freqs = as_frequency_array(frequencies)
    exact = float(np.dot(freqs, freqs))
    rows = []
    for beta in bucket_counts:
        beta = ensure_positive_int(beta, "bucket count")
        error = optimal_error_for_buckets(freqs, beta, kind)
        rows.append(AdvisoryRow(beta, error, error / exact if exact else 0.0))
    return rows
