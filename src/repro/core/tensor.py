"""Frequency tensors for arbitrary tree queries.

Section 2.2 develops the chain-query case and notes that "generalizing the
results ... to arbitrary tree queries is straightforward.  The required
mathematical machinery becomes hairier (tensors must be used) but its
essence remains unchanged."  This module supplies that machinery:

* a relation participating in ``d`` joins of a tree query carries a
  ``d``-dimensional **frequency tensor** — the joint frequency of each
  combination of its join-attribute values;
* the exact query result size is the **contraction** of all relation
  tensors over the shared join-attribute axes (the tree generalisation of
  Theorem 2.1's matrix product), evaluated with :func:`numpy.einsum`;
* histograms apply to tensors exactly as to matrices: bucket the flattened
  frequency multiset and replace each cell by its bucket average.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.frequency import FrequencyLike, FrequencySet, as_frequency_array
from repro.util.rng import RandomSource, derive_rng

#: numpy.einsum supports up to 52 distinct subscripts; plenty for tests.
_MAX_EDGES = 52


class FrequencyTensor:
    """An N-dimensional frequency tensor over a relation's join attributes.

    ``axes`` names the join attribute (edge) each dimension ranges over, so
    contraction can align shared axes between relations.
    """

    __slots__ = ("_array", "_axes")

    def __init__(self, array: FrequencyLike, axes: Sequence[int]):
        arr = np.array(array, dtype=float)
        if arr.ndim == 0:
            raise ValueError("a frequency tensor needs at least one dimension")
        if arr.size == 0:
            raise ValueError("frequency tensor must be non-empty")
        if np.any(~np.isfinite(arr)) or np.any(arr < 0):
            raise ValueError("frequency tensor entries must be finite and non-negative")
        axes = tuple(int(a) for a in axes)
        if len(axes) != arr.ndim:
            raise ValueError(
                f"tensor has {arr.ndim} dimensions but {len(axes)} axis labels"
            )
        if len(set(axes)) != len(axes):
            raise ValueError("axis labels must be distinct within a relation")
        arr.setflags(write=False)
        self._array = arr
        self._axes = axes

    @property
    def array(self) -> np.ndarray:
        """The underlying tensor (read-only view)."""
        return self._array

    @property
    def axes(self) -> tuple[int, ...]:
        """Edge identifiers labelling each dimension."""
        return self._axes

    @property
    def shape(self) -> tuple[int, ...]:
        return self._array.shape

    @property
    def total(self) -> float:
        """Sum of all entries — the relation size ``T``."""
        return float(self._array.sum())

    def frequency_set(self) -> FrequencySet:
        """The multiset of cell frequencies."""
        return FrequencySet(self._array.ravel())

    def __eq__(self, other) -> bool:
        if not isinstance(other, FrequencyTensor):
            return NotImplemented
        return (
            self._axes == other._axes
            and self._array.shape == other._array.shape
            and bool(np.allclose(self._array, other._array))
        )

    def __repr__(self) -> str:
        return f"FrequencyTensor(axes={self._axes}, shape={self.shape})"


def arrange_frequency_tensor(
    frequencies: FrequencyLike,
    shape: Sequence[int],
    axes: Sequence[int],
    rng: RandomSource = None,
) -> FrequencyTensor:
    """Randomly arrange a frequency multiset into a tensor.

    The tree-query analogue of
    :func:`repro.core.matrix.arrange_frequency_set`: one uniformly random
    arrangement of the set over the cross product of the join domains.
    """
    arr = as_frequency_array(frequencies)
    shape = tuple(int(s) for s in shape)
    cells = int(np.prod(shape, dtype=np.int64))
    if cells != arr.size:
        raise ValueError(
            f"cannot arrange {arr.size} frequencies into shape {shape} ({cells} cells)"
        )
    gen = derive_rng(rng)
    return FrequencyTensor(gen.permutation(arr).reshape(shape), axes)


def tree_result_size(tensors: Sequence[FrequencyTensor]) -> float:
    """Exact result size of a tree query: contract all tensors.

    Every axis label shared between tensors is summed over (a join
    predicate); the contraction must reduce to a scalar, which requires each
    label to appear exactly twice — the structure of a tree (or forest with
    one component) of binary equality joins.
    """
    if not tensors:
        raise ValueError("a tree query needs at least one relation")
    label_counts: dict[int, int] = {}
    label_sizes: dict[int, int] = {}
    for tensor in tensors:
        for axis, size in zip(tensor.axes, tensor.shape):
            label_counts[axis] = label_counts.get(axis, 0) + 1
            if label_sizes.setdefault(axis, size) != size:
                raise ValueError(
                    f"join domain {axis} has inconsistent sizes "
                    f"({label_sizes[axis]} vs {size})"
                )
    bad = {a: c for a, c in label_counts.items() if c != 2}
    if bad:
        raise ValueError(
            f"each join attribute must appear in exactly two relations; "
            f"violations: {bad}"
        )
    if len(label_counts) >= _MAX_EDGES:
        raise ValueError(f"too many join attributes (max {_MAX_EDGES - 1})")

    letters = {}
    alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    for index, axis in enumerate(sorted(label_counts)):
        letters[axis] = alphabet[index]
    spec = ",".join("".join(letters[a] for a in t.axes) for t in tensors)
    result = np.einsum(spec + "->", *[t.array for t in tensors])
    return float(result)
