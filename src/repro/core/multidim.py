"""Multi-dimensional histograms for multi-attribute selections.

The related work the paper builds on (Muralikrishna & DeWitt, SIGMOD 1988)
extends equi-depth histograms to multiple dimensions for multi-attribute
selection queries.  This module provides:

* :class:`GridHistogram` — a rectangular-bucket histogram over a 2-D
  frequency matrix, built by recursively splitting the highest-SSE bucket
  at its mass median (equi-depth-style splits, variance-guided bucket
  choice);
* :func:`independence_estimate` — the 1-D baseline: estimate a joint
  frequency from the two attribute marginals under the attribute-value
  independence assumption;
* serial histograms apply to matrices directly through
  :meth:`repro.core.histogram.Histogram.approximate_array`, giving the
  frequency-bucketed alternative.

The ablation bench compares the three on correlated data, where the
independence assumption collapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.matrix import FrequencyMatrix
from repro.util.validation import ensure_positive_int


@dataclass(frozen=True)
class RectBucket:
    """A rectangular bucket: half-open index ranges into the matrix."""

    row_start: int
    row_stop: int
    col_start: int
    col_stop: int
    total: float

    @property
    def cells(self) -> int:
        return (self.row_stop - self.row_start) * (self.col_stop - self.col_start)

    @property
    def average(self) -> float:
        return self.total / self.cells

    def contains(self, row: int, col: int) -> bool:
        return (
            self.row_start <= row < self.row_stop
            and self.col_start <= col < self.col_stop
        )

    def overlap_fraction(
        self, row_start: int, row_stop: int, col_start: int, col_stop: int
    ) -> float:
        """Fraction of this bucket's cells inside the query rectangle."""
        rows = max(0, min(self.row_stop, row_stop) - max(self.row_start, row_start))
        cols = max(0, min(self.col_stop, col_stop) - max(self.col_start, col_start))
        return (rows * cols) / self.cells


class GridHistogram:
    """Rectangular-bucket 2-D histogram with variance-guided splits.

    Construction repeatedly takes the bucket with the largest SSE
    (``count·variance`` — its contribution to estimation error, by the same
    Proposition 3.1 bookkeeping as 1-D buckets) and splits it along its
    longer axis at the row/column closest to the mass median.  This blends
    the equi-depth splitting of Muralikrishna & DeWitt with the
    variance-first bucket selection the paper's analysis motivates.
    """

    def __init__(self, matrix: FrequencyMatrix, buckets: list[RectBucket]):
        self._matrix = matrix
        self._buckets = tuple(buckets)

    @classmethod
    def build(cls, matrix: FrequencyMatrix, max_buckets: int) -> "GridHistogram":
        """Build a grid histogram with at most *max_buckets* buckets."""
        max_buckets = ensure_positive_int(max_buckets, "max_buckets")
        array = matrix.array

        def make_bucket(r0, r1, c0, c1) -> RectBucket:
            return RectBucket(r0, r1, c0, c1, float(array[r0:r1, c0:c1].sum()))

        def sse(bucket: RectBucket) -> float:
            block = array[
                bucket.row_start : bucket.row_stop,
                bucket.col_start : bucket.col_stop,
            ]
            return float(block.size * block.var())

        buckets = [make_bucket(0, array.shape[0], 0, array.shape[1])]
        while len(buckets) < max_buckets:
            # Split the bucket contributing most error; stop when all exact.
            scored = sorted(buckets, key=sse, reverse=True)
            target = None
            for candidate in scored:
                if sse(candidate) <= 1e-12:
                    break
                rows = candidate.row_stop - candidate.row_start
                cols = candidate.col_stop - candidate.col_start
                if rows > 1 or cols > 1:
                    target = candidate
                    break
            if target is None:
                break
            buckets.remove(target)
            buckets.extend(cls._split(array, target, make_bucket))
        return cls(matrix, buckets)

    @staticmethod
    def _split(array, bucket: RectBucket, make_bucket) -> list[RectBucket]:
        rows = bucket.row_stop - bucket.row_start
        cols = bucket.col_stop - bucket.col_start
        block = array[bucket.row_start : bucket.row_stop, bucket.col_start : bucket.col_stop]
        split_rows = rows >= cols and rows > 1 or cols <= 1
        if split_rows:
            mass = block.sum(axis=1)
        else:
            mass = block.sum(axis=0)
        cumulative = np.cumsum(mass, dtype=np.float64)
        total = cumulative[-1]
        if total <= 0:
            cut = len(mass) // 2
        else:
            cut = int(np.searchsorted(cumulative, total / 2.0, side="left")) + 1
        cut = max(1, min(cut, len(mass) - 1))
        if split_rows:
            mid = bucket.row_start + cut
            return [
                make_bucket(bucket.row_start, mid, bucket.col_start, bucket.col_stop),
                make_bucket(mid, bucket.row_stop, bucket.col_start, bucket.col_stop),
            ]
        mid = bucket.col_start + cut
        return [
            make_bucket(bucket.row_start, bucket.row_stop, bucket.col_start, mid),
            make_bucket(bucket.row_start, bucket.row_stop, mid, bucket.col_stop),
        ]

    # ------------------------------------------------------------------

    @property
    def buckets(self) -> tuple[RectBucket, ...]:
        return self._buckets

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    @property
    def total(self) -> float:
        return sum(b.total for b in self._buckets)

    def estimate_cell(self, row: int, col: int) -> float:
        """Approximate joint frequency of one (row value, column value) pair."""
        for bucket in self._buckets:
            if bucket.contains(row, col):
                return bucket.average
        raise IndexError(f"cell ({row}, {col}) outside the histogram grid")

    def estimate_region(
        self, row_start: int, row_stop: int, col_start: int, col_stop: int
    ) -> float:
        """Approximate mass of a rectangular (range x range) selection.

        Buckets partially covered contribute proportionally to the covered
        cell fraction — the uniform-within-bucket assumption.
        """
        if row_start >= row_stop or col_start >= col_stop:
            return 0.0
        return float(
            sum(
                b.total * b.overlap_fraction(row_start, row_stop, col_start, col_stop)
                for b in self._buckets
            )
        )

    def approximate_matrix(self) -> np.ndarray:
        """The full histogram matrix (every cell replaced by its bucket average)."""
        out = np.empty_like(self._matrix.array)
        for bucket in self._buckets:
            out[
                bucket.row_start : bucket.row_stop,
                bucket.col_start : bucket.col_stop,
            ] = bucket.average
        return out

    def sse(self) -> float:
        """Total squared approximation error: ``Σ (f − f̂)²`` over cells."""
        return float(((self._matrix.array - self.approximate_matrix()) ** 2).sum())



def _ensure_matrix(value: FrequencyMatrix, name: str) -> FrequencyMatrix:
    """Boundary check: independence formulas need a FrequencyMatrix."""
    if not isinstance(value, FrequencyMatrix):
        raise TypeError(f"{name} must be a FrequencyMatrix, got {type(value).__name__}")
    return value


def independence_estimate(
    matrix: FrequencyMatrix, row: Optional[int] = None, col: Optional[int] = None
) -> float:
    """Estimate joint frequencies from marginals under independence.

    ``independence_estimate(m, i, j) = rowsum_i · colsum_j / T`` — what a
    system keeping only per-attribute (1-D) statistics must assume.  With
    *row* or *col* omitted the corresponding marginal is returned.
    """
    _ensure_matrix(matrix, "matrix")
    array = matrix.array
    total = array.sum()
    if total <= 0:
        return 0.0
    if row is None and col is None:
        return float(total)
    if row is None:
        return float(array[:, col].sum())
    if col is None:
        return float(array[row, :].sum())
    return float(array[row, :].sum() * array[:, col].sum() / total)


def independence_matrix(matrix: FrequencyMatrix) -> np.ndarray:
    """The full rank-1 approximation implied by attribute independence."""
    _ensure_matrix(matrix, "matrix")
    array = matrix.array
    total = array.sum()
    if total <= 0:
        return np.zeros_like(array)
    return np.outer(array.sum(axis=1), array.sum(axis=0)) / total
