"""Biased and end-biased histograms: V-OptBiasHist (Section 4.2).

A *biased* histogram keeps β−1 frequencies exact in univalued buckets and
approximates the rest with one multivalued bucket.  The serial members of
the class are *end-biased* — univalued buckets hold the highest and lowest
frequencies — and by Corollary 3.1 / Theorem 3.3 the v-optimal biased
histogram is end-biased.

Because every univalued bucket contributes zero variance, the v-optimal
end-biased histogram is the one whose multivalued (middle) bucket has the
least SSE.  Only ``β`` candidates exist (how many of the β−1 singletons come
from the top versus the bottom), so the paper's V-OptBiasHist runs in
``O(M + (β−1)·log M)`` using a heap to find the extreme frequencies
(Theorem 4.2).  :func:`v_opt_bias_hist` implements exactly that.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.core.frequency import FrequencyLike, as_frequency_array
from repro.core.histogram import Histogram
from repro.util.validation import ensure_positive_int


def _prepare(frequencies, buckets: int) -> tuple[np.ndarray, int]:
    freqs = as_frequency_array(frequencies)
    buckets = ensure_positive_int(buckets, "buckets")
    if buckets > freqs.size:
        raise ValueError(
            f"cannot build {buckets} buckets over {freqs.size} frequencies"
        )
    return freqs, buckets


def end_biased_sizes(count: int, buckets: int, high: int) -> tuple[int, ...]:
    """Bucket-size tuple of the end-biased histogram with *high* top singletons.

    ``high`` singletons are carved off the top of the sorted order and
    ``buckets − 1 − high`` off the bottom; the remainder forms the single
    multivalued bucket.  Expressed as sizes over descending order:
    ``(1,)*high + (middle,) + (1,)*low``.
    """
    high = int(high)
    low = buckets - 1 - high
    if high < 0 or low < 0:
        raise ValueError(
            f"high singletons must lie in [0, {buckets - 1}], got {high}"
        )
    middle = count - (buckets - 1)
    if middle < 1:
        raise ValueError(
            f"{buckets} buckets need at least {buckets} frequencies, got {count}"
        )
    return (1,) * high + (middle,) + (1,) * low


def end_biased_histogram(
    frequencies: FrequencyLike, buckets: int, high: int, values: Optional[Sequence] = None
) -> Histogram:
    """Build the end-biased histogram with *high* top and β−1−high bottom singletons."""
    freqs, buckets = _prepare(frequencies, buckets)
    sizes = end_biased_sizes(freqs.size, buckets, high)
    return Histogram.from_sorted_sizes(freqs, sizes, kind="end-biased", values=values)


def _middle_sse(
    sorted_desc: np.ndarray,
    prefix_sum: np.ndarray,
    prefix_sq: np.ndarray,
    high: int,
    low: int,
) -> float:
    """SSE of the multivalued bucket left after removing extremes."""
    start = high
    stop = sorted_desc.size - low
    count = stop - start
    seg_sum = prefix_sum[stop] - prefix_sum[start]
    seg_sq = prefix_sq[stop] - prefix_sq[start]
    return seg_sq - seg_sum * seg_sum / count


def v_opt_bias_hist(
    frequencies: FrequencyLike, buckets: int, values: Optional[Sequence] = None
) -> Histogram:
    """The paper's V-OptBiasHist: the v-optimal end-biased histogram.

    Selects the β−1 extreme frequencies with heaps (no full sort), then
    evaluates the β ways of splitting the singletons between the top and the
    bottom, returning the one whose middle bucket has minimal SSE
    (formula (3) with all univalued buckets contributing zero).  Ties prefer
    more *high* singletons, matching the practical sampling shortcut that can
    only find high frequencies (Section 4.2).
    """
    freqs, buckets = _prepare(frequencies, buckets)
    singles = buckets - 1

    if singles == 0:
        return Histogram.from_sorted_sizes(
            freqs, (freqs.size,), kind="end-biased", values=values
        )
    if freqs.size == buckets:
        # Every bucket univalued: the histogram is exact.
        return Histogram.from_sorted_sizes(
            freqs, (1,) * buckets, kind="end-biased", values=values
        )

    # Heap selection of the candidate extremes — O(M + singles·log M).
    freq_list = freqs.tolist()
    top = np.sort(np.array(heapq.nlargest(singles, freq_list), dtype=np.float64))[::-1]
    bottom = np.sort(np.array(heapq.nsmallest(singles, freq_list), dtype=np.float64))[::-1]

    total_sum = float(freqs.sum())
    total_sq = float(np.dot(freqs, freqs))

    top_sum = np.concatenate([[0.0], np.cumsum(top, dtype=np.float64)])
    top_sq = np.concatenate([[0.0], np.cumsum(top * top, dtype=np.float64)])
    bottom_rev = bottom[::-1]  # ascending: easiest-to-remove first
    bottom_sum = np.concatenate([[0.0], np.cumsum(bottom_rev, dtype=np.float64)])
    bottom_sq = np.concatenate([[0.0], np.cumsum(bottom_rev * bottom_rev, dtype=np.float64)])

    best_high = 0
    best_error = np.inf
    middle_count_base = freqs.size - singles
    for high in range(singles, -1, -1):
        low = singles - high
        seg_sum = total_sum - top_sum[high] - bottom_sum[low]
        seg_sq = total_sq - top_sq[high] - bottom_sq[low]
        error = seg_sq - seg_sum * seg_sum / middle_count_base
        if error < best_error - 1e-12:
            best_error = error
            best_high = high
    sizes = end_biased_sizes(freqs.size, buckets, best_high)
    return Histogram.from_sorted_sizes(freqs, sizes, kind="end-biased", values=values)


def all_end_biased_histograms(frequencies: FrequencyLike, buckets: int) -> Iterator[Histogram]:
    """Yield the β end-biased histograms with *buckets* buckets.

    The candidates differ only in how many singletons come from the top of
    the sorted order; there are fewer candidates than frequencies, the fact
    that makes V-OptBiasHist near-linear.
    """
    freqs, buckets = _prepare(frequencies, buckets)
    if buckets - 1 > freqs.size - 1:
        # All-singleton degenerate case has a single member.
        yield Histogram.from_sorted_sizes(freqs, (1,) * buckets, kind="end-biased")
        return
    for high in range(buckets):
        yield end_biased_histogram(freqs, buckets, high)


def all_biased_partitions(frequencies: FrequencyLike, buckets: int) -> Iterator[Histogram]:
    """Yield every *biased* histogram over the frequency indices (tiny inputs).

    A biased histogram keeps β−1 frequencies in singleton buckets and lumps
    the rest together; candidates are all (β−1)-subsets of the indices.  Used
    by tests to verify Corollary 3.1 (optimal biased is end-biased)
    exhaustively.
    """
    from itertools import combinations

    freqs, buckets = _prepare(frequencies, buckets)
    indices = range(freqs.size)
    singles = buckets - 1
    if singles >= freqs.size:
        return
    for chosen in combinations(indices, singles):
        rest = tuple(i for i in indices if i not in set(chosen))
        groups = [(i,) for i in chosen] + [rest]
        yield Histogram(freqs, groups, kind="biased")
