"""Frequency sets and attribute-value frequency distributions (Section 2.2).

Two views of the same statistics appear throughout the paper:

* the **frequency set** of a relation's attribute — the multiset of
  frequencies with the attribute values forgotten.  This is the "minimum
  required knowledge" under which v-optimality (Section 3.2) is defined.
* the **frequency distribution** — the mapping from attribute values to
  frequencies, needed by value-aware estimation (selections, equi-width /
  equi-depth bucketing over the natural value order).

:class:`FrequencySet` and :class:`AttributeDistribution` model the two views;
``as_frequency_array`` lets every algorithm accept either, or any plain
sequence of numbers.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence, Union

import numpy as np

from repro.util.rng import RandomSource, derive_rng

#: Anything ``as_frequency_array`` accepts: the two core statistic views,
#: a numpy array, or any plain sequence of numbers.
FrequencyLike = Union["FrequencySet", "AttributeDistribution", np.ndarray, Sequence[float]]


def as_frequency_array(frequencies: FrequencyLike) -> np.ndarray:
    """Coerce *frequencies* into a 1-D float array of non-negative values.

    Accepts :class:`FrequencySet`, :class:`AttributeDistribution`, numpy
    arrays, and plain sequences.  A defensive copy is always returned so
    callers may mutate the result freely.
    """
    if isinstance(frequencies, FrequencySet):
        return frequencies.frequencies.copy()
    if isinstance(frequencies, AttributeDistribution):
        return frequencies.frequencies.copy()
    arr = np.array(frequencies, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"frequencies must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("frequencies must be non-empty")
    if np.any(~np.isfinite(arr)):
        raise ValueError("frequencies must be finite")
    if np.any(arr < 0):
        raise ValueError("frequencies must be non-negative")
    return arr


class FrequencySet:
    """The multiset of frequencies of an attribute, values forgotten.

    Stored internally in descending order (the paper's rank order).  The
    class is immutable: all accessors return copies or scalars.
    """

    __slots__ = ("_frequencies",)

    def __init__(self, frequencies: Sequence[float]):
        arr = as_frequency_array(frequencies)
        arr = np.sort(arr)[::-1]
        arr.setflags(write=False)
        self._frequencies = arr

    @classmethod
    def from_column(cls, column: Iterable[Hashable]) -> "FrequencySet":
        """Build the frequency set of a raw column of attribute values.

        This is the value-oblivious half of the paper's ``Matrix``
        statistics-collection step: one pass counting duplicates.
        """
        counts: dict[Hashable, int] = {}
        for value in column:
            counts[value] = counts.get(value, 0) + 1
        if not counts:
            raise ValueError("column must be non-empty")
        return cls(list(counts.values()))

    @property
    def frequencies(self) -> np.ndarray:
        """The frequencies in descending order (read-only view)."""
        return self._frequencies

    @property
    def size(self) -> int:
        """Number of distinct attribute values (``M`` in the paper)."""
        return int(self._frequencies.size)

    @property
    def total(self) -> float:
        """Sum of all frequencies — the relation size ``T``."""
        return float(self._frequencies.sum())

    @property
    def mean(self) -> float:
        """Average frequency."""
        return float(self._frequencies.mean())

    @property
    def variance(self) -> float:
        """Population variance of the frequencies."""
        return float(self._frequencies.var())

    def self_join_size(self) -> float:
        """Exact result size of joining the relation with itself: ``Σ f_i²``."""
        return float(np.dot(self._frequencies, self._frequencies))

    def sorted_descending(self) -> np.ndarray:
        """Return a writable copy of the frequencies in descending order."""
        return self._frequencies.copy()

    def __len__(self) -> int:
        return self.size

    def __iter__(self):
        return iter(self._frequencies)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FrequencySet):
            return NotImplemented
        return self._frequencies.shape == other._frequencies.shape and bool(
            np.allclose(self._frequencies, other._frequencies)
        )

    def __hash__(self):
        return hash(tuple(np.round(self._frequencies, 12)))

    def __repr__(self) -> str:
        head = ", ".join(f"{v:g}" for v in self._frequencies[:5])
        suffix = ", ..." if self.size > 5 else ""
        return f"FrequencySet([{head}{suffix}], size={self.size}, total={self.total:g})"


class AttributeDistribution:
    """A mapping from attribute values to frequencies.

    Values are kept in their natural sorted order, which is what equi-width
    and equi-depth histograms bucket over.  The paper's synthetic experiments
    deliberately *randomise* the association between values and frequencies
    ("no correlation" assumption); :meth:`permuted` produces such
    arrangements.
    """

    __slots__ = ("_values", "_frequencies")

    def __init__(self, values: Sequence[Hashable], frequencies: Sequence[float]):
        freqs = as_frequency_array(frequencies)
        values = tuple(values)
        if len(values) != freqs.size:
            raise ValueError(
                f"values and frequencies must align, got {len(values)} values "
                f"and {freqs.size} frequencies"
            )
        if len(set(values)) != len(values):
            raise ValueError("attribute values must be distinct")
        order = sorted(range(len(values)), key=lambda i: values[i])
        self._values = tuple(values[i] for i in order)
        arr = freqs[order]
        arr.setflags(write=False)
        self._frequencies = arr

    @classmethod
    def from_column(cls, column: Iterable[Hashable]) -> "AttributeDistribution":
        """Count duplicates in a raw column (the paper's ``Matrix`` step)."""
        counts: dict[Hashable, int] = {}
        for value in column:
            counts[value] = counts.get(value, 0) + 1
        if not counts:
            raise ValueError("column must be non-empty")
        values = list(counts.keys())
        return cls(values, [float(counts[v]) for v in values])

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[Hashable, float]]) -> "AttributeDistribution":
        """Build from explicit ``(value, frequency)`` pairs."""
        values, freqs = [], []
        for value, freq in pairs:
            values.append(value)
            freqs.append(float(freq))
        return cls(values, freqs)

    @property
    def values(self) -> tuple:
        """The distinct attribute values, in natural sorted order."""
        return self._values

    @property
    def frequencies(self) -> np.ndarray:
        """Frequencies aligned with :attr:`values` (read-only view)."""
        return self._frequencies

    @property
    def domain_size(self) -> int:
        """Number of distinct values (``M``)."""
        return len(self._values)

    @property
    def total(self) -> float:
        """Relation size ``T``."""
        return float(self._frequencies.sum())

    def frequency_of(self, value: Hashable) -> float:
        """Return the frequency of *value* (0.0 when absent from the domain)."""
        try:
            index = self._values.index(value)
        except ValueError:
            return 0.0
        return float(self._frequencies[index])

    def frequency_set(self) -> FrequencySet:
        """Forget the values: return the frequency multiset."""
        return FrequencySet(self._frequencies)

    def self_join_size(self) -> float:
        """Exact self-join size ``Σ f_i²`` — value association is irrelevant."""
        return float(np.dot(self._frequencies, self._frequencies))

    def join_size(self, other: "AttributeDistribution") -> float:
        """Exact equality-join size against *other* on the shared attribute.

        ``Σ_v f_self(v) · f_other(v)`` over the intersection of the two value
        domains (Theorem 2.1 specialised to a two-way join).
        """
        other_index = {v: i for i, v in enumerate(other._values)}
        size = 0.0
        for i, value in enumerate(self._values):
            j = other_index.get(value)
            if j is not None:
                size += float(self._frequencies[i]) * float(other._frequencies[j])
        return size

    def permuted(self, rng: RandomSource = None) -> "AttributeDistribution":
        """Return a copy with frequencies randomly re-assigned to values.

        Implements the uniform-random *arrangement* over which v-optimality
        averages (Section 3.2) and the "no correlation between value order
        and frequency order" modelling assumption of Section 5.1.
        """
        gen = derive_rng(rng)
        shuffled = gen.permutation(self._frequencies)
        return AttributeDistribution(self._values, shuffled)

    def __len__(self) -> int:
        return self.domain_size

    def __eq__(self, other) -> bool:
        if not isinstance(other, AttributeDistribution):
            return NotImplemented
        return self._values == other._values and bool(
            np.allclose(self._frequencies, other._frequencies)
        )

    def __repr__(self) -> str:
        return (
            f"AttributeDistribution(domain_size={self.domain_size}, "
            f"total={self.total:g})"
        )
