"""Core contribution: histogram classes, optimality theory, and estimation.

This package implements the paper's machinery end to end: frequency sets and
matrices (Section 2), the histogram taxonomy with the serial / biased /
end-biased classes, the optimality results (Section 3), the V-OptHist and
V-OptBiasHist construction algorithms (Section 4), and histogram-based
result-size estimation.
"""

from __future__ import annotations

from repro.core.frequency import AttributeDistribution, FrequencySet, as_frequency_array
from repro.core.matrix import (
    FrequencyMatrix,
    arrange_frequency_set,
    chain_result_size,
    selection_vector,
)
from repro.core.buckets import Bucket, buckets_interleave, partition_sizes
from repro.core.histogram import Histogram
from repro.core.heuristic import equi_depth_histogram, equi_width_histogram, trivial_histogram
from repro.core.serial import (
    AUTO_EXHAUSTIVE_LIMIT,
    all_serial_histograms,
    enumerate_serial_partitions,
    dp_contiguous_partition,
    serial_error_from_sizes,
    serial_partition_count,
    v_opt_hist_dp,
    v_opt_hist_exhaustive,
    v_optimal_serial_histogram,
)
from repro.core.biased import (
    all_biased_partitions,
    all_end_biased_histograms,
    end_biased_histogram,
    end_biased_sizes,
    v_opt_bias_hist,
)
from repro.core.optimality import (
    analytic_v_error_two_way,
    approximate_self_join_size,
    exact_expected_difference_two_way,
    exact_v_error_two_way,
    monte_carlo_v_error_two_way,
    self_join_error,
    self_join_sigma,
    self_join_size,
)
from repro.core.advisor import (
    ADVISABLE_KINDS,
    AdvisoryRow,
    advisory_report,
    allocate_bucket_budget,
    minimum_buckets,
    optimal_error_for_buckets,
)
from repro.core.construction import (
    JointFrequencyRow,
    joint_matrix_algorithm,
    joint_table_result_size,
    matrix_algorithm,
    matrix_algorithm_2d,
)
from repro.core.tensor import (
    FrequencyTensor,
    arrange_frequency_tensor,
    tree_result_size,
)
from repro.core.inequality import (
    RANGE_OPERATORS,
    estimate_band_join,
    estimate_not_equals_join,
    estimate_range_join,
    not_equals_estimation_error,
    not_equals_join_size,
    not_equals_selection_size,
    range_join_size,
)
from repro.core.successors import compressed_histogram, max_diff_histogram
from repro.core.valueorder import bucket_boundaries, v_optimal_value_histogram
from repro.core.multidim import (
    GridHistogram,
    RectBucket,
    independence_estimate,
    independence_matrix,
)
from repro.core.estimator import (
    EstimateOptions,
    approximate_chain,
    approximate_chain_matrices,
    estimate_chain,
    estimate_chain_size,
    estimate_equality,
    estimate_equality_selection,
    estimate_in_selection,
    estimate_join,
    estimate_join_size,
    estimate_membership,
    estimate_not_equal,
    estimate_not_equals,
    estimate_range,
    estimate_range_selection,
    estimate_self_join,
    relative_error,
)

__all__ = [
    "AttributeDistribution",
    "FrequencySet",
    "as_frequency_array",
    "FrequencyMatrix",
    "arrange_frequency_set",
    "chain_result_size",
    "selection_vector",
    "Bucket",
    "buckets_interleave",
    "partition_sizes",
    "Histogram",
    "equi_depth_histogram",
    "equi_width_histogram",
    "trivial_histogram",
    "AUTO_EXHAUSTIVE_LIMIT",
    "all_serial_histograms",
    "enumerate_serial_partitions",
    "dp_contiguous_partition",
    "serial_error_from_sizes",
    "serial_partition_count",
    "v_opt_hist_dp",
    "v_opt_hist_exhaustive",
    "v_optimal_serial_histogram",
    "all_biased_partitions",
    "all_end_biased_histograms",
    "end_biased_histogram",
    "end_biased_sizes",
    "v_opt_bias_hist",
    "analytic_v_error_two_way",
    "approximate_self_join_size",
    "exact_expected_difference_two_way",
    "exact_v_error_two_way",
    "monte_carlo_v_error_two_way",
    "self_join_error",
    "self_join_sigma",
    "self_join_size",
    "ADVISABLE_KINDS",
    "AdvisoryRow",
    "advisory_report",
    "allocate_bucket_budget",
    "minimum_buckets",
    "optimal_error_for_buckets",
    "JointFrequencyRow",
    "joint_matrix_algorithm",
    "joint_table_result_size",
    "matrix_algorithm",
    "matrix_algorithm_2d",
    "EstimateOptions",
    "approximate_chain",
    "approximate_chain_matrices",
    "estimate_chain",
    "estimate_chain_size",
    "estimate_equality",
    "estimate_equality_selection",
    "estimate_in_selection",
    "estimate_join",
    "estimate_join_size",
    "estimate_membership",
    "estimate_not_equal",
    "estimate_not_equals",
    "estimate_range",
    "estimate_range_selection",
    "estimate_self_join",
    "relative_error",
    "FrequencyTensor",
    "arrange_frequency_tensor",
    "tree_result_size",
    "RANGE_OPERATORS",
    "estimate_band_join",
    "estimate_not_equals_join",
    "estimate_range_join",
    "not_equals_estimation_error",
    "not_equals_join_size",
    "not_equals_selection_size",
    "range_join_size",
    "GridHistogram",
    "RectBucket",
    "independence_estimate",
    "independence_matrix",
    "compressed_histogram",
    "max_diff_histogram",
    "bucket_boundaries",
    "v_optimal_value_histogram",
]
