"""Result-size estimation from histograms (Sections 2.2, 5.2, and 6).

Two estimation styles are provided:

* **value-aware** — histograms built with their domain values attached
  (catalog histograms) estimate selections and two-way joins by mapping each
  value through its bucket average, exactly as an optimizer would;
* **arrangement-based** — the Section 5.2 chain-query experiments apply each
  relation's histogram to a concrete arrangement of its frequency matrix and
  multiply the approximate matrices (Theorem 2.1 on histogram matrices).

Section 6 observes that ``≠`` and range selections reduce to (complements
of) disjunctive equality selections, so all of them estimate by summing
approximate per-value frequencies.

The canonical surface is histogram-first with keyword-only options:

``estimate_equality``, ``estimate_membership``, ``estimate_not_equal``,
``estimate_range``, ``estimate_join``, ``estimate_self_join``,
``estimate_chain``, ``approximate_chain``, and ``relative_error``, sharing
:class:`EstimateOptions`.  Every function answers from the histogram's
compiled lookup table (:mod:`repro.serve.tables`), compiled once per
histogram, so repeated calls — and the batched service layer — return
bit-identical floats.

The pre-1.1 spellings (``estimate_equality_selection``,
``estimate_in_selection``, ``estimate_not_equals``,
``estimate_range_selection``, ``estimate_join_size``,
``estimate_chain_size``, ``approximate_chain_matrices``) remain as thin
shims that emit :class:`DeprecationWarning`; see ``docs/API.md`` for the
migration table.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable, Optional, Sequence

import numpy as np

from repro.analysis.contracts import returns_estimate
from repro.core.histogram import Histogram
from repro.core.matrix import FrequencyMatrix, MatrixLike, chain_result_size
from repro.util.validation import ensure_non_negative

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.serve.tables import CompiledHistogram


@dataclass(frozen=True)
class EstimateOptions:
    """Options shared by the estimation functions.

    ``include_low`` / ``include_high`` control range-bound inclusivity
    (:func:`estimate_range`); ``rounded`` requests integer-rounded bucket
    averages for arrangement-based chain estimation (:func:`estimate_chain`,
    :func:`approximate_chain`); ``assume_in_domain`` is the catalog
    "missing bucket" policy applied by compact lookups in the serving
    layer.  Fields irrelevant to a given function are ignored by it.
    """

    include_low: bool = True
    include_high: bool = True
    rounded: bool = False
    assume_in_domain: bool = True


#: The all-defaults options value the functions fall back to.
DEFAULT_ESTIMATE_OPTIONS = EstimateOptions()


def _compiled(histogram: Histogram) -> "CompiledHistogram":
    """The histogram's (cached) compiled lookup table."""
    from repro.serve.tables import compile_histogram

    return compile_histogram(histogram)


def _value_approximations(histogram: Histogram) -> dict[Hashable, float]:
    """Map each domain value to its bucket-average approximation."""
    return _compiled(histogram).as_mapping()


def _warn_deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} (migration notes in docs/API.md)",
        DeprecationWarning,
        stacklevel=3,
    )


# ----------------------------------------------------------------------
# Canonical surface
# ----------------------------------------------------------------------


@returns_estimate
def estimate_equality(
    histogram: Histogram,
    value: Hashable,
    *,
    options: Optional[EstimateOptions] = None,
) -> float:
    """Estimate ``|σ_{a=value}(R)|``: the value's approximate frequency."""
    return _compiled(histogram).equality(value)


@returns_estimate
def estimate_membership(
    histogram: Histogram,
    values: Iterable[Hashable],
    *,
    options: Optional[EstimateOptions] = None,
) -> float:
    """Estimate a disjunctive selection ``a ∈ {c1..ck}`` (Section 2.2).

    Repeated probe values are deduplicated (keeping first-occurrence
    order, so the summation order — and hence the float result — is
    deterministic): ``a IN (c, c)`` selects each matching tuple once.
    Unhashable probe values contribute 0.0 mass — nothing stored in a
    histogram can equal them — matching :func:`estimate_equality` instead
    of raising.
    """
    return _compiled(histogram).membership(values)


@returns_estimate
def estimate_not_equal(
    histogram: Histogram,
    value: Hashable,
    *,
    options: Optional[EstimateOptions] = None,
) -> float:
    """Estimate ``a ≠ value`` as the complement of the equality selection.

    Section 6: the ``≠`` operator is "simply the complement of equality", so
    serial histograms remain v-optimal for it.
    """
    return _compiled(histogram).not_equal(value)


@returns_estimate
def estimate_range(
    histogram: Histogram,
    low: Optional[Hashable] = None,
    high: Optional[Hashable] = None,
    *,
    options: Optional[EstimateOptions] = None,
) -> float:
    """Estimate a range selection by summing approximate frequencies in range.

    Section 6 treats range selections as disjunctive equality selections over
    the values in the range; the estimate is the sum of their bucket
    averages — served as a prefix-sum difference over the sorted domain.
    ``None`` bounds are open-ended; bound inclusivity comes from *options*.
    """
    opts = options or DEFAULT_ESTIMATE_OPTIONS
    return _compiled(histogram).range_sum(
        low, high, include_low=opts.include_low, include_high=opts.include_high
    )


@returns_estimate
def estimate_join(
    left: Histogram,
    right: Histogram,
    *,
    options: Optional[EstimateOptions] = None,
) -> float:
    """Estimate a two-way equality join from two value-aware histograms.

    ``Σ_v f̂_left(v) · f̂_right(v)`` over the intersection of the recorded
    domains — Theorem 2.1 applied to the two histogram matrices.
    """
    return _compiled(left).join_with(_compiled(right))


@returns_estimate
def estimate_self_join(histogram: Histogram) -> float:
    """Estimate a self-join: ``Σ_i T_i²/p_i`` (Proposition 3.1, formula (2))."""
    return histogram.self_join_estimate()


def approximate_chain(
    histograms: Sequence[Histogram],
    matrices: Sequence[MatrixLike],
    *,
    options: Optional[EstimateOptions] = None,
) -> list[np.ndarray]:
    """Apply per-relation histograms to concrete frequency-matrix arrangements.

    Each histogram must have been built from the frequency multiset of the
    corresponding matrix; the result is the list of *histogram matrices*
    the optimizer would multiply.
    """
    if len(matrices) != len(histograms):
        raise ValueError(
            f"got {len(matrices)} matrices but {len(histograms)} histograms"
        )
    opts = options or DEFAULT_ESTIMATE_OPTIONS
    approximated = []
    for matrix, histogram in zip(matrices, histograms):
        arr = (
            matrix.array
            if isinstance(matrix, FrequencyMatrix)
            else np.asarray(matrix, dtype=float)
        )
        approximated.append(histogram.approximate_array(arr, rounded=opts.rounded))
    return approximated


@returns_estimate
def estimate_chain(
    histograms: Sequence[Histogram],
    matrices: Sequence[MatrixLike],
    *,
    options: Optional[EstimateOptions] = None,
) -> float:
    """Approximate chain-query result size: product of histogram matrices."""
    return chain_result_size(approximate_chain(histograms, matrices, options=options))


def relative_error(exact: float, estimate: float) -> float:
    """``|S − S'| / S`` — the paper's error metric (y-axis of Figures 6-7).

    The metric is undefined at ``S = 0``; this implementation pins the two
    edge cases the way the paper's experiments treat them:

    * ``exact == 0`` and ``estimate == 0`` → ``0.0`` — the estimate is
      exactly right, so it contributes no error to a mean;
    * ``exact == 0`` and ``estimate > 0`` → ``inf`` — any nonzero estimate
      of an empty result is unboundedly wrong under a relative metric
      (averages over workloads containing such queries are therefore
      ``inf``; filter empty-result queries out first if that is not
      intended).

    Both arguments must be non-negative (result sizes are counts).
    """
    exact = ensure_non_negative(exact, "exact")
    estimate = ensure_non_negative(estimate, "estimate")
    if exact == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(exact - estimate) / exact


# ----------------------------------------------------------------------
# Deprecated pre-1.1 spellings
# ----------------------------------------------------------------------


def estimate_equality_selection(histogram: Histogram, value: Hashable) -> float:  # repolint: boundary-exempt — forwards to validating canonical fn
    """Deprecated alias of :func:`estimate_equality`."""
    _warn_deprecated("estimate_equality_selection", "estimate_equality")
    return estimate_equality(histogram, value)


def estimate_in_selection(histogram: Histogram, values: Iterable[Hashable]) -> float:  # repolint: boundary-exempt — forwards to validating canonical fn
    """Deprecated alias of :func:`estimate_membership`."""
    _warn_deprecated("estimate_in_selection", "estimate_membership")
    return estimate_membership(histogram, values)


def estimate_not_equals(histogram: Histogram, value: Hashable) -> float:  # repolint: boundary-exempt — forwards to validating canonical fn
    """Deprecated alias of :func:`estimate_not_equal`."""
    _warn_deprecated("estimate_not_equals", "estimate_not_equal")
    return estimate_not_equal(histogram, value)


# repolint: boundary-exempt — forwards to validating canonical fn
def estimate_range_selection(
    histogram: Histogram,
    low: Optional[Hashable] = None,
    high: Optional[Hashable] = None,
    *,
    include_low: bool = True,
    include_high: bool = True,
) -> float:
    """Deprecated alias of :func:`estimate_range` (options went keyword-only)."""
    _warn_deprecated("estimate_range_selection", "estimate_range")
    return estimate_range(
        histogram,
        low,
        high,
        options=EstimateOptions(include_low=include_low, include_high=include_high),
    )


def estimate_join_size(left: Histogram, right: Histogram) -> float:  # repolint: boundary-exempt — forwards to validating canonical fn
    """Deprecated alias of :func:`estimate_join`."""
    _warn_deprecated("estimate_join_size", "estimate_join")
    return estimate_join(left, right)


# repolint: boundary-exempt — forwards to validating canonical fn
def approximate_chain_matrices(
    matrices: Sequence[MatrixLike],
    histograms: Sequence[Histogram],
    *,
    rounded: bool = False,
) -> list[np.ndarray]:
    """Deprecated alias of :func:`approximate_chain` (argument order flipped)."""
    _warn_deprecated("approximate_chain_matrices", "approximate_chain")
    return approximate_chain(
        histograms, matrices, options=EstimateOptions(rounded=rounded)
    )


# repolint: boundary-exempt — forwards to validating canonical fn
def estimate_chain_size(
    matrices: Sequence[MatrixLike],
    histograms: Sequence[Histogram],
    *,
    rounded: bool = False,
) -> float:
    """Deprecated alias of :func:`estimate_chain` (argument order flipped)."""
    _warn_deprecated("estimate_chain_size", "estimate_chain")
    return estimate_chain(
        histograms, matrices, options=EstimateOptions(rounded=rounded)
    )
