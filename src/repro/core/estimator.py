"""Result-size estimation from histograms (Sections 2.2, 5.2, and 6).

Two estimation styles are provided:

* **value-aware** — histograms built with their domain values attached
  (catalog histograms) estimate selections and two-way joins by mapping each
  value through its bucket average, exactly as an optimizer would;
* **arrangement-based** — the Section 5.2 chain-query experiments apply each
  relation's histogram to a concrete arrangement of its frequency matrix and
  multiply the approximate matrices (Theorem 2.1 on histogram matrices).

Section 6 observes that ``≠`` and range selections reduce to (complements
of) disjunctive equality selections, so all of them estimate by summing
approximate per-value frequencies.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence

import numpy as np

from repro.analysis.contracts import returns_estimate
from repro.core.histogram import Histogram
from repro.core.matrix import FrequencyMatrix, MatrixLike, chain_result_size
from repro.util.validation import ensure_non_negative


def _value_approximations(histogram: Histogram) -> dict[Hashable, float]:
    """Map each domain value to its bucket-average approximation."""
    if histogram.values is None:
        raise ValueError(
            "estimation by value requires a histogram built with domain values"
        )
    approx: dict[Hashable, float] = {}
    for bucket in histogram.buckets:
        for value in bucket.values:
            approx[value] = bucket.average
    return approx


@returns_estimate
def estimate_equality_selection(histogram: Histogram, value: Hashable) -> float:
    """Estimate ``|σ_{a=value}(R)|``: the value's approximate frequency."""
    return _value_approximations(histogram).get(value, 0.0)


@returns_estimate
def estimate_in_selection(histogram: Histogram, values: Iterable[Hashable]) -> float:
    """Estimate a disjunctive selection ``a ∈ {c1..ck}`` (Section 2.2)."""
    approx = _value_approximations(histogram)
    return float(sum(approx.get(v, 0.0) for v in set(values)))


@returns_estimate
def estimate_not_equals(histogram: Histogram, value: Hashable) -> float:
    """Estimate ``a ≠ value`` as the complement of the equality selection.

    Section 6: the ``≠`` operator is "simply the complement of equality", so
    serial histograms remain v-optimal for it.
    """
    approx = _value_approximations(histogram)
    total = sum(approx.values())
    return float(total - approx.get(value, 0.0))


@returns_estimate
def estimate_range_selection(
    histogram: Histogram,
    low: Optional[Hashable] = None,
    high: Optional[Hashable] = None,
    *,
    include_low: bool = True,
    include_high: bool = True,
) -> float:
    """Estimate a range selection by summing approximate frequencies in range.

    Section 6 treats range selections as disjunctive equality selections over
    the values in the range; the estimate is the sum of their bucket
    averages.  ``None`` bounds are open-ended.
    """
    approx = _value_approximations(histogram)
    total = 0.0
    for value, freq in approx.items():
        if low is not None:
            if value < low or (value == low and not include_low):
                continue
        if high is not None:
            if value > high or (value == high and not include_high):
                continue
        total += freq
    return float(total)


@returns_estimate
def estimate_join_size(left: Histogram, right: Histogram) -> float:
    """Estimate a two-way equality join from two value-aware histograms.

    ``Σ_v f̂_left(v) · f̂_right(v)`` over the intersection of the recorded
    domains — Theorem 2.1 applied to the two histogram matrices.
    """
    left_approx = _value_approximations(left)
    right_approx = _value_approximations(right)
    if len(right_approx) < len(left_approx):
        left_approx, right_approx = right_approx, left_approx
    return float(
        sum(freq * right_approx[v] for v, freq in left_approx.items() if v in right_approx)
    )


@returns_estimate
def estimate_self_join(histogram: Histogram) -> float:
    """Estimate a self-join: ``Σ_i T_i²/p_i`` (Proposition 3.1, formula (2))."""
    return histogram.self_join_estimate()


def approximate_chain_matrices(
    matrices: Sequence[MatrixLike],
    histograms: Sequence[Histogram],
    *,
    rounded: bool = False,
) -> list[np.ndarray]:
    """Apply per-relation histograms to concrete frequency-matrix arrangements.

    Each histogram must have been built from the frequency multiset of the
    corresponding matrix; the result is the list of *histogram matrices*
    the optimizer would multiply.
    """
    if len(matrices) != len(histograms):
        raise ValueError(
            f"got {len(matrices)} matrices but {len(histograms)} histograms"
        )
    approximated = []
    for matrix, histogram in zip(matrices, histograms):
        arr = matrix.array if isinstance(matrix, FrequencyMatrix) else np.asarray(matrix, dtype=float)
        approximated.append(histogram.approximate_array(arr, rounded=rounded))
    return approximated


@returns_estimate
def estimate_chain_size(
    matrices: Sequence[MatrixLike],
    histograms: Sequence[Histogram],
    *,
    rounded: bool = False,
) -> float:
    """Approximate chain-query result size: product of histogram matrices."""
    return chain_result_size(approximate_chain_matrices(matrices, histograms, rounded=rounded))


def relative_error(exact: float, estimate: float) -> float:
    """``|S − S'| / S`` — the y-axis of Figures 6 and 7.

    A zero exact size with a nonzero estimate reports ``inf``; both zero
    reports 0 (the estimate is right).
    """
    exact = ensure_non_negative(exact, "exact")
    estimate = ensure_non_negative(estimate, "estimate")
    if exact == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(exact - estimate) / exact
