"""Value-order V-Optimal histograms (range-predicate oriented).

The paper's serial histograms bucket by *frequency* proximity — optimal for
equality predicates but requiring per-bucket value lists.  The traditional
alternative buckets contiguous *value ranges*; equi-width and equi-depth
are heuristic members of that family.  Its DP-optimal member (minimum total
SSE over contiguous value ranges, the form later standardised by Jagadish
et al. 1998) is implemented here, reusing the same dynamic program as
V-OptHist but over the natural value order.

Value-range buckets need only β boundaries in the catalog and make range
selections cheap to estimate; the price, demonstrated in tests, is a worse
self-join/equality error than the frequency-bucketed serial optimum
whenever value order and frequency order disagree.
"""

from __future__ import annotations

from repro.core.frequency import AttributeDistribution
from repro.core.histogram import Histogram
from repro.core.serial import dp_contiguous_partition
from repro.util.validation import ensure_positive_int


def v_optimal_value_histogram(
    distribution: AttributeDistribution, buckets: int
) -> Histogram:
    """Minimum-SSE histogram over contiguous ranges of the value order.

    Optimal within the value-range family (strictly better than or equal to
    equi-width and equi-depth in total SSE); generally worse than the
    frequency-order serial optimum for equality-style errors.
    """
    buckets = ensure_positive_int(buckets, "buckets")
    size = distribution.domain_size
    if buckets > size:
        raise ValueError(
            f"cannot build {buckets} buckets over {size} values"
        )
    sizes = dp_contiguous_partition(distribution.frequencies, buckets)
    groups = []
    start = 0
    for bucket_size in sizes:
        groups.append(tuple(range(start, start + bucket_size)))
        start += bucket_size
    return Histogram(
        distribution.frequencies,
        groups,
        kind="v-optimal-value",
        values=distribution.values,
    )


def bucket_boundaries(histogram: Histogram) -> list[tuple]:
    """Return each bucket's (low value, high value) pair.

    Only meaningful for value-aware histograms whose buckets are contiguous
    value ranges — the compact form a catalog would store for this family.
    """
    if histogram.values is None:
        raise ValueError("boundaries need a value-aware histogram")
    boundaries = []
    for bucket in histogram.buckets:
        values = bucket.values
        boundaries.append((min(values), max(values)))
    return boundaries
