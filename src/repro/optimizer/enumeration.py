"""Exhaustive plan enumeration for plan-ranking studies.

The paper closes with the open question of optimizing histograms for "the
ranking of alternative access plans, which determines the final decision of
the optimizer".  To study that empirically we need *every* plan, not just
the DP winner: this module enumerates all bushy join trees of a (small)
tree query, so estimated and true plan rankings can be compared.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.joinorder import JoinGraph
from repro.optimizer.plans import JoinPlan, Plan, ScanPlan
from repro.util.validation import ensure_positive_int

#: Safety cap: plan counts explode combinatorially with relations.
MAX_RELATIONS_FOR_ENUMERATION = 6


def enumerate_plans(
    graph: JoinGraph, estimator: CardinalityEstimator
) -> list[Plan]:
    """Return every bushy, cross-product-free plan for *graph*.

    Cardinalities come from *estimator* using the same composition rule as
    the DP orderer (base rows x per-edge selectivities), so the DP winner is
    guaranteed to appear in — and be a cost-minimum of — this list.
    """
    names = sorted(graph.relations)
    if len(names) > MAX_RELATIONS_FOR_ENUMERATION:
        raise ValueError(
            f"plan enumeration supports at most "
            f"{MAX_RELATIONS_FOR_ENUMERATION} relations, got {len(names)}"
        )

    selectivity = {
        edge: estimator.join_selectivity(
            edge.left_relation,
            edge.left_attribute,
            edge.right_relation,
            edge.right_attribute,
        )
        for edge in graph.edges
    }

    def subset_rows(subset: frozenset[str]) -> float:
        rows = 1.0
        for name in subset:
            # Planner input: every relation in the join graph must be
            # ANALYZEd, so the strict KeyError is the right failure.
            rows *= estimator.scan_cardinality(name)  # repolint: disable=R006
        for edge, sel in selectivity.items():
            if edge.left_relation in subset and edge.right_relation in subset:
                rows *= sel
        return rows

    plans: dict[frozenset[str], list[Plan]] = {}
    for name in names:
        plans[frozenset({name})] = [
            ScanPlan(name, estimator.scan_cardinality(name))  # repolint: disable=R006
        ]

    for size in range(2, len(names) + 1):
        for subset_tuple in combinations(names, size):
            subset = frozenset(subset_tuple)
            rows = subset_rows(subset)
            alternatives: list[Plan] = []
            members = sorted(subset)
            seen_splits = set()
            for split_size in range(1, size):
                for right_tuple in combinations(members, split_size):
                    right_set = frozenset(right_tuple)
                    left_set = subset - right_set
                    # Each unordered split once, with a canonical orientation;
                    # build/probe role choice is the cost model's concern.
                    key = frozenset((left_set, right_set))
                    if key in seen_splits:
                        continue
                    seen_splits.add(key)
                    if left_set not in plans or right_set not in plans:
                        continue
                    crossing = graph.crossing_edges(left_set, right_set)
                    if len(crossing) != 1:
                        continue
                    edge = crossing[0]
                    for left_plan in plans[left_set]:
                        for right_plan in plans[right_set]:
                            alternatives.append(
                                JoinPlan(
                                    left=left_plan,
                                    right=right_plan,
                                    left_attribute=edge.qualified_left(),
                                    right_attribute=edge.qualified_right(),
                                    estimated_rows=rows,
                                )
                            )
            if alternatives:
                plans[subset] = alternatives

    full = frozenset(names)
    if full not in plans:
        raise RuntimeError("no connected plan covers all relations")
    return plans[full]


def count_plans(num_relations: int) -> int:
    """Number of unordered bushy trees over a *chain* of that many relations.

    Useful for sanity checks in tests; chains admit
    ``C(2(n−1), n−1) / n`` (Catalan) shapes before symmetry pruning — the
    enumeration above collapses left/right mirror images, so tests compare
    against explicitly constructed small cases instead of this closed form.
    """
    ensure_positive_int(num_relations, "num_relations")
    from math import comb

    n = num_relations - 1
    return comb(2 * n, n) // (n + 1)
