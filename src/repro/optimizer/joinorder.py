"""System-R-style dynamic-programming join ordering over tree queries.

The orderer enumerates connected sub-plans bottom-up (bushy by default,
optionally left-deep), scoring them with the histogram-backed
:class:`~repro.optimizer.cardinality.CardinalityEstimator` and a
:class:`~repro.optimizer.cost.CostModel`.  Join graphs are restricted to
*tree* queries — the paper's query class — so every connected split is
crossed by exactly one join edge.

:func:`plan_true_cost` replays a chosen plan on the actual relations,
materialising every intermediate result, which lets examples and tests
compare the plan an estimator *picks* against the plan that is *actually*
cheapest — the end-to-end consequence of histogram quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Optional, Sequence

from repro.engine.relation import Relation
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.plans import JoinPlan, Plan, ScanPlan


@dataclass(frozen=True)
class JoinEdge:
    """One equality-join predicate between two relations."""

    left_relation: str
    left_attribute: str
    right_relation: str
    right_attribute: str

    def touches(self, relation: str) -> bool:
        return relation in (self.left_relation, self.right_relation)

    def qualified_left(self) -> str:
        return f"{self.left_relation}.{self.left_attribute}"

    def qualified_right(self) -> str:
        return f"{self.right_relation}.{self.right_attribute}"


class JoinGraph:
    """A tree-shaped join query over engine relations."""

    def __init__(self, relations: Sequence[Relation], edges: Sequence[JoinEdge]):
        self.relations = {r.name: r for r in relations}
        if len(self.relations) != len(relations):
            raise ValueError("relation names must be distinct")
        self.edges = tuple(edges)
        for edge in self.edges:
            for rel, attr in (
                (edge.left_relation, edge.left_attribute),
                (edge.right_relation, edge.right_attribute),
            ):
                if rel not in self.relations:
                    raise ValueError(f"edge references unknown relation {rel!r}")
                if attr not in self.relations[rel].schema:
                    raise ValueError(f"relation {rel!r} has no attribute {attr!r}")
        self._check_tree()

    def _check_tree(self) -> None:
        names = list(self.relations)
        if len(self.edges) != len(names) - 1:
            raise ValueError(
                f"a tree query over {len(names)} relations needs "
                f"{len(names) - 1} join edges, got {len(self.edges)}"
            )
        # Union-find connectivity + acyclicity.
        parent = {name: name for name in names}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for edge in self.edges:
            a, b = find(edge.left_relation), find(edge.right_relation)
            if a == b:
                raise ValueError("join graph contains a cycle; tree queries only")
            parent[a] = b
        roots = {find(name) for name in names}
        if len(roots) != 1:
            raise ValueError("join graph is disconnected")

    def crossing_edges(
        self, left: frozenset[str], right: frozenset[str]
    ) -> list[JoinEdge]:
        """Edges with one endpoint in each side."""
        crossing = []
        for edge in self.edges:
            in_left = edge.left_relation in left
            in_right = edge.right_relation in right
            if in_left and in_right:
                crossing.append(edge)
            elif edge.left_relation in right and edge.right_relation in left:
                crossing.append(
                    JoinEdge(
                        edge.right_relation,
                        edge.right_attribute,
                        edge.left_relation,
                        edge.left_attribute,
                    )
                )
        return crossing


def optimal_join_order(
    graph: JoinGraph,
    estimator: CardinalityEstimator,
    cost_model: Optional[CostModel] = None,
    *,
    left_deep: bool = False,
) -> Plan:
    """Find the cheapest plan by dynamic programming over connected subsets.

    Cardinalities compose multiplicatively: the estimate for a relation
    subset is the product of base cardinalities and of the per-edge join
    selectivities inside the subset (the classical independence model on
    top of per-edge histogram estimates).
    """
    cost_model = cost_model or CostModel()
    names = sorted(graph.relations)

    selectivity = {
        edge: estimator.join_selectivity(
            edge.left_relation,
            edge.left_attribute,
            edge.right_relation,
            edge.right_attribute,
        )
        for edge in graph.edges
    }

    def subset_rows(subset: frozenset[str]) -> float:
        rows = 1.0
        for name in subset:
            # Planner input: every relation in the join graph must be
            # ANALYZEd, so the strict KeyError is the right failure.
            rows *= estimator.scan_cardinality(name)  # repolint: disable=R006
        for edge, sel in selectivity.items():
            if edge.left_relation in subset and edge.right_relation in subset:
                rows *= sel
        return rows

    best: dict[frozenset[str], Plan] = {}
    for name in names:
        singleton = frozenset({name})
        best[singleton] = ScanPlan(
            name, estimator.scan_cardinality(name)  # repolint: disable=R006
        )

    for size in range(2, len(names) + 1):
        for subset_tuple in combinations(names, size):
            subset = frozenset(subset_tuple)
            rows = subset_rows(subset)
            best_plan: Optional[Plan] = None
            best_cost = float("inf")
            # Enumerate splits: right side is any proper non-empty subset.
            members = sorted(subset)
            for split_size in range(1, size):
                if left_deep and split_size != 1:
                    continue
                for right_tuple in combinations(members, split_size):
                    right_set = frozenset(right_tuple)
                    left_set = subset - right_set
                    if left_set not in best or right_set not in best:
                        continue
                    crossing = graph.crossing_edges(left_set, right_set)
                    if len(crossing) != 1:
                        continue  # not a valid tree split (or a cross product)
                    edge = crossing[0]
                    plan = JoinPlan(
                        left=best[left_set],
                        right=best[right_set],
                        left_attribute=edge.qualified_left(),
                        right_attribute=edge.qualified_right(),
                        estimated_rows=rows,
                    )
                    cost = cost_model.plan_cost(plan)
                    if cost < best_cost:
                        best_cost = cost
                        best_plan = plan
            if best_plan is not None:
                best[subset] = best_plan

    full = frozenset(names)
    if full not in best:
        raise RuntimeError("no connected plan covers all relations")
    return best[full]


# ----------------------------------------------------------------------
# Replaying a plan on the actual data
# ----------------------------------------------------------------------

def _materialize(plan: Plan, graph: JoinGraph) -> list[dict[str, object]]:
    """Execute *plan* returning rows keyed by qualified attribute names."""
    if isinstance(plan, ScanPlan):
        relation = graph.relations[plan.relation]
        names = [f"{plan.relation}.{a}" for a in relation.schema.names]
        return [dict(zip(names, row)) for row in relation.rows()]
    if isinstance(plan, JoinPlan):
        left_rows = _materialize(plan.left, graph)
        right_rows = _materialize(plan.right, graph)
        table: dict = {}
        for row in right_rows:
            table.setdefault(row[plan.right_attribute], []).append(row)
        output = []
        for row in left_rows:
            for match in table.get(row[plan.left_attribute], ()):  # hash probe
                merged = dict(row)
                merged.update(match)
                output.append(merged)
        return output
    raise TypeError(f"unknown plan node {type(plan).__name__}")


def plan_true_rows(plan: Plan, graph: JoinGraph) -> dict[Plan, float]:
    """Actual cardinality of every node of *plan*, materialised bottom-up."""
    if not isinstance(plan, Plan):
        raise TypeError(f"plan must be a Plan node, got {type(plan).__name__}")
    sizes: dict[Plan, float] = {}

    def recurse(node: Plan) -> list[dict[str, object]]:
        if isinstance(node, ScanPlan):
            rows = _materialize(node, graph)
        else:
            left_rows = recurse(node.left)
            right_rows = recurse(node.right)
            table: dict = {}
            for row in right_rows:
                table.setdefault(row[node.right_attribute], []).append(row)
            rows = []
            for row in left_rows:
                for match in table.get(row[node.left_attribute], ()):  # probe
                    merged = dict(row)
                    merged.update(match)
                    rows.append(merged)
        sizes[node] = float(len(rows))
        return rows

    recurse(plan)
    return sizes


def plan_true_cost(
    plan: Plan, graph: JoinGraph, cost_model: Optional[CostModel] = None
) -> float:
    """Cost of *plan* evaluated on the *actual* intermediate sizes.

    The gap between this and the estimator-scored cost of the chosen plan is
    precisely what bad histograms inflict on an optimizer.
    """
    if not isinstance(plan, Plan):
        raise TypeError(f"plan must be a Plan node, got {type(plan).__name__}")
    cost_model = cost_model or CostModel()
    sizes = plan_true_rows(plan, graph)
    return cost_model.plan_cost(plan, row_source=lambda node: sizes[node])
