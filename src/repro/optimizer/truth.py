"""Exact plan cardinalities without materialisation.

Theorem 2.1 (and its tensor generalisation) applies to *sub*-queries too:
the cardinality of the join of any connected relation subset equals the
contraction of the relations' frequency tensors over the subset's internal
join edges, with all other axes marginalised.  This module hash-counts one
tensor per relation and evaluates each plan node with a single
:func:`numpy.einsum` — exact ground truth at a fraction of the cost of
executing the join, which keeps plan-ranking studies tractable.

``plan_true_rows_counted`` is verified against the materialising
``plan_true_rows`` in the test suite.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.optimizer.joinorder import JoinGraph
from repro.optimizer.plans import JoinPlan, Plan, ScanPlan

_ALPHABET = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


class CountedTruth:
    """Exact subset cardinalities for a tree query, by tensor contraction."""

    def __init__(self, graph: JoinGraph):
        self._graph = graph
        # Per-edge value domains: union of observed values on both sides.
        self._edge_domains: list[list] = []
        for edge in graph.edges:
            values = set(graph.relations[edge.left_relation].column(edge.left_attribute))
            values |= set(graph.relations[edge.right_relation].column(edge.right_attribute))
            self._edge_domains.append(sorted(values))
        self._tensors = {
            name: self._count_tensor(name) for name in graph.relations
        }
        self._cache: Dict[frozenset, float] = {}

    def _incident_edges(self, relation: str) -> list[tuple[int, str]]:
        """Edges touching *relation* as ``(edge_index, attribute)`` pairs."""
        incident = []
        for index, edge in enumerate(self._graph.edges):
            if edge.left_relation == relation:
                incident.append((index, edge.left_attribute))
            elif edge.right_relation == relation:
                incident.append((index, edge.right_attribute))
        return incident

    def _count_tensor(self, relation_name: str) -> tuple[np.ndarray, tuple[int, ...]]:
        relation = self._graph.relations[relation_name]
        incident = self._incident_edges(relation_name)
        if not incident:
            # Single-relation "query": a 0-d count.
            return np.array(float(relation.cardinality)), ()
        shape = tuple(len(self._edge_domains[index]) for index, _ in incident)
        indexes = [
            {value: i for i, value in enumerate(self._edge_domains[index])}
            for index, _ in incident
        ]
        positions = [relation.schema.position(attr) for _, attr in incident]
        tensor = np.zeros(shape)
        for row in relation.rows():
            coordinate = tuple(
                indexes[k][row[positions[k]]] for k in range(len(incident))
            )
            tensor[coordinate] += 1.0
        return tensor, tuple(index for index, _ in incident)

    def subset_cardinality(self, subset: frozenset) -> float:
        """Exact cardinality of joining the (connected) relation subset."""
        subset = frozenset(subset)
        if subset in self._cache:
            return self._cache[subset]
        if not subset:
            raise ValueError("subset must be non-empty")
        operands = []
        specs = []
        for name in sorted(subset):
            tensor, axes = self._tensors[name]
            operands.append(tensor)
            specs.append("".join(_ALPHABET[a] for a in axes))
        result = float(np.einsum(",".join(specs) + "->", *operands))
        self._cache[subset] = result
        return result

    def plan_rows(self, plan: Plan) -> dict[Plan, float]:
        """Exact cardinality of every node of *plan*."""
        sizes: dict[Plan, float] = {}

        def recurse(node: Plan) -> None:
            sizes[node] = self.subset_cardinality(node.relations)
            if isinstance(node, JoinPlan):
                recurse(node.left)
                recurse(node.right)

        recurse(plan)
        return sizes


def plan_true_rows_counted(plan: Plan, graph: JoinGraph) -> dict[Plan, float]:
    """Counting-based equivalent of ``plan_true_rows`` (no materialisation)."""
    if not isinstance(plan, Plan):
        raise TypeError(f"plan must be a Plan node, got {type(plan).__name__}")
    return CountedTruth(graph).plan_rows(plan)
