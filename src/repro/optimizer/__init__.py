"""Optimizer substrate: histogram-backed cardinality estimation + join ordering.

Query optimizers are the consumers of everything this reproduction builds:
"the validity of the optimizer's decisions may be affected" by estimate
errors (the paper's opening motivation, citing Selinger et al. and the
exponential error propagation of Ioannidis & Christodoulakis).  This package
provides a compact System-R-style optimizer — a cardinality model reading
the statistics catalog, a cost model, plan trees, and dynamic-programming
join ordering — so the effect of histogram quality on *plan choice* can be
demonstrated end to end.
"""

from __future__ import annotations

from repro.optimizer.cardinality import DEFAULT_EQ_SELECTIVITY, CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.plans import JoinPlan, Plan, ScanPlan
from repro.optimizer.enumeration import enumerate_plans
from repro.optimizer.truth import CountedTruth, plan_true_rows_counted
from repro.optimizer.joinorder import (
    JoinEdge,
    JoinGraph,
    optimal_join_order,
    plan_true_cost,
    plan_true_rows,
)

__all__ = [
    "DEFAULT_EQ_SELECTIVITY",
    "CardinalityEstimator",
    "CostModel",
    "Plan",
    "ScanPlan",
    "JoinPlan",
    "JoinEdge",
    "JoinGraph",
    "optimal_join_order",
    "plan_true_cost",
    "plan_true_rows",
    "enumerate_plans",
    "CountedTruth",
    "plan_true_rows_counted",
]
