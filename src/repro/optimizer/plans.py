"""Plan trees: scans and binary hash joins with estimated sizes and costs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class ScanPlan:
    """A base-relation scan."""

    relation: str
    estimated_rows: float

    @property
    def relations(self) -> frozenset[str]:
        return frozenset({self.relation})

    @property
    def estimated_cost(self) -> float:
        """Scan cost: one unit per tuple read."""
        return self.estimated_rows

    def pretty(self, indent: int = 0) -> str:
        return " " * indent + f"Scan({self.relation}) rows≈{self.estimated_rows:.0f}"


@dataclass(frozen=True)
class JoinPlan:
    """A hash join of two sub-plans on one attribute pair."""

    left: "Plan"
    right: "Plan"
    left_attribute: str
    right_attribute: str
    estimated_rows: float

    @property
    def relations(self) -> frozenset[str]:
        return self.left.relations | self.right.relations

    @property
    def estimated_cost(self) -> float:
        """Cumulative cost: children plus this join's build/probe/output work."""
        return (
            self.left.estimated_cost
            + self.right.estimated_cost
            + self.local_cost
        )

    @property
    def local_cost(self) -> float:
        """This join alone: build + probe + output, one unit per tuple."""
        return self.left.estimated_rows + self.right.estimated_rows + self.estimated_rows

    def pretty(self, indent: int = 0) -> str:
        pad = " " * indent
        header = (
            f"{pad}HashJoin({self.left_attribute} = {self.right_attribute}) "
            f"rows≈{self.estimated_rows:.0f} cost≈{self.estimated_cost:.0f}"
        )
        return "\n".join(
            [header, self.left.pretty(indent + 2), self.right.pretty(indent + 2)]
        )


Plan = Union[ScanPlan, JoinPlan]
