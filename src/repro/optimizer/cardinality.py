"""Histogram-backed cardinality estimation for the optimizer.

Estimates selection and equality-join cardinalities from
:class:`~repro.engine.catalog.StatsCatalog` entries.  Join estimation follows
the structure production systems derived from this line of work (e.g. the
most-common-value logic of DB2 and PostgreSQL): explicitly stored
frequencies are matched exactly, and the implicit remainders are matched
under uniformity + containment assumptions.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.engine.catalog import CatalogEntry, CompactEndBiased, StatsCatalog

#: Fallback equality-join/selection selectivity when no statistics exist —
#: the venerable System R magic constant.
DEFAULT_EQ_SELECTIVITY = 0.1


def _compact_form(entry: CatalogEntry) -> Optional[CompactEndBiased]:
    """Best compact view of an entry: stored or derived from its histogram."""
    if entry.compact is not None:
        return entry.compact
    if entry.histogram is not None and entry.histogram.values is not None:
        if entry.histogram.is_biased():
            return CompactEndBiased.from_histogram(entry.histogram)
    return None


class CardinalityEstimator:
    """Estimates operator output cardinalities from catalog statistics."""

    def __init__(self, catalog: StatsCatalog):
        self._catalog = catalog

    # ------------------------------------------------------------------
    # Base-relation and selection estimates
    # ------------------------------------------------------------------

    def scan_cardinality(self, relation: str) -> float:
        """Tuple count of *relation* according to the catalog."""
        totals = [e.total_tuples for e in self._catalog.entries() if e.relation == relation]
        if not totals:
            raise KeyError(f"no statistics for relation {relation!r}; run ANALYZE")
        return max(totals)

    def equality_selection(self, relation: str, attribute: str, value: Hashable) -> float:
        """Estimated cardinality of ``σ_{attribute = value}(relation)``."""
        entry = self._catalog.get(relation, attribute)
        if entry is None:
            return self.scan_cardinality(relation) * DEFAULT_EQ_SELECTIVITY
        return entry.estimate_frequency(value)

    def range_selection(
        self,
        relation: str,
        attribute: str,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ) -> float:
        """Estimated cardinality of a range selection.

        Requires a value-aware histogram (Section 6: ranges are disjunctive
        equality selections); falls back to a 1/3 selectivity guess without
        one, mirroring System R defaults.
        """
        entry = self._catalog.get(relation, attribute)
        if entry is not None and entry.histogram is not None and entry.histogram.values is not None:
            from repro.core.estimator import estimate_range_selection

            return estimate_range_selection(entry.histogram, low, high)
        return self.scan_cardinality(relation) / 3.0

    # ------------------------------------------------------------------
    # Join estimates
    # ------------------------------------------------------------------

    def join_cardinality(
        self,
        left_relation: str,
        left_attribute: str,
        right_relation: str,
        right_attribute: str,
    ) -> float:
        """Estimated equality-join cardinality between two base relations."""
        left = self._catalog.get(left_relation, left_attribute)
        right = self._catalog.get(right_relation, right_attribute)
        if left is None or right is None:
            rows_left = self.scan_cardinality(left_relation)
            rows_right = self.scan_cardinality(right_relation)
            return rows_left * rows_right * DEFAULT_EQ_SELECTIVITY
        return self.join_from_entries(left, right)

    def join_from_entries(self, left: CatalogEntry, right: CatalogEntry) -> float:
        """Join estimate from two catalog entries.

        Preference order of the available information:

        1. **Full value-aware histograms on both sides** — sum the product
           of per-value approximations over the intersection of the
           recorded domains (Theorem 2.1 on the two histogram matrices).
           Serial histograms store every value explicitly, so this is the
           most faithful model available.
        2. **Compact (end-biased) statistics** — explicit (value,
           frequency) pairs plus a uniform remainder:

           * explicit x explicit — exact product on shared values;
           * explicit x remainder — an explicit value absent from the other
             side's explicit list matches one of its remainder values under
             containment (it contributes the remainder average);
           * remainder x remainder — ``min(rem_left, rem_right)`` values
             are assumed common (containment), each contributing the
             product of the remainder averages.
        3. **Uniform assumption** — ``|L|·|R| / max(d_L, d_R)``.
        """
        if (
            left.histogram is not None
            and left.histogram.values is not None
            and right.histogram is not None
            and right.histogram.values is not None
        ):
            from repro.core.estimator import estimate_join_size

            return estimate_join_size(left.histogram, right.histogram)

        left_compact = _compact_form(left)
        right_compact = _compact_form(right)
        if left_compact is None or right_compact is None:
            return self._uniform_join(left, right)

        total = 0.0
        for value, freq in left_compact.explicit.items():
            if value in right_compact.explicit:
                total += freq * right_compact.explicit[value]
            elif right_compact.remainder_count > 0:
                total += freq * right_compact.remainder_average
        for value, freq in right_compact.explicit.items():
            if value not in left_compact.explicit and left_compact.remainder_count > 0:
                total += freq * left_compact.remainder_average
        common_remainder = min(
            left_compact.remainder_count, right_compact.remainder_count
        )
        total += (
            common_remainder
            * left_compact.remainder_average
            * right_compact.remainder_average
        )
        return total

    def _uniform_join(self, left: CatalogEntry, right: CatalogEntry) -> float:
        """The System R uniform estimate ``|L|·|R| / max(d_L, d_R)``."""
        distinct = max(left.distinct_count, right.distinct_count, 1)
        return left.total_tuples * right.total_tuples / distinct

    def join_selectivity(
        self,
        left_relation: str,
        left_attribute: str,
        right_relation: str,
        right_attribute: str,
    ) -> float:
        """Join cardinality normalised by the Cartesian product size.

        The DP join orderer composes multi-join estimates multiplicatively
        from these per-edge selectivities (the classical independence
        assumption).
        """
        rows_left = self.scan_cardinality(left_relation)
        rows_right = self.scan_cardinality(right_relation)
        if rows_left == 0 or rows_right == 0:
            return 0.0
        estimate = self.join_cardinality(
            left_relation, left_attribute, right_relation, right_attribute
        )
        return estimate / (rows_left * rows_right)
