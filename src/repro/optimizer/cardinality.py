"""Histogram-backed cardinality estimation for the optimizer.

Estimates selection and equality-join cardinalities from
:class:`~repro.engine.catalog.StatsCatalog` entries.  Join estimation follows
the structure production systems derived from this line of work (e.g. the
most-common-value logic of DB2 and PostgreSQL): explicitly stored
frequencies are matched exactly, and the implicit remainders are matched
under uniformity + containment assumptions.

Since the serving-layer redesign, this class is a thin scalar adapter over
:class:`repro.serve.EstimationService`: every estimate is answered from the
service's compiled lookup tables, so optimizer scalar calls, planner
selectivities, and batched service probes all return bit-identical floats
and share one compiled-table cache.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.engine.catalog import CatalogEntry, StatsCatalog
from repro.serve.service import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    EstimationService,
)

__all__ = [
    "DEFAULT_EQ_SELECTIVITY",
    "DEFAULT_RANGE_SELECTIVITY",
    "CardinalityEstimator",
]


class CardinalityEstimator:
    """Estimates operator output cardinalities from catalog statistics.

    Parameters
    ----------
    catalog:
        The statistics catalog to estimate from.
    service:
        Optional pre-built :class:`~repro.serve.EstimationService` over the
        same catalog (e.g. a long-lived shared instance); by default a
        private service is created.
    on_error:
        Optional error policy (``"fallback" | "nan" | "raise"``) forwarded
        to every estimate call; ``None`` (default) defers to the service's
        own policy.
    """

    def __init__(
        self,
        catalog: StatsCatalog,
        *,
        service: Optional[EstimationService] = None,
        on_error: Optional[str] = None,
    ):
        if not isinstance(catalog, StatsCatalog):
            raise TypeError(
                f"catalog must be a StatsCatalog, got {type(catalog).__name__}"
            )
        if service is not None and service.catalog is not catalog:
            raise ValueError(
                "service must be built over the same catalog it estimates from"
            )
        self._catalog = catalog
        self._service = service if service is not None else EstimationService(catalog)
        self._on_error = on_error

    @property
    def service(self) -> EstimationService:
        """The estimation service answering this estimator's probes."""
        return self._service

    # ------------------------------------------------------------------
    # Base-relation and selection estimates
    # ------------------------------------------------------------------

    def scan_cardinality(self, relation: str) -> float:
        """Tuple count of *relation* according to the catalog.

        Deliberately strict like the service helper it forwards to: the DP
        join orderer treats an un-ANALYZEd base relation as a planning
        error, not an estimate to degrade.
        """
        # The strict introspection adapter itself; callers opt into KeyError.
        return self._service.scan_cardinality(relation)  # repolint: disable=R006

    def equality_selection(self, relation: str, attribute: str, value: Hashable) -> float:
        """Estimated cardinality of ``σ_{attribute = value}(relation)``."""
        return self._service.estimate_equality(
            relation, attribute, value, on_error=self._on_error
        )

    def range_selection(
        self,
        relation: str,
        attribute: str,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ) -> float:
        """Estimated cardinality of a range selection.

        Requires a value-aware histogram (Section 6: ranges are disjunctive
        equality selections); falls back to a 1/3 selectivity guess without
        one, mirroring System R defaults.
        """
        return self._service.estimate_range(
            relation, attribute, low, high, on_error=self._on_error
        )

    # ------------------------------------------------------------------
    # Join estimates
    # ------------------------------------------------------------------

    def join_cardinality(
        self,
        left_relation: str,
        left_attribute: str,
        right_relation: str,
        right_attribute: str,
    ) -> float:
        """Estimated equality-join cardinality between two base relations."""
        return self._service.estimate_join(
            left_relation,
            left_attribute,
            right_relation,
            right_attribute,
            on_error=self._on_error,
        )

    def join_from_entries(self, left: CatalogEntry, right: CatalogEntry) -> float:
        """Join estimate from two catalog entries (see the service docstring).

        Preference order: full value-aware histograms (Theorem 2.1 on the
        compiled tables), then compact end-biased statistics under the
        containment assumption, then the System R uniform estimate.
        """
        return self._service.join_entries(left, right)

    def join_selectivity(
        self,
        left_relation: str,
        left_attribute: str,
        right_relation: str,
        right_attribute: str,
    ) -> float:
        """Join cardinality normalised by the Cartesian product size.

        The DP join orderer composes multi-join estimates multiplicatively
        from these per-edge selectivities (the classical independence
        assumption).
        """
        # Selectivity needs the exact row counts; an unknown relation here
        # is a planner-input error, not an estimate to degrade.
        rows_left = self.scan_cardinality(left_relation)  # repolint: disable=R006
        rows_right = self.scan_cardinality(right_relation)  # repolint: disable=R006
        if rows_left == 0 or rows_right == 0:
            return 0.0
        estimate = self.join_cardinality(
            left_relation, left_attribute, right_relation, right_attribute
        )
        return estimate / (rows_left * rows_right)
