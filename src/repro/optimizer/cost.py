"""A simple hash-join cost model.

Costs are expressed in abstract "tuple touches": a scan pays one unit per
tuple; a hash join pays one unit per build tuple, per probe tuple, and per
output tuple.  The coefficients are configurable so sensitivity experiments
can skew the model, but the default unit weights already expose the
phenomenon under study: **cardinality mis-estimates translate into bad plan
choices**, because every term is driven by a cardinality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.optimizer.plans import JoinPlan, Plan, ScanPlan
from repro.util.validation import ensure_non_negative


@dataclass(frozen=True)
class CostModel:
    """Per-tuple weights of the three hash-join cost components."""

    scan_weight: float = 1.0
    build_weight: float = 1.0
    probe_weight: float = 1.0
    output_weight: float = 1.0

    def __post_init__(self):
        ensure_non_negative(self.scan_weight, "scan_weight")
        ensure_non_negative(self.build_weight, "build_weight")
        ensure_non_negative(self.probe_weight, "probe_weight")
        ensure_non_negative(self.output_weight, "output_weight")

    def plan_cost(
        self, plan: Plan, row_source: Optional[Callable[[Plan], float]] = None
    ) -> float:
        """Cost of *plan* using its estimated rows.

        With *row_source* — a callable mapping a plan node to a row count —
        the same formula is evaluated on substituted cardinalities, which is
        how :func:`~repro.optimizer.joinorder.plan_true_cost` scores a plan
        on *actual* sizes.
        """
        rows = row_source or (lambda node: node.estimated_rows)
        if isinstance(plan, ScanPlan):
            return self.scan_weight * rows(plan)
        if isinstance(plan, JoinPlan):
            return (
                self.plan_cost(plan.left, row_source)
                + self.plan_cost(plan.right, row_source)
                + self.build_weight * min(rows(plan.left), rows(plan.right))
                + self.probe_weight * max(rows(plan.left), rows(plan.right))
                + self.output_weight * rows(plan)
            )
        raise TypeError(f"unknown plan node {type(plan).__name__}")
