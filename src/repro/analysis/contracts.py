"""Runtime invariant contracts for the paper's algebraic guarantees.

The theory this reproduction rests on is a handful of invariants:

* a histogram's buckets **partition** the reference frequency vector exactly
  (Section 2.3) and its kind label matches the taxonomy — serial histograms
  never interleave bucket frequency ranges (Definition 2.1);
* bucket statistics are consistent: ``T_i = Σ freq``, ``v_i ≥ 0``,
  ``p_i·v_i ≥ 0``;
* the self-join error ``S − S' = Σ_i p_i·v_i`` is **non-negative**
  (Proposition 3.1), zero exactly when every bucket is univalued;
* every result-size estimate is finite and ``≥ 0`` (Theorem 2.1 products of
  non-negative frequencies).

This module checks them at runtime.  Checks are **off by default**; enable
with ``REPRO_CONTRACTS=1`` (or ``true``/``yes``/``on``) in the environment.
Hooks are wired into :mod:`repro.core.buckets`, :mod:`repro.core.histogram`,
:mod:`repro.core.construction`, :mod:`repro.core.estimator`, and
:mod:`repro.engine.operators`; all of them are duck-typed so this module
never imports the code it audits (no import cycles, no import cost).

A failed contract raises :class:`ContractViolation` (an ``AssertionError``
subclass) naming the invariant and the offending quantity.
"""

from __future__ import annotations

import functools
import math
import os
from typing import Any, Callable, TypeVar

#: Environment variable that switches the contract checks on.
CONTRACTS_ENV = "REPRO_CONTRACTS"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Relative tolerance for floating-point non-negativity checks: Proposition
#: 3.1 guarantees exact non-negativity in real arithmetic; accumulated
#: float64 rounding may dip a hair below zero on large sums.
REL_TOL = 1e-9

_F = TypeVar("_F", bound=Callable[..., Any])


class ContractViolation(AssertionError):
    """A paper-level invariant failed at runtime."""


def contracts_enabled() -> bool:
    """True when ``REPRO_CONTRACTS`` requests runtime invariant checking."""
    return os.environ.get(CONTRACTS_ENV, "").strip().lower() in _TRUTHY


def require(condition: bool, message: str) -> None:
    """Raise :class:`ContractViolation` with *message* unless *condition*."""
    if not condition:
        raise ContractViolation(message)


# ----------------------------------------------------------------------
# Scalar contracts
# ----------------------------------------------------------------------


def check_estimate(value: float, label: str) -> float:
    """Assert a result-size estimate is finite and non-negative; pass it through.

    Every estimator in the system approximates a count, and counts of tuples
    are finite non-negative reals (Theorem 2.1 sums products of non-negative
    frequencies).  ``relative_error`` may legitimately return ``inf``; that
    function is not routed through this check.
    """
    value = float(value)
    require(
        not math.isnan(value), f"{label}: estimate is NaN, expected a finite count"
    )
    require(
        math.isfinite(value), f"{label}: estimate is {value}, expected finite"
    )
    require(value >= 0.0, f"{label}: estimate is {value}, expected >= 0")
    return value


def check_non_negative_error(error: float, scale: float, label: str) -> float:
    """Assert a Proposition 3.1 error term is non-negative up to rounding.

    ``S − S' = Σ_i p_i·v_i`` is a sum of non-negative terms, so any genuine
    negativity is a construction bug; only float rounding of order
    ``REL_TOL · scale`` is forgiven.
    """
    error = float(error)
    tolerance = REL_TOL * max(abs(float(scale)), 1.0)
    require(
        error >= -tolerance,
        f"{label}: Proposition 3.1 violated — self-join error {error} < 0 "
        f"(tolerance {tolerance})",
    )
    return error


# ----------------------------------------------------------------------
# Structural contracts (duck-typed over Bucket / Histogram)
# ----------------------------------------------------------------------


def check_bucket(bucket: Any) -> None:
    """Assert one bucket's statistics are internally consistent."""
    frequencies = bucket.frequencies
    require(
        all(math.isfinite(float(f)) and float(f) >= 0.0 for f in frequencies),
        "bucket frequencies must be finite and non-negative",
    )
    total = float(sum(float(f) for f in frequencies))
    tolerance = REL_TOL * max(total, 1.0)
    require(
        abs(bucket.total - total) <= tolerance,
        f"bucket total T_i={bucket.total} disagrees with Σ freq={total}",
    )
    require(bucket.count == len(frequencies), "bucket count p_i must equal |bucket|")
    require(bucket.variance >= 0.0, "bucket variance v_i must be non-negative")
    require(bucket.sse >= 0.0, "bucket error contribution p_i·v_i must be >= 0")


def check_histogram(histogram: Any) -> None:
    """Assert the histogram-level invariants of Sections 2-3.

    Checks the bucket partition covers every frequency index exactly once,
    totals are conserved (``Σ_i T_i = Σ_v f_v``), the kind label honours the
    taxonomy (trivial/serial/end-biased), and Proposition 3.1 holds.
    """
    indices = sorted(i for group in histogram.index_groups for i in group)
    size = len(histogram.frequencies)
    require(
        indices == list(range(size)),
        "bucket index groups must partition the frequency indices exactly "
        f"(got {len(indices)} slots over {size} frequencies)",
    )
    for bucket in histogram.buckets:
        check_bucket(bucket)
    grand_total = float(sum(float(f) for f in histogram.frequencies))
    bucket_total = float(sum(b.total for b in histogram.buckets))
    tolerance = REL_TOL * max(grand_total, 1.0)
    require(
        abs(grand_total - bucket_total) <= tolerance,
        f"Σ_i T_i={bucket_total} must conserve the relation total "
        f"{grand_total}",
    )
    kind = getattr(histogram, "kind", "custom")
    if kind == "trivial":
        require(
            histogram.bucket_count == 1, "trivial histograms have exactly one bucket"
        )
    if kind in {"serial", "end-biased", "biased"}:
        require(
            histogram.is_serial() or kind == "biased",
            f"{kind} histogram interleaves bucket frequency ranges "
            "(Definition 2.1 violated)",
        )
    if kind == "end-biased":
        require(
            histogram.is_end_biased(),
            "end-biased histogram does not place univalued buckets at the "
            "frequency extremes (Definition 2.2 violated)",
        )
    estimate = check_estimate(histogram.self_join_estimate(), "self_join_estimate")
    check_non_negative_error(
        histogram.self_join_error(), scale=max(estimate, grand_total), label=kind
    )


def maybe_check_histogram(histogram: Any) -> None:
    """Contract hook: :func:`check_histogram` when contracts are enabled."""
    if contracts_enabled():
        check_histogram(histogram)


def maybe_check_bucket(bucket: Any) -> None:
    """Contract hook: :func:`check_bucket` when contracts are enabled."""
    if contracts_enabled():
        check_bucket(bucket)


# ----------------------------------------------------------------------
# Decorators
# ----------------------------------------------------------------------


def returns_estimate(function: _F) -> _F:
    """Decorate an estimator so its result is contract-checked when enabled."""

    @functools.wraps(function)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        result = function(*args, **kwargs)
        if contracts_enabled():
            check_estimate(result, function.__qualname__)
        return result

    return wrapper  # type: ignore[return-value]


def postcondition(check: Callable[[Any], Any]) -> Callable[[_F], _F]:
    """Decorate a function with an arbitrary result contract.

    ``check`` receives the return value and raises :class:`ContractViolation`
    (directly or via :func:`require`) on breach; it runs only when
    :func:`contracts_enabled` is true.
    """

    def decorate(function: _F) -> _F:
        @functools.wraps(function)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = function(*args, **kwargs)
            if contracts_enabled():
                check(result)
            return result

        return wrapper  # type: ignore[return-value]

    return decorate
