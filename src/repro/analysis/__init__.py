"""Static analysis and runtime contracts for the reproduction.

Two complementary halves keep the paper's guarantees true as the codebase
grows:

* :mod:`repro.analysis.linter` / :mod:`repro.analysis.rules` — **repolint**,
  an AST linter enforcing project coding contracts (RNG discipline, boundary
  validation, explicit dtypes in hot paths, no caller-array mutation,
  annotation completeness).  Run it with ``repro lint``.
* :mod:`repro.analysis.contracts` — runtime invariant checks for the
  paper-level algebra (bucket partitions, Proposition 3.1 non-negativity,
  finite non-negative estimates), enabled with ``REPRO_CONTRACTS=1``.
"""

from __future__ import annotations

from repro.analysis.contracts import (
    CONTRACTS_ENV,
    ContractViolation,
    check_bucket,
    check_estimate,
    check_histogram,
    check_non_negative_error,
    contracts_enabled,
    maybe_check_bucket,
    maybe_check_histogram,
    postcondition,
    require,
    returns_estimate,
)
from repro.analysis.concurrency import (
    ModuleConcurrency,
    analyze_source,
    lock_order_violations,
    module_concurrency,
)
from repro.analysis.diagnostics import Severity, Violation, format_report
from repro.analysis.linter import (
    LintConfig,
    LintError,
    LintModule,
    build_module,
    discover_changed_files,
    discover_files,
    exit_code,
    lint_module,
    lint_paths,
    lint_source,
    parse_rule_selection,
)
from repro.analysis.rules import ALL_RULES, RULES_BY_CODE, Rule
from repro.analysis.sarif import (
    SarifValidationError,
    to_sarif,
    to_sarif_json,
    validate_sarif,
)

__all__ = [
    "CONTRACTS_ENV",
    "ContractViolation",
    "check_bucket",
    "check_estimate",
    "check_histogram",
    "check_non_negative_error",
    "contracts_enabled",
    "maybe_check_bucket",
    "maybe_check_histogram",
    "postcondition",
    "require",
    "returns_estimate",
    "Severity",
    "Violation",
    "format_report",
    "LintConfig",
    "LintError",
    "LintModule",
    "ModuleConcurrency",
    "analyze_source",
    "build_module",
    "discover_changed_files",
    "discover_files",
    "exit_code",
    "lint_module",
    "lint_paths",
    "lint_source",
    "lock_order_violations",
    "module_concurrency",
    "parse_rule_selection",
    "ALL_RULES",
    "RULES_BY_CODE",
    "Rule",
    "SarifValidationError",
    "to_sarif",
    "to_sarif_json",
    "validate_sarif",
]
