"""Diagnostic primitives shared by the linter and its CLI front-end.

A :class:`Violation` is one finding of one rule at one source location; the
formatting here is what ``repro lint`` prints, one line per finding, in the
conventional ``path:line:col: CODE message`` shape so editors and CI
annotators can point at the offending line.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How a finding affects the lint exit code.

    ``ERROR`` findings always fail the run; ``WARNING`` findings fail only
    under ``--strict`` (the mode CI runs in, so the shipped tree must be
    clean of both).
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True, order=True)
class Violation:
    """One rule finding, anchored to a file position."""

    path: str
    line: int
    col: int
    rule: str = field(compare=False)
    message: str = field(compare=False)
    severity: Severity = field(compare=False, default=Severity.ERROR)

    def format(self) -> str:
        """Render as ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def format_report(violations: list[Violation]) -> str:
    """Render a sorted, newline-joined report plus a one-line summary."""
    lines = [v.format() for v in sorted(violations)]
    errors = sum(1 for v in violations if v.severity is Severity.ERROR)
    warnings = len(violations) - errors
    lines.append(
        f"repolint: {errors} error(s), {warnings} warning(s) "
        f"in {len({v.path for v in violations})} file(s)"
        if violations
        else "repolint: clean"
    )
    return "\n".join(lines)
