"""repolint: the project linter engine.

Parses Python sources into :class:`LintModule` objects (AST + suppression
comments + path-based classification) and runs the rule registry from
:mod:`repro.analysis.rules` over them.  Use :func:`lint_paths` for trees,
:func:`lint_source` for in-memory snippets (the fixture tests use it), and
``repro lint`` from the command line.

Suppression and classification directives are magic comments:

* ``# repolint: disable=R001,R004`` — suppress those rules on that line
  (a comment on any physical line of a multi-line statement covers the
  whole statement; on a compound-statement header, the header region);
* ``# repolint: disable-file=R009`` — suppress those rules everywhere in
  the file (unlike ``skip-file``, the other rules still run);
* ``# repolint: boundary-exempt`` — on or just above a ``def``, exempt the
  function from R002;
* ``# repolint: skip-file`` — anywhere, skip the whole file;
* ``# repolint: hot-path`` / ``# repolint: boundary`` / ``# repolint:
  rng-module`` — force the file's classification regardless of its path.

Tree rules (R010's lock-order graph) need every file's summary at once,
so :func:`lint_paths` runs in two stages: per-file module rules — in
worker processes when ``jobs > 1`` — then the tree pass over the collected
:class:`~repro.analysis.concurrency.ModuleConcurrency` summaries.
"""

from __future__ import annotations

import ast
import re
import subprocess
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.analysis.concurrency import ModuleConcurrency, module_concurrency
from repro.analysis.diagnostics import Severity, Violation
from repro.analysis.rules import ALL_RULES, RULES_BY_CODE, Rule

_DIRECTIVE_RE = re.compile(r"#\s*repolint:\s*(?P<body>[^#]*)")

#: Path suffixes (posix) that default to hot-path classification (R003).
DEFAULT_HOT_PATH_PARTS = ("repro/core/", "repro/engine/", "repro/serve/")

#: Path suffixes that default to boundary classification (R002).
DEFAULT_BOUNDARY_PARTS = (
    "repro/core/",
    "repro/engine/",
    "repro/optimizer/",
    "repro/serve/",
)

#: The one module allowed to touch numpy.random entry points directly.
DEFAULT_RNG_MODULES = ("repro/util/rng.py",)

#: Paths whose public defs must be fully annotated (R005).  Scripts such as
#: benchmarks only need the future import, not exhaustive annotations.
DEFAULT_PUBLIC_API_PARTS = ("repro/",)


@dataclass(frozen=True)
class LintConfig:
    """Which rules run and how files are classified."""

    select: Optional[frozenset[str]] = None  # None means every rule
    hot_path_parts: tuple[str, ...] = DEFAULT_HOT_PATH_PARTS
    boundary_parts: tuple[str, ...] = DEFAULT_BOUNDARY_PARTS
    rng_modules: tuple[str, ...] = DEFAULT_RNG_MODULES
    public_api_parts: tuple[str, ...] = DEFAULT_PUBLIC_API_PARTS

    def rules(self) -> list[Rule]:
        selected = []
        for rule_cls in ALL_RULES:
            if self.select is None or rule_cls.code in self.select:
                selected.append(rule_cls())
        return selected


@dataclass
class LintModule:
    """One parsed source file plus everything rules need to judge it."""

    path: str
    tree: ast.Module
    lines: list[str]
    suppressed: dict[int, set[str]] = field(default_factory=dict)
    file_suppressed: set[str] = field(default_factory=set)
    directives: set[str] = field(default_factory=set)
    is_hot_path: bool = False
    is_boundary: bool = False
    is_rng_module: bool = False
    is_public_api: bool = False

    def is_suppressed(self, violation: Violation) -> bool:
        return _is_suppressed(self.suppressed, self.file_suppressed, violation)

    def function_is_exempt(self, node: ast.AST, marker: str) -> bool:
        """True when *marker* appears in the function's signature region.

        The region spans from the first decorator (or the line above the
        ``def``) through the line before the first body statement, so the
        marker may sit on the ``def`` line, a decorator line, a continuation
        line of a long signature, or immediately above the function.
        """
        decorators = getattr(node, "decorator_list", [])
        start = min([node.lineno] + [d.lineno for d in decorators]) - 1
        body = getattr(node, "body", None)
        end = body[0].lineno - 1 if body else node.lineno
        for lineno in range(max(start, 1), end + 1):
            if lineno <= len(self.lines) and marker in self.lines[lineno - 1]:
                return True
        return False


class LintError(Exception):
    """A file could not be linted (unreadable or unparseable)."""


def _is_suppressed(
    suppressed: dict[int, set[str]],
    file_suppressed: set[str],
    violation: Violation,
) -> bool:
    if violation.rule in file_suppressed or "*" in file_suppressed:
        return True
    codes = suppressed.get(violation.line)
    return bool(codes) and (violation.rule in codes or "*" in codes)


def _parse_directives(
    lines: Sequence[str],
) -> tuple[dict[int, set[str]], set[str], set[str]]:
    suppressed: dict[int, set[str]] = {}
    file_suppressed: set[str] = set()
    file_directives: set[str] = set()
    for lineno, line in enumerate(lines, start=1):
        match = _DIRECTIVE_RE.search(line)
        if match is None:
            continue
        body = match.group("body").strip()
        for clause in re.split(r"[;\s]+", body):
            if not clause:
                continue
            if clause.startswith("disable-file="):
                codes = {c.strip() for c in clause[len("disable-file=") :].split(",")}
                file_suppressed.update(c for c in codes if c)
            elif clause.startswith("disable="):
                codes = {c.strip() for c in clause[len("disable=") :].split(",")}
                suppressed.setdefault(lineno, set()).update(c for c in codes if c)
            else:
                file_directives.add(clause)
    return suppressed, file_suppressed, file_directives


#: Compound statements whose ``disable=`` comments cover only the header
#: region (``lineno`` through the line before the first body statement);
#: everything else is a simple statement and the comment covers its whole
#: source span, however many physical lines it wraps across.
_COMPOUND_STMTS = (
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
)


def _propagate_multiline_suppressions(
    tree: ast.Module, suppressed: dict[int, set[str]]
) -> None:
    """Spread ``disable=`` codes across each multi-line statement's span.

    A violation anchors at the statement's first line, but a trailing
    suppression comment naturally lands on the last physical line of a
    wrapped call — without this pass such comments silently do nothing.
    """
    if not suppressed:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        body = getattr(node, "body", None)
        if isinstance(node, _COMPOUND_STMTS) and body:
            end = body[0].lineno - 1
        elif isinstance(node, _COMPOUND_STMTS) or isinstance(node, ast.Match):
            end = start
        else:
            end = getattr(node, "end_lineno", None) or start
        if end <= start:
            continue
        span_codes: set[str] = set()
        for lineno in range(start, end + 1):
            span_codes.update(suppressed.get(lineno, ()))
        if not span_codes:
            continue
        for lineno in range(start, end + 1):
            suppressed.setdefault(lineno, set()).update(span_codes)


def build_module(
    source: str, path: str, config: Optional[LintConfig] = None
) -> LintModule:
    """Parse *source* into a classified :class:`LintModule`."""
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot parse: {exc}") from exc
    lines = source.splitlines()
    suppressed, file_suppressed, directives = _parse_directives(lines)
    _propagate_multiline_suppressions(tree, suppressed)
    posix = path.replace("\\", "/")
    module = LintModule(
        path=path,
        tree=tree,
        lines=lines,
        suppressed=suppressed,
        file_suppressed=file_suppressed,
        directives=directives,
    )
    module.is_hot_path = "hot-path" in directives or any(
        part in posix for part in config.hot_path_parts
    )
    module.is_boundary = "boundary" in directives or any(
        part in posix for part in config.boundary_parts
    )
    module.is_rng_module = "rng-module" in directives or any(
        posix.endswith(suffix) for suffix in config.rng_modules
    )
    module.is_public_api = "public-api" in directives or any(
        part in posix for part in config.public_api_parts
    )
    return module


def lint_module(module: LintModule, config: Optional[LintConfig] = None) -> list[Violation]:
    """Run the selected per-module rules over one parsed module.

    Tree rules are skipped here; they need every module's summary at once
    and run in :func:`lint_paths` / :func:`lint_source`.
    """
    config = config or LintConfig()
    if "skip-file" in module.directives:
        return []
    violations: list[Violation] = []
    for rule in config.rules():
        if rule.scope != "module":
            continue
        for violation in rule.check(module):
            if not module.is_suppressed(violation):
                violations.append(violation)
    return sorted(violations)


def lint_source(
    source: str, path: str = "<string>", config: Optional[LintConfig] = None
) -> list[Violation]:
    """Lint an in-memory source string (fixture tests enter here).

    Tree rules run over this one module's summary, so single-file
    fixtures still exercise R010.
    """
    config = config or LintConfig()
    module = build_module(source, path, config)
    if "skip-file" in module.directives:
        return []
    violations = lint_module(module, config)
    tree_rules = [rule for rule in config.rules() if rule.scope == "tree"]
    if tree_rules:
        summary = module_concurrency(module)
        for rule in tree_rules:
            for violation in rule.check_tree([summary]):
                if not module.is_suppressed(violation):
                    violations.append(violation)
    return sorted(violations)


def discover_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield the ``.py`` files under *paths*, skipping caches and hidden dirs."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.exists():
            raise LintError(f"{path}: no such file or directory")
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.parts
            if any(p == "__pycache__" or p.startswith(".") for p in parts):
                continue
            yield candidate


@dataclass
class FileLintResult:
    """One file's worth of work, shippable back from a worker process."""

    path: str
    violations: list[Violation]
    summary: Optional[ModuleConcurrency]
    suppressed: dict[int, set[str]]
    file_suppressed: set[str]
    skipped: bool


def _lint_file_worker(task: tuple[str, LintConfig, bool]) -> FileLintResult:
    """Parse, lint, and summarize one file (runs in the pool workers)."""
    path_str, config, want_summary = task
    try:
        source = Path(path_str).read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"{path_str}: cannot read: {exc}") from exc
    module = build_module(source, path_str, config)
    if "skip-file" in module.directives:
        return FileLintResult(path_str, [], None, {}, set(), True)
    violations = lint_module(module, config)
    summary = module_concurrency(module) if want_summary else None
    return FileLintResult(
        path=path_str,
        violations=violations,
        summary=summary,
        suppressed=module.suppressed,
        file_suppressed=module.file_suppressed,
        skipped=False,
    )


def lint_paths(
    paths: Sequence[Path | str],
    config: Optional[LintConfig] = None,
    jobs: int = 1,
) -> list[Violation]:
    """Lint every Python file under *paths* and return sorted violations.

    With ``jobs > 1`` the per-file work fans out over a process pool; the
    tree-wide pass (R010's lock-order graph) always runs in the parent,
    over the per-file summaries the workers send back.
    """
    config = config or LintConfig()
    tree_rules = [rule for rule in config.rules() if rule.scope == "tree"]
    files = [str(p) for p in discover_files([Path(p) for p in paths])]
    tasks = [(path, config, bool(tree_rules)) for path in files]
    if jobs > 1 and len(files) > 1:
        workers = min(jobs, len(files))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            chunk = max(1, len(files) // (workers * 4))
            results = list(pool.map(_lint_file_worker, tasks, chunksize=chunk))
    else:
        results = [_lint_file_worker(task) for task in tasks]
    violations = [v for result in results for v in result.violations]
    if tree_rules:
        summaries = [r.summary for r in results if r.summary is not None]
        by_path = {r.path: r for r in results}
        for rule in tree_rules:
            for violation in rule.check_tree(summaries):
                anchor = by_path.get(violation.path)
                if anchor is not None and _is_suppressed(
                    anchor.suppressed, anchor.file_suppressed, violation
                ):
                    continue
                violations.append(violation)
    return sorted(violations)


def discover_changed_files(
    base: str = "HEAD", roots: Optional[Sequence[Path | str]] = None
) -> list[Path]:
    """Python files differing from ``git merge-base HEAD <base>``.

    With the default ``base="HEAD"`` this is the pre-commit view: staged
    plus unstaged modifications, and untracked files.  With a branch name
    (``--changed origin/main``) it is the files the branch touched.  When
    *roots* is given, only files under one of those directories survive.
    """

    def _git(*argv: str) -> str:
        try:
            proc = subprocess.run(
                ["git", *argv], capture_output=True, text=True, check=True
            )
        except FileNotFoundError as exc:
            raise LintError("--changed requires git on PATH") from exc
        except subprocess.CalledProcessError as exc:
            detail = (exc.stderr or "").strip() or f"exit {exc.returncode}"
            raise LintError(f"git {' '.join(argv)}: {detail}") from exc
        return proc.stdout

    top = Path(_git("rev-parse", "--show-toplevel").strip())
    if base == "HEAD":
        merge_base = "HEAD"
    else:
        merge_base = _git("merge-base", "HEAD", base).strip()
    names = _git("diff", "--name-only", "-z", merge_base).split("\0")
    names += _git("ls-files", "--others", "--exclude-standard", "-z").split("\0")
    resolved_roots = (
        [Path(root).resolve() for root in roots] if roots is not None else None
    )
    changed: set[Path] = set()
    for name in names:
        if not name.endswith(".py"):
            continue
        candidate = top / name
        if not candidate.is_file():
            continue  # deleted in the working tree
        if resolved_roots is not None:
            resolved = candidate.resolve()
            if not any(
                resolved == root or resolved.is_relative_to(root)
                for root in resolved_roots
            ):
                continue
        changed.add(candidate)
    return sorted(changed)


def exit_code(violations: Sequence[Violation], strict: bool = False) -> int:
    """0 when acceptable, 1 otherwise: errors always fail, warnings on strict."""
    if any(v.severity is Severity.ERROR for v in violations):
        return 1
    if strict and violations:
        return 1
    return 0


def parse_rule_selection(spec: Optional[str]) -> Optional[frozenset[str]]:
    """Parse a ``--rules R001,R003`` selection, validating the codes."""
    if spec is None:
        return None
    codes = frozenset(code.strip().upper() for code in spec.split(",") if code.strip())
    if not codes:
        raise LintError(
            "--rules given without any rule codes; "
            f"known: {', '.join(sorted(RULES_BY_CODE))}"
        )
    unknown = codes - set(RULES_BY_CODE)
    if unknown:
        raise LintError(
            f"unknown rule code(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(RULES_BY_CODE))}"
        )
    return codes
