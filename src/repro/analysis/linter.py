"""repolint: the project linter engine.

Parses Python sources into :class:`LintModule` objects (AST + suppression
comments + path-based classification) and runs the rule registry from
:mod:`repro.analysis.rules` over them.  Use :func:`lint_paths` for trees,
:func:`lint_source` for in-memory snippets (the fixture tests use it), and
``repro lint`` from the command line.

Suppression and classification directives are magic comments:

* ``# repolint: disable=R001,R004`` — suppress those rules on that line;
* ``# repolint: boundary-exempt`` — on or just above a ``def``, exempt the
  function from R002;
* ``# repolint: skip-file`` — anywhere, skip the whole file;
* ``# repolint: hot-path`` / ``# repolint: boundary`` / ``# repolint:
  rng-module`` — force the file's classification regardless of its path.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.analysis.diagnostics import Severity, Violation
from repro.analysis.rules import ALL_RULES, RULES_BY_CODE, Rule

_DIRECTIVE_RE = re.compile(r"#\s*repolint:\s*(?P<body>[^#]*)")

#: Path suffixes (posix) that default to hot-path classification (R003).
DEFAULT_HOT_PATH_PARTS = ("repro/core/", "repro/engine/", "repro/serve/")

#: Path suffixes that default to boundary classification (R002).
DEFAULT_BOUNDARY_PARTS = (
    "repro/core/",
    "repro/engine/",
    "repro/optimizer/",
    "repro/serve/",
)

#: The one module allowed to touch numpy.random entry points directly.
DEFAULT_RNG_MODULES = ("repro/util/rng.py",)

#: Paths whose public defs must be fully annotated (R005).  Scripts such as
#: benchmarks only need the future import, not exhaustive annotations.
DEFAULT_PUBLIC_API_PARTS = ("repro/",)


@dataclass(frozen=True)
class LintConfig:
    """Which rules run and how files are classified."""

    select: Optional[frozenset[str]] = None  # None means every rule
    hot_path_parts: tuple[str, ...] = DEFAULT_HOT_PATH_PARTS
    boundary_parts: tuple[str, ...] = DEFAULT_BOUNDARY_PARTS
    rng_modules: tuple[str, ...] = DEFAULT_RNG_MODULES
    public_api_parts: tuple[str, ...] = DEFAULT_PUBLIC_API_PARTS

    def rules(self) -> list[Rule]:
        selected = []
        for rule_cls in ALL_RULES:
            if self.select is None or rule_cls.code in self.select:
                selected.append(rule_cls())
        return selected


@dataclass
class LintModule:
    """One parsed source file plus everything rules need to judge it."""

    path: str
    tree: ast.Module
    lines: list[str]
    suppressed: dict[int, set[str]] = field(default_factory=dict)
    directives: set[str] = field(default_factory=set)
    is_hot_path: bool = False
    is_boundary: bool = False
    is_rng_module: bool = False
    is_public_api: bool = False

    def is_suppressed(self, violation: Violation) -> bool:
        codes = self.suppressed.get(violation.line)
        return bool(codes) and (violation.rule in codes or "*" in codes)

    def function_is_exempt(self, node: ast.AST, marker: str) -> bool:
        """True when *marker* appears in the function's signature region.

        The region spans from the first decorator (or the line above the
        ``def``) through the line before the first body statement, so the
        marker may sit on the ``def`` line, a decorator line, a continuation
        line of a long signature, or immediately above the function.
        """
        decorators = getattr(node, "decorator_list", [])
        start = min([node.lineno] + [d.lineno for d in decorators]) - 1
        body = getattr(node, "body", None)
        end = body[0].lineno - 1 if body else node.lineno
        for lineno in range(max(start, 1), end + 1):
            if lineno <= len(self.lines) and marker in self.lines[lineno - 1]:
                return True
        return False


class LintError(Exception):
    """A file could not be linted (unreadable or unparseable)."""


def _parse_directives(lines: Sequence[str]) -> tuple[dict[int, set[str]], set[str]]:
    suppressed: dict[int, set[str]] = {}
    file_directives: set[str] = set()
    for lineno, line in enumerate(lines, start=1):
        match = _DIRECTIVE_RE.search(line)
        if match is None:
            continue
        body = match.group("body").strip()
        for clause in re.split(r"[;\s]+", body):
            if not clause:
                continue
            if clause.startswith("disable="):
                codes = {c.strip() for c in clause[len("disable=") :].split(",")}
                suppressed.setdefault(lineno, set()).update(c for c in codes if c)
            else:
                file_directives.add(clause)
    return suppressed, file_directives


def build_module(
    source: str, path: str, config: Optional[LintConfig] = None
) -> LintModule:
    """Parse *source* into a classified :class:`LintModule`."""
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot parse: {exc}") from exc
    lines = source.splitlines()
    suppressed, directives = _parse_directives(lines)
    posix = path.replace("\\", "/")
    module = LintModule(
        path=path,
        tree=tree,
        lines=lines,
        suppressed=suppressed,
        directives=directives,
    )
    module.is_hot_path = "hot-path" in directives or any(
        part in posix for part in config.hot_path_parts
    )
    module.is_boundary = "boundary" in directives or any(
        part in posix for part in config.boundary_parts
    )
    module.is_rng_module = "rng-module" in directives or any(
        posix.endswith(suffix) for suffix in config.rng_modules
    )
    module.is_public_api = "public-api" in directives or any(
        part in posix for part in config.public_api_parts
    )
    return module


def lint_module(module: LintModule, config: Optional[LintConfig] = None) -> list[Violation]:
    """Run the selected rules over one parsed module."""
    config = config or LintConfig()
    if "skip-file" in module.directives:
        return []
    violations: list[Violation] = []
    for rule in config.rules():
        for violation in rule.check(module):
            if not module.is_suppressed(violation):
                violations.append(violation)
    return sorted(violations)


def lint_source(
    source: str, path: str = "<string>", config: Optional[LintConfig] = None
) -> list[Violation]:
    """Lint an in-memory source string (fixture tests enter here)."""
    config = config or LintConfig()
    return lint_module(build_module(source, path, config), config)


def discover_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield the ``.py`` files under *paths*, skipping caches and hidden dirs."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.exists():
            raise LintError(f"{path}: no such file or directory")
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.parts
            if any(p == "__pycache__" or p.startswith(".") for p in parts):
                continue
            yield candidate


def lint_paths(
    paths: Sequence[Path | str], config: Optional[LintConfig] = None
) -> list[Violation]:
    """Lint every Python file under *paths* and return sorted violations."""
    config = config or LintConfig()
    violations: list[Violation] = []
    for file_path in discover_files([Path(p) for p in paths]):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"{file_path}: cannot read: {exc}") from exc
        module = build_module(source, str(file_path), config)
        violations.extend(lint_module(module, config))
    return sorted(violations)


def exit_code(violations: Sequence[Violation], strict: bool = False) -> int:
    """0 when acceptable, 1 otherwise: errors always fail, warnings on strict."""
    if any(v.severity is Severity.ERROR for v in violations):
        return 1
    if strict and violations:
        return 1
    return 0


def parse_rule_selection(spec: Optional[str]) -> Optional[frozenset[str]]:
    """Parse a ``--rules R001,R003`` selection, validating the codes."""
    if spec is None:
        return None
    codes = frozenset(code.strip().upper() for code in spec.split(",") if code.strip())
    if not codes:
        raise LintError(
            "--rules given without any rule codes; "
            f"known: {', '.join(sorted(RULES_BY_CODE))}"
        )
    unknown = codes - set(RULES_BY_CODE)
    if unknown:
        raise LintError(
            f"unknown rule code(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(RULES_BY_CODE))}"
        )
    return codes
