"""repolint rules: project-specific coding contracts, R001-R010.

Each rule enforces a discipline that keeps the paper's algebraic guarantees
true as the codebase grows:

* **R001** — randomness must flow through :mod:`repro.util.rng`; unseeded or
  global RNG use makes figure rows irreproducible.
* **R002** — public functions at package boundaries (``core``, ``engine``,
  ``optimizer``) must validate their arguments (via :mod:`repro.util.validation`
  or an explicit ``raise``) or declare ``# repolint: boundary-exempt``.
* **R003** — numpy constructors and reductions in hot-path modules must pass
  an explicit ``dtype``: ``S = Π frequency`` products silently overflow int32
  on platforms where that is the default integer.
* **R004** — functions must not mutate caller-owned numpy arrays in place;
  copy first (``np.array``/``.copy()``) or rebind.
* **R005** — modules need ``from __future__ import annotations`` and public
  APIs need complete type annotations.
* **R006** — no bare ``scan_cardinality`` calls outside the service fallback
  helper: it raises ``KeyError`` for unknown relations, so estimation paths
  must route through :class:`repro.serve.EstimationService` (whose
  ``on_error`` policy isolates the failure) or
  :meth:`repro.engine.catalog.StatsCatalog.relation_rows`; deliberate strict
  call sites carry a justified ``# repolint: disable=R006``.
* **R007** — statistics-store modules (``engine``, ``maint``, ``serve``)
  must write files through :func:`repro.engine.durable.atomic_write_text`
  (tmp + fsync + atomic ``os.replace``); a bare ``open(..., "w")`` or
  ``write_text`` tears the catalog on a crash.  Append-only logs (the
  maintenance journal) justify themselves with ``# repolint: disable=R007``.
* **R009** — attributes inferred lock-guarded (written under ``with
  self._lock:``) must always be accessed under that lock; see
  :mod:`repro.analysis.concurrency`.
* **R010** — the tree-wide lock-order graph must stay acyclic, and plain
  ``Lock`` objects must never be re-acquired while held.

(R008 is the monotonic-instrumentation rule below; the numbering is the
registry order.)

Rules are pure functions of a parsed :class:`~repro.analysis.linter.LintModule`;
they never import the code under analysis.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analysis.diagnostics import Severity, Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.analysis.concurrency import ModuleConcurrency
    from repro.analysis.linter import LintModule

#: numpy.random attributes that are types/plumbing, not stochastic calls.
SAFE_RANDOM_ATTRS = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: numpy callables whose default dtype is platform- or input-dependent.
DTYPE_SENSITIVE = frozenset(
    {
        "array",
        "asarray",
        "asanyarray",
        "zeros",
        "ones",
        "empty",
        "full",
        "arange",
        "prod",
        "cumprod",
        "cumsum",
    }
)

#: ndarray methods that mutate the receiver in place.  ``put`` is excluded:
#: dict-like stores (e.g. the statistics catalog) name their setter ``put``
#: and mutating a passed-in store is their documented purpose.
IN_PLACE_METHODS = frozenset(
    {"sort", "fill", "resize", "setflags", "partition", "itemset", "byteswap"}
)

#: Call-name prefixes that mark a call site as argument validation: the
#: repro.util.validation helpers, contract checks, and the module-private
#: ``_prepare``/``_validate`` coercion idiom used across core/.
VALIDATION_CALL_PREFIXES = (
    "ensure_",
    "check_",
    "validate",
    "_validate",
    "_prepare",
    "_ensure",
    "coerce_",
)

#: Exact call names that validate/coerce their input (they raise on bad data).
VALIDATION_CALL_NAMES = frozenset({"as_frequency_array", "derive_rng", "require"})

#: Decorators from repro.analysis.contracts that attach runtime contracts; a
#: boundary function carrying one satisfies R002.
CONTRACT_DECORATORS = frozenset({"returns_estimate", "postcondition"})


def _dotted_name(node: ast.AST) -> str | None:
    """Resolve ``a.b.c`` attribute chains to a dotted string, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """Base class: one lint rule with a stable code and severity."""

    code: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""
    #: ``"module"`` rules see one file at a time via :meth:`check`;
    #: ``"tree"`` rules see every module's concurrency summary at once via
    #: :meth:`check_tree` (after all files are parsed, so ``--jobs`` workers
    #: can summarize in parallel and the parent merges).
    scope: str = "module"

    def check(self, module: LintModule) -> Iterator[Violation]:
        raise NotImplementedError

    def check_tree(self, summaries: "list[ModuleConcurrency]") -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, module: LintModule, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.code,
            message=message,
            severity=self.severity,
        )


class RngDisciplineRule(Rule):
    """R001: no unseeded/global RNG outside :mod:`repro.util.rng`."""

    code = "R001"
    name = "rng-discipline"
    summary = (
        "route randomness through repro.util.rng (derive_rng/spawn_rngs); "
        "global or ad-hoc RNG breaks experiment reproducibility"
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        if module.is_rng_module:
            return
        numpy_random_aliases = {"np.random", "numpy.random"}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.violation(
                            module,
                            node,
                            "stdlib `random` is a hidden global RNG; "
                            "use repro.util.rng.derive_rng instead",
                        )
                    elif alias.name == "numpy.random":
                        numpy_random_aliases.add(alias.asname or alias.name)
                        yield self.violation(
                            module,
                            node,
                            "import numpy.random via repro.util.rng helpers, "
                            "not directly",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.violation(
                        module,
                        node,
                        "stdlib `random` is a hidden global RNG; "
                        "use repro.util.rng.derive_rng instead",
                    )
                elif node.module in {"numpy", "np"} and any(
                    alias.name == "random" for alias in node.names
                ):
                    for alias in node.names:
                        if alias.name == "random":
                            numpy_random_aliases.add(alias.asname or "random")
                    yield self.violation(
                        module,
                        node,
                        "import numpy.random via repro.util.rng helpers, "
                        "not directly",
                    )
                elif node.module == "numpy.random" and any(
                    alias.name not in SAFE_RANDOM_ATTRS for alias in node.names
                ):
                    yield self.violation(
                        module,
                        node,
                        "import RNG entry points from repro.util.rng, "
                        "not numpy.random",
                    )
        imports_stdlib_random = any(
            isinstance(node, ast.Import)
            and any(a.name == "random" for a in node.names)
            for node in ast.walk(module.tree)
        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            dotted = _dotted_name(node)
            if dotted is None:
                continue
            for alias in numpy_random_aliases:
                prefix = alias + "."
                if dotted.startswith(prefix):
                    attr = dotted[len(prefix) :].split(".")[0]
                    if attr not in SAFE_RANDOM_ATTRS:
                        yield self.violation(
                            module,
                            node,
                            f"`{dotted}` bypasses repro.util.rng; accept a "
                            "RandomSource and call derive_rng(source)",
                        )
                    break
            else:
                if imports_stdlib_random and dotted.startswith("random."):
                    yield self.violation(
                        module,
                        node,
                        f"`{dotted}` uses the stdlib global RNG; "
                        "use repro.util.rng.derive_rng instead",
                    )


class BoundaryValidationRule(Rule):
    """R002: boundary-package public functions must validate arguments."""

    code = "R002"
    name = "boundary-validation"
    summary = (
        "public functions in core/engine/optimizer must validate arguments "
        "via repro.util.validation (or raise), or declare "
        "`# repolint: boundary-exempt`"
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        if not module.is_boundary:
            return
        for node in module.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            args = node.args
            n_params = len(args.posonlyargs) + len(args.args) + len(args.kwonlyargs)
            if n_params == 0 and args.vararg is None and args.kwarg is None:
                continue
            if module.function_is_exempt(node, "boundary-exempt"):
                continue
            if self._validates(node):
                continue
            yield self.violation(
                module,
                node,
                f"public function `{node.name}` does not validate its "
                "arguments; call a repro.util.validation helper, raise on bad "
                "input, or mark `# repolint: boundary-exempt`",
            )

    @staticmethod
    def _validates(node: ast.AST) -> bool:
        for decorator in getattr(node, "decorator_list", []):
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            dotted = _dotted_name(target)
            if dotted is not None and dotted.split(".")[-1] in CONTRACT_DECORATORS:
                return True
        for inner in ast.walk(node):
            if isinstance(inner, ast.Raise):
                return True
            if isinstance(inner, ast.Call):
                func = inner.func
                name = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else ""
                )
                if name in VALIDATION_CALL_NAMES or any(
                    name.startswith(prefix) for prefix in VALIDATION_CALL_PREFIXES
                ):
                    return True
            if isinstance(inner, ast.Assert):
                return True
        return False


class ExplicitDtypeRule(Rule):
    """R003: hot-path numpy constructors/reductions need an explicit dtype."""

    code = "R003"
    name = "explicit-dtype"
    summary = (
        "numpy constructors and reductions on frequency/size data in hot "
        "paths must pass an explicit dtype (int64/float64); platform-default "
        "int32 silently overflows S = Π frequency products"
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        if not module.is_hot_path:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) != 2 or parts[0] not in {"np", "numpy"}:
                continue
            if parts[1] not in DTYPE_SENSITIVE:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            yield self.violation(
                module,
                node,
                f"`{dotted}` without an explicit dtype= in a hot path; "
                "frequency/size arithmetic must pin int64/float64",
            )


class NoCallerMutationRule(Rule):
    """R004: never mutate caller-owned (parameter) numpy arrays in place."""

    code = "R004"
    name = "no-caller-mutation"
    summary = (
        "functions must not mutate arrays owned by the caller; copy via "
        "np.array(..., dtype=...)/.copy() before writing"
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(
        self, module: LintModule, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        args = node.args
        params = {
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            if a.arg not in {"self", "cls"}
        }
        if not params:
            return
        rebound_at: dict[str, int] = {}

        def record_rebind(target: ast.expr, lineno: int) -> None:
            # Only a direct name binding (`x = ...`, `x, y = ...`) transfers
            # ownership; `x[i] = ...` is a write into the caller's object.
            if isinstance(target, ast.Name) and target.id in params:
                rebound_at[target.id] = min(
                    rebound_at.get(target.id, lineno), lineno
                )
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    record_rebind(element, lineno)

        for inner in ast.walk(node):
            if isinstance(inner, ast.Assign):
                for target in inner.targets:
                    record_rebind(target, inner.lineno)
            elif isinstance(inner, ast.AnnAssign):
                record_rebind(inner.target, inner.lineno)

        def owned(name: str, lineno: int) -> bool:
            return name in params and lineno <= rebound_at.get(name, lineno)

        for inner in ast.walk(node):
            if isinstance(inner, (ast.Assign, ast.AugAssign)):
                targets = inner.targets if isinstance(inner, ast.Assign) else [inner.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and owned(target.value.id, inner.lineno)
                    ):
                        yield self.violation(
                            module,
                            inner,
                            f"writes into caller-owned `{target.value.id}` "
                            f"inside `{node.name}`; copy it first",
                        )
            elif isinstance(inner, ast.Call):
                func = inner.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in IN_PLACE_METHODS
                    and isinstance(func.value, ast.Name)
                    and owned(func.value.id, inner.lineno)
                ):
                    yield self.violation(
                        module,
                        inner,
                        f"in-place `.{func.attr}()` on caller-owned "
                        f"`{func.value.id}` inside `{node.name}`; copy it first",
                    )


class AnnotationsRule(Rule):
    """R005: future annotations import + complete public-API annotations."""

    code = "R005"
    name = "annotations"
    severity = Severity.WARNING
    summary = (
        "modules need `from __future__ import annotations`; public functions "
        "and methods need a return annotation and annotated parameters"
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        has_future = any(
            isinstance(node, ast.ImportFrom)
            and node.module == "__future__"
            and any(alias.name == "annotations" for alias in node.names)
            for node in module.tree.body
        )
        if not has_future:
            yield Violation(
                path=module.path,
                line=1,
                col=0,
                rule=self.code,
                message="missing `from __future__ import annotations`",
                severity=self.severity,
            )
        if module.is_public_api:
            yield from self._check_defs(module, module.tree.body, prefix="")

    def _check_defs(
        self, module: LintModule, body: Iterable[ast.stmt], prefix: str
    ) -> Iterator[Violation]:
        for node in body:
            if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                yield from self._check_defs(module, node.body, prefix=f"{node.name}.")
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_") and node.name != "__init__":
                continue
            qualname = f"{prefix}{node.name}"
            if node.returns is None and node.name != "__init__":
                yield self.violation(
                    module, node, f"public `{qualname}` has no return annotation"
                )
            args = node.args
            unannotated = [
                a.arg
                for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
                if a.annotation is None and a.arg not in {"self", "cls"}
            ]
            if unannotated:
                yield self.violation(
                    module,
                    node,
                    f"public `{qualname}` has unannotated parameter(s): "
                    + ", ".join(unannotated),
                )


#: Modules allowed to call ``scan_cardinality`` bare: the service module
#: that defines the strict helper (estimate paths there answer through the
#: non-raising ``StatsCatalog.relation_rows`` index instead).
SCAN_CARDINALITY_HOME = ("repro/serve/service.py",)


class NoBareScanCardinalityRule(Rule):
    """R006: no bare ``scan_cardinality`` calls outside the service helper."""

    code = "R006"
    name = "no-bare-scan-cardinality"
    summary = (
        "scan_cardinality raises KeyError for unknown relations and aborts "
        "whole batches; estimate through EstimationService (on_error policy) "
        "or StatsCatalog.relation_rows, or justify the strict call with "
        "`# repolint: disable=R006`"
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        posix = module.path.replace("\\", "/")
        if any(posix.endswith(home) for home in SCAN_CARDINALITY_HOME):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if name != "scan_cardinality":
                continue
            yield self.violation(
                module,
                node,
                "bare `scan_cardinality` raises KeyError on unknown "
                "relations; answer through an EstimationService estimate "
                "path (on_error policy) or StatsCatalog.relation_rows, or "
                "suppress with a justified `# repolint: disable=R006`",
            )


#: The one module allowed to open files for writing in the statistics
#: store: the atomic-write helper (tmp + fsync + os.replace) lives there.
DURABLE_WRITE_HOME = ("repro/engine/durable.py",)

#: Package path fragments whose writes must go through the durable helper.
DURABLE_WRITE_SCOPES = ("repro/engine/", "repro/maint/", "repro/serve/")


class AtomicCatalogWriteRule(Rule):
    """R007: store-layer file writes must use the atomic-write helper."""

    code = "R007"
    name = "atomic-catalog-write"
    summary = (
        "engine/maint/serve modules must write files through "
        "repro.engine.durable.atomic_write_text (crash-safe tmp + fsync + "
        "os.replace), never bare open(..., 'w')/write_text; deliberate "
        "append-only logs carry a justified `# repolint: disable=R007`"
    )

    #: Mode characters that make an ``open`` call a write.
    _WRITE_MODE_CHARS = frozenset("wxa+")

    def check(self, module: LintModule) -> Iterator[Violation]:
        posix = module.path.replace("\\", "/")
        if not any(scope in posix for scope in DURABLE_WRITE_SCOPES):
            return
        if any(posix.endswith(home) for home in DURABLE_WRITE_HOME):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if name == "open" and self._opens_for_write(node):
                yield self.violation(
                    module,
                    node,
                    "bare `open` for writing in the statistics store; a crash "
                    "mid-write tears the file — use "
                    "repro.engine.durable.atomic_write_text, or justify an "
                    "append-only log with `# repolint: disable=R007`",
                )
            elif name in {"write_text", "write_bytes"} and isinstance(
                func, ast.Attribute
            ):
                yield self.violation(
                    module,
                    node,
                    f"`.{name}()` replaces the file non-atomically; use "
                    "repro.engine.durable.atomic_write_text so readers never "
                    "observe a half-written catalog",
                )

    @classmethod
    def _opens_for_write(cls, node: ast.Call) -> bool:
        mode: ast.expr | None = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if mode is None:
            return False  # default mode "r"
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return any(ch in cls._WRITE_MODE_CHARS for ch in mode.value)
        return True  # dynamic mode: assume the worst


#: Package path fragments whose timing code must use monotonic clocks:
#: the instrumentation layer itself and every instrumented subsystem.
MONOTONIC_CLOCK_SCOPES = (
    "repro/obs/",
    "repro/serve/",
    "repro/engine/",
    "repro/maint/",
)

#: Package path fragments whose per-value inner loops must not touch the
#: metric registry (hot batch/replay loops run per value; instrument
#: around the loop, not inside it).
HOT_LOOP_SCOPES = ("repro/serve/", "repro/engine/")

#: Method names that hit a registry instrument on every call.
_INSTRUMENT_CALL_ATTRS = frozenset({"inc", "observe", "set_gauge", "record_event"})

#: Dotted-call prefixes that resolve to the obs runtime helpers.
_OBS_HELPER_CALLS = frozenset(
    {
        "obs.count",
        "obs.observe",
        "obs.set_gauge",
        "obs.emit_event",
        "runtime.count",
        "runtime.observe",
        "runtime.set_gauge",
        "runtime.emit_event",
    }
)


class MonotonicInstrumentationRule(Rule):
    """R008: monotonic clocks in timing code; no registry calls in loops."""

    code = "R008"
    name = "monotonic-instrumentation"
    summary = (
        "span/latency instrumentation must use time.perf_counter()/"
        "time.monotonic() (wall-clock time.time() goes backwards under NTP "
        "steps), and serve/engine hot paths must not call the metric "
        "registry inside per-value inner loops — hoist the count out of "
        "the loop or justify with `# repolint: disable=R008`"
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        posix = module.path.replace("\\", "/")
        if not any(scope in posix for scope in MONOTONIC_CLOCK_SCOPES):
            return
        yield from self._check_wall_clock(module)
        if any(scope in posix for scope in HOT_LOOP_SCOPES):
            yield from self._check_loop_registry_calls(module)

    def _check_wall_clock(self, module: LintModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        yield self.violation(
                            module,
                            node,
                            "`from time import time` imports the wall clock; "
                            "instrument with time.perf_counter() or "
                            "time.monotonic()",
                        )
            elif isinstance(node, ast.Call):
                if _dotted_name(node.func) == "time.time":
                    yield self.violation(
                        module,
                        node,
                        "`time.time()` is a wall clock and can step backwards; "
                        "durations must come from time.perf_counter() or "
                        "time.monotonic()",
                    )

    def _check_loop_registry_calls(self, module: LintModule) -> Iterator[Violation]:
        for loop in ast.walk(module.tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _dotted_name(node.func) or ""
                is_helper = dotted in _OBS_HELPER_CALLS or dotted.startswith(
                    ("repro.obs.", "registry.")
                )
                is_instrument = (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _INSTRUMENT_CALL_ATTRS
                )
                if is_helper or is_instrument:
                    yield self.violation(
                        module,
                        node,
                        f"registry call `{dotted or node.func.attr}` inside a "
                        "per-value loop on a hot path; accumulate locally and "
                        "record once after the loop",
                    )


class LockGuardRule(Rule):
    """R009: accesses to inferred lock-guarded attributes must hold the lock.

    The inference lives in :mod:`repro.analysis.concurrency`: an attribute
    ``self._x`` written under ``with self._lock:`` (outside ``__init__``)
    is guarded, and every other touch of it must hold the same lock —
    lexically, or by being a private helper only called from lock-holding
    sites.  Intentional lock-free fast paths carry a justified
    ``# repolint: disable=R009``.
    """

    code = "R009"
    name = "lock-guard-discipline"
    summary = (
        "private attributes written under a lock must always be accessed "
        "under that lock; unguarded touches race with concurrent maintenance"
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        from repro.analysis.concurrency import module_concurrency

        yield from module_concurrency(module).guard_violations


class LockOrderRule(Rule):
    """R010: the tree-wide lock-order graph must be acyclic.

    Every nested ``with`` and every cross-class call made while holding a
    lock contributes an edge; a cycle means two threads can take the same
    locks in opposite orders and deadlock.  Runs as a tree rule over every
    module's :class:`~repro.analysis.concurrency.ModuleConcurrency`
    summary so ``--jobs`` workers stay file-parallel.
    """

    code = "R010"
    name = "lock-order"
    scope = "tree"
    summary = (
        "locks must be acquired in one global order; inconsistent nesting "
        "across the tree (or re-acquiring a plain Lock) can deadlock"
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        return iter(())

    def check_tree(self, summaries: "list[ModuleConcurrency]") -> Iterator[Violation]:
        from repro.analysis.concurrency import lock_order_violations

        yield from lock_order_violations(summaries)


#: All rules, in code order. The linter instantiates from this registry.
ALL_RULES: tuple[type[Rule], ...] = (
    RngDisciplineRule,
    BoundaryValidationRule,
    ExplicitDtypeRule,
    NoCallerMutationRule,
    AnnotationsRule,
    NoBareScanCardinalityRule,
    AtomicCatalogWriteRule,
    MonotonicInstrumentationRule,
    LockGuardRule,
    LockOrderRule,
)

RULES_BY_CODE: dict[str, type[Rule]] = {rule.code: rule for rule in ALL_RULES}
