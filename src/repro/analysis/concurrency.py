"""Concurrency-discipline analysis: lock-guard inference and lock ordering.

The serve/obs/engine layers share mutable state across threads behind
``threading.Lock``/``RLock`` attributes.  Nothing ties an attribute to its
lock in the source, so the discipline "touch ``self._slots`` only under
``self._lock``" lives in reviewers' heads.  This module recovers it from
the AST, RacerD-style:

* **Guard inference (R009)** — for every class, find the lock attributes
  (``self._lock = threading.Lock()`` assignments or dataclass
  ``field(default_factory=threading.Lock)`` fields) and every access to a
  private ``self._*`` attribute together with the set of locks held at the
  access site (lexically via ``with self._lock:``, or inherited when a
  private helper is only ever called from lock-holding sites).  An
  attribute written at least once under a lock outside construction is
  *inferred guarded* by the locks every such write holds; any other access
  that does not hold the guard is a violation.
* **Lock-order graph (R010)** — every nested acquisition (``with a:`` …
  ``with b:``) and every cross-class call made while holding a lock
  (``self.metrics.record(...)`` inside ``with self._lock:`` where the
  callee acquires its own lock) contributes a directed edge ``a -> b``.
  The edges from every module are merged into one graph; a cycle means two
  threads can acquire the same pair of locks in opposite orders and
  deadlock.  Re-acquiring a non-reentrant lock already held is reported as
  a self-deadlock.

Each module reduces to a picklable :class:`ModuleConcurrency` summary so
the parallel linter (``repro lint --jobs N``) can analyze files in worker
processes and run the tree-wide ordering pass in the parent.

Known limits, by design: lock keys are resolved statically
(``ClassName._attr`` / ``modulestem._name``), attribute types come from
``self.x = ClassName(...)`` constructor calls and annotated ``__init__``
parameters, and only ``with``-statement acquisitions count (bare
``.acquire()`` calls are invisible).  The runtime sanitizer
(:mod:`repro.testing.locksan`) covers the dynamic remainder.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.analysis.diagnostics import Severity, Violation

#: Dotted callables that construct a non-reentrant lock.
LOCK_FACTORIES = frozenset({"threading.Lock", "Lock"})

#: Dotted callables that construct a reentrant lock.
RLOCK_FACTORIES = frozenset({"threading.RLock", "RLock"})

#: Method names that mutate their receiver: calling one on ``self._x`` is a
#: *write* to ``_x`` for guard-inference purposes.
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "sort",
        "reverse",
        "move_to_end",
        "rotate",
        "write",
        "writelines",
        "truncate",
    }
)

#: Methods whose accesses are construction-time and run before the object
#: is shared between threads; they neither establish guards nor violate.
CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__new__", "__post_init__", "__init_subclass__", "__set_name__", "__del__"}
)

R009_CODE = "R009"
R010_CODE = "R010"


def _dotted(node: ast.AST) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``"X"``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _innermost_self_attr(node: ast.AST) -> Optional[str]:
    """The ``self``-rooted attribute a store/mutation ultimately lands on.

    ``self._a`` -> ``_a``; ``self._a.b[k]`` -> ``_a`` (mutating a nested
    container still mutates state reachable from ``self._a``).
    """
    while True:
        direct = _is_self_attr(node)
        if direct is not None:
            return direct
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
            continue
        return None


def _lock_kind(call: ast.AST) -> Optional[bool]:
    """``threading.Lock()`` -> False, ``threading.RLock()`` -> True, else None."""
    if not isinstance(call, ast.Call):
        return None
    dotted = _dotted(call.func)
    if dotted in LOCK_FACTORIES:
        return False
    if dotted in RLOCK_FACTORIES:
        return True
    # dataclass idiom: field(default_factory=threading.Lock)
    func = _dotted(call.func)
    if func is not None and func.split(".")[-1] == "field":
        for kw in call.keywords:
            if kw.arg == "default_factory":
                factory = _dotted(kw.value)
                if factory in LOCK_FACTORIES:
                    return False
                if factory in RLOCK_FACTORIES:
                    return True
    return None


@dataclass(frozen=True)
class LockEdge:
    """A directed ``source``-held-while-acquiring-``target`` observation."""

    source: str
    target: str
    path: str
    line: int
    col: int
    via: str


@dataclass(frozen=True)
class PendingCall:
    """A method call made while holding locks, resolved at tree time."""

    held: tuple[str, ...]
    callee_class: str
    method: str
    path: str
    line: int
    col: int


@dataclass
class ClassSummary:
    """What the tree pass needs to know about one class."""

    name: str
    #: lock attribute name -> reentrant?
    locks: dict[str, bool] = field(default_factory=dict)
    #: method name -> lock keys it acquires (lexically plus via ``self.m()``
    #: calls to sibling methods, one intra-class closure deep).
    method_acquires: dict[str, tuple[str, ...]] = field(default_factory=dict)


@dataclass
class ModuleConcurrency:
    """Picklable per-module summary feeding the tree-wide R010 pass."""

    path: str
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    #: module-level lock name -> reentrant?
    module_locks: dict[str, bool] = field(default_factory=dict)
    guard_violations: list[Violation] = field(default_factory=list)
    edges: list[LockEdge] = field(default_factory=list)
    pending_calls: list[PendingCall] = field(default_factory=list)


@dataclass
class _Access:
    """One touch of a private ``self._*`` attribute inside a method."""

    attr: str
    method: str
    line: int
    col: int
    write: bool
    held: frozenset[str]


class _ClassAnalyzer:
    """Walks one class body, collecting accesses, acquisitions, and calls."""

    def __init__(
        self,
        module_stem: str,
        path: str,
        class_name: str,
        locks: dict[str, bool],
        module_locks: dict[str, bool],
        attr_types: dict[str, str],
    ) -> None:
        self.module_stem = module_stem
        self.path = path
        self.class_name = class_name
        self.locks = locks
        self.module_locks = module_locks
        self.attr_types = attr_types
        self.accesses: dict[tuple[str, int, int], _Access] = {}
        self.edges: list[LockEdge] = []
        self.pending_calls: list[PendingCall] = []
        #: (caller_method, callee_method, held-at-site) for ``self.m()`` calls.
        self.internal_calls: list[tuple[str, str, frozenset[str]]] = []
        #: method -> lexically acquired lock keys.
        self.method_acquires: dict[str, set[str]] = {}
        self._method = ""

    # -- lock keys -----------------------------------------------------

    def _key_for(self, node: ast.expr) -> Optional[str]:
        attr = _is_self_attr(node)
        if attr is not None and attr in self.locks:
            return f"{self.class_name}.{attr}"
        if isinstance(node, ast.Name) and node.id in self.module_locks:
            return f"{self.module_stem}.{node.id}"
        return None

    # -- recording -----------------------------------------------------

    def _record_access(
        self, attr: str, node: ast.AST, write: bool, held: frozenset[str]
    ) -> None:
        if not attr.startswith("_") or attr.startswith("__"):
            return
        if attr in self.locks:
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        key = (attr, line, col)
        prior = self.accesses.get(key)
        if prior is None:
            self.accesses[key] = _Access(
                attr=attr, method=self._method, line=line, col=col, write=write, held=held
            )
        else:
            prior.write = prior.write or write
            prior.held = prior.held & held

    def _record_edge(self, source: str, target: str, node: ast.AST, via: str) -> None:
        self.edges.append(
            LockEdge(
                source=source,
                target=target,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                via=via,
            )
        )

    # -- traversal -----------------------------------------------------

    def walk_method(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._method = node.name
        self.method_acquires.setdefault(node.name, set())
        for stmt in node.body:
            self._visit(stmt, frozenset())

    def _visit(self, node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node, held)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                self._visit_target(target, held)
            self._visit(node.value, held)
        elif isinstance(node, ast.AugAssign):
            self._visit_target(node.target, held)
            self._visit(node.value, held)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._visit_target(node.target, held)
                self._visit(node.value, held)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._visit_target(target, held)
        elif isinstance(node, ast.Call):
            self._visit_call(node, held)
        elif isinstance(node, ast.Attribute):
            attr = _is_self_attr(node)
            if attr is not None:
                self._record_access(attr, node, write=False, held=held)
            else:
                self._visit(node.value, held)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested callable may run long after the enclosing block has
            # released its locks; analyze its body as holding nothing.
            for default in getattr(node.args, "defaults", []):
                self._visit(default, held)
            body = node.body if isinstance(node.body, list) else [node.body]
            for stmt in body:
                self._visit(stmt, frozenset())
        else:
            for child in ast.iter_child_nodes(node):
                self._visit(child, held)

    def _visit_with(self, node: ast.With | ast.AsyncWith, held: frozenset[str]) -> None:
        current = held
        for item in node.items:
            self._visit(item.context_expr, current)
            if item.optional_vars is not None:
                self._visit_target(item.optional_vars, current)
            key = self._key_for(item.context_expr)
            if key is None:
                continue
            if key in current:
                # Re-acquiring a lock already held: a self-edge the tree
                # pass turns into a deadlock finding for plain Locks.
                self._record_edge(key, key, item.context_expr, "re-entered with-block")
            else:
                for outer in sorted(current):
                    self._record_edge(outer, key, item.context_expr, "nested with-block")
                self.method_acquires.setdefault(self._method, set()).add(key)
                current = current | {key}
        for stmt in node.body:
            self._visit(stmt, current)

    def _visit_target(self, target: ast.AST, held: frozenset[str]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._visit_target(elt, held)
            return
        if isinstance(target, ast.Starred):
            self._visit_target(target.value, held)
            return
        attr = _innermost_self_attr(target)
        if attr is not None:
            self._record_access(attr, target, write=True, held=held)
        # Index expressions and non-self bases are ordinary reads.
        if isinstance(target, ast.Subscript):
            self._visit(target.slice, held)
            if attr is None:
                self._visit(target.value, held)
        elif isinstance(target, ast.Attribute) and attr is None:
            self._visit(target.value, held)

    def _visit_call(self, node: ast.Call, held: frozenset[str]) -> None:
        func = node.func
        skip_receiver = False
        if isinstance(func, ast.Attribute):
            method = func.attr
            receiver = func.value
            receiver_attr = _is_self_attr(receiver)
            if isinstance(receiver, ast.Name) and receiver.id == "self":
                # self.m(...): intra-class call — feeds both the
                # inherited-held fixpoint and the lock-order graph.
                self.internal_calls.append((self._method, method, held))
                if held:
                    self.pending_calls.append(
                        PendingCall(
                            held=tuple(sorted(held)),
                            callee_class=self.class_name,
                            method=method,
                            path=self.path,
                            line=node.lineno,
                            col=node.col_offset,
                        )
                    )
                skip_receiver = True
            elif receiver_attr is not None:
                if method in MUTATING_METHODS:
                    self._record_access(receiver_attr, receiver, write=True, held=held)
                else:
                    self._record_access(receiver_attr, receiver, write=False, held=held)
                skip_receiver = True
                callee_class = self.attr_types.get(receiver_attr)
                if held and callee_class is not None:
                    self.pending_calls.append(
                        PendingCall(
                            held=tuple(sorted(held)),
                            callee_class=callee_class,
                            method=method,
                            path=self.path,
                            line=node.lineno,
                            col=node.col_offset,
                        )
                    )
            else:
                mutated = _innermost_self_attr(receiver)
                if mutated is not None and method in MUTATING_METHODS:
                    self._record_access(mutated, receiver, write=True, held=held)
                    skip_receiver = True
        if not skip_receiver:
            self._visit(func, held)
        for arg in node.args:
            self._visit(arg, held)
        for keyword in node.keywords:
            self._visit(keyword.value, held)


class _ModuleFunctionAnalyzer(_ClassAnalyzer):
    """Module-level functions: no ``self`` state, but module locks nest."""

    def __init__(self, module_stem: str, path: str, module_locks: dict[str, bool]) -> None:
        super().__init__(
            module_stem=module_stem,
            path=path,
            class_name="",
            locks={},
            module_locks=module_locks,
            attr_types={},
        )

    def _record_access(
        self, attr: str, node: ast.AST, write: bool, held: frozenset[str]
    ) -> None:
        # Guard inference is class-scoped; module functions only feed edges.
        return


def _collect_class_locks(class_node: ast.ClassDef) -> dict[str, bool]:
    locks: dict[str, bool] = {}
    for stmt in class_node.body:
        # dataclass field: ``_lock: threading.Lock = field(default_factory=...)``
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            kind = _lock_kind(stmt.value) if stmt.value is not None else None
            if kind is None:
                annotation = _dotted(stmt.annotation)
                if annotation in LOCK_FACTORIES:
                    kind = False
                elif annotation in RLOCK_FACTORIES:
                    kind = True
            if kind is not None:
                locks[stmt.target.id] = kind
    for node in ast.walk(class_node):
        if isinstance(node, ast.Assign):
            kind = _lock_kind(node.value)
            if kind is None:
                continue
            for target in node.targets:
                attr = _is_self_attr(target)
                if attr is not None:
                    locks[attr] = kind
    return locks


def _annotation_class(node: ast.AST) -> Optional[str]:
    """The class named by an annotation: ``B``, ``pkg.B``, or ``"B"``."""
    dotted = _dotted(node)
    if dotted is not None:
        return dotted.split(".")[-1]
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        if text.replace(".", "").replace("_", "").isalnum():
            return text.split(".")[-1]
    return None


def _collect_attr_types(class_node: ast.ClassDef) -> dict[str, str]:
    """``self.x = ClassName(...)`` and annotated ``__init__`` params -> types."""
    types: dict[str, str] = {}
    param_types: dict[str, str] = {}
    for stmt in class_node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            for arg in stmt.args.args + stmt.args.kwonlyargs:
                if arg.annotation is not None:
                    annotation = _annotation_class(arg.annotation)
                    if annotation is not None:
                        param_types[arg.arg] = annotation
    for node in ast.walk(class_node):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            attr = _is_self_attr(target)
            if attr is None:
                continue
            if isinstance(node.value, ast.Call):
                callee = _dotted(node.value.func)
                if callee is not None:
                    types.setdefault(attr, callee.split(".")[-1])
            elif isinstance(node.value, ast.Name) and node.value.id in param_types:
                types.setdefault(attr, param_types[node.value.id])
    return types


def _collect_module_locks(tree: ast.Module) -> dict[str, bool]:
    locks: dict[str, bool] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            kind = _lock_kind(stmt.value)
            if kind is None:
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    locks[target.id] = kind
    return locks


def _inherited_held(
    methods: Iterable[str],
    internal_calls: list[tuple[str, str, frozenset[str]]],
    acquired_lexically: dict[str, set[str]],
) -> dict[str, frozenset[str]]:
    """Fixpoint: locks a private method always holds on entry.

    A private method called only from sites that hold a lock inherits that
    lock — ``StatsCatalog._discard_total`` is guarded because ``drop``
    calls it under ``self._lock``.  Public methods inherit nothing (any
    caller may enter them bare).
    """
    sites: dict[str, list[tuple[str, frozenset[str]]]] = {}
    for caller, callee, held in internal_calls:
        sites.setdefault(callee, []).append((caller, held))
    inherited: dict[str, frozenset[str]] = {name: frozenset() for name in methods}
    for _ in range(len(inherited) + 1):
        changed = False
        for name in inherited:
            if not name.startswith("_") or name.startswith("__"):
                continue
            call_sites = sites.get(name)
            if not call_sites:
                continue
            candidate: Optional[frozenset[str]] = None
            for caller, held in call_sites:
                effective = held | inherited.get(caller, frozenset())
                candidate = effective if candidate is None else candidate & effective
            if candidate and candidate != inherited[name]:
                inherited[name] = candidate
                changed = True
        if not changed:
            break
    return inherited


def _infer_guard_violations(
    analyzer: _ClassAnalyzer, class_name: str
) -> Iterator[Violation]:
    methods = set(analyzer.method_acquires)
    inherited = _inherited_held(
        methods, analyzer.internal_calls, analyzer.method_acquires
    )
    by_attr: dict[str, list[tuple[_Access, frozenset[str]]]] = {}
    for access in analyzer.accesses.values():
        if access.method in CONSTRUCTION_METHODS:
            continue
        effective = access.held | inherited.get(access.method, frozenset())
        by_attr.setdefault(access.attr, []).append((access, effective))
    for attr in sorted(by_attr):
        records = by_attr[attr]
        guard: Optional[frozenset[str]] = None
        for access, effective in records:
            if access.write and effective:
                guard = effective if guard is None else guard & effective
        if not guard:
            continue
        guard_names = " and ".join(f"`{name}`" for name in sorted(guard))
        for access, effective in records:
            if guard & effective:
                continue
            action = "written" if access.write else "read"
            yield Violation(
                path=analyzer.path,
                line=access.line,
                col=access.col,
                rule=R009_CODE,
                message=(
                    f"`self.{attr}` of `{class_name}` is inferred lock-guarded "
                    f"(every locked write holds {guard_names}) but is {action} "
                    f"here without the lock; wrap in `with` or justify with "
                    f"`# repolint: disable=R009`"
                ),
                severity=Severity.ERROR,
            )


def analyze_source(tree: ast.Module, path: str) -> ModuleConcurrency:
    """Reduce one parsed module to its :class:`ModuleConcurrency` summary."""
    stem = Path(path).stem or "<module>"
    module_locks = _collect_module_locks(tree)
    summary = ModuleConcurrency(path=path, module_locks=module_locks)

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            walker = _ModuleFunctionAnalyzer(stem, path, module_locks)
            walker.walk_method(stmt)
            summary.edges.extend(walker.edges)
        elif isinstance(stmt, ast.ClassDef):
            locks = _collect_class_locks(stmt)
            attr_types = _collect_attr_types(stmt)
            analyzer = _ClassAnalyzer(
                module_stem=stem,
                path=path,
                class_name=stmt.name,
                locks=locks,
                module_locks=module_locks,
                attr_types=attr_types,
            )
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    analyzer.walk_method(item)
            summary.guard_violations.extend(_infer_guard_violations(analyzer, stmt.name))
            summary.edges.extend(analyzer.edges)
            summary.pending_calls.extend(analyzer.pending_calls)

            # Intra-class closure: a method "acquires" what the sibling
            # methods it calls acquire, one call level at a time.
            acquires = {name: set(keys) for name, keys in analyzer.method_acquires.items()}
            for _ in range(len(acquires) + 1):
                changed = False
                for caller, callee, _held in analyzer.internal_calls:
                    gained = acquires.get(callee, set()) - acquires.setdefault(caller, set())
                    if gained:
                        acquires[caller] |= gained
                        changed = True
                if not changed:
                    break
            summary.classes[stmt.name] = ClassSummary(
                name=stmt.name,
                locks=locks,
                method_acquires={
                    name: tuple(sorted(keys)) for name, keys in acquires.items() if keys
                },
            )
    return summary


# ----------------------------------------------------------------------
# Tree-wide lock-order pass (R010)
# ----------------------------------------------------------------------


def _reentrancy_table(summaries: Iterable[ModuleConcurrency]) -> dict[str, bool]:
    table: dict[str, bool] = {}
    for summary in summaries:
        stem = Path(summary.path).stem or "<module>"
        for name, reentrant in summary.module_locks.items():
            table[f"{stem}.{name}"] = reentrant
        for cls in summary.classes.values():
            for attr, reentrant in cls.locks.items():
                table[f"{cls.name}.{attr}"] = reentrant
    return table


def _resolve_call_edges(
    summaries: list[ModuleConcurrency],
) -> list[LockEdge]:
    classes: dict[str, ClassSummary] = {}
    for summary in summaries:
        classes.update(summary.classes)
    edges: list[LockEdge] = []
    for summary in summaries:
        for call in summary.pending_calls:
            cls = classes.get(call.callee_class)
            if cls is None:
                continue
            for target in cls.method_acquires.get(call.method, ()):
                for source in call.held:
                    edges.append(
                        LockEdge(
                            source=source,
                            target=target,
                            path=call.path,
                            line=call.line,
                            col=call.col,
                            via=f"call to {call.callee_class}.{call.method}()",
                        )
                    )
    return edges


def lock_order_violations(
    summaries: Iterable[ModuleConcurrency],
) -> list[Violation]:
    """Merge every module's edges and report ordering cycles (R010)."""
    summaries = list(summaries)
    reentrancy = _reentrancy_table(summaries)
    raw_edges: list[LockEdge] = []
    for summary in summaries:
        raw_edges.extend(summary.edges)
    raw_edges.extend(_resolve_call_edges(summaries))

    violations: list[Violation] = []
    seen_self: set[tuple[str, str, int]] = set()
    adjacency: dict[str, set[str]] = {}
    first_edge: dict[tuple[str, str], LockEdge] = {}
    for edge in raw_edges:
        if edge.source == edge.target:
            if reentrancy.get(edge.source, False):
                continue  # RLock re-entry is legal
            marker = (edge.source, edge.path, edge.line)
            if marker not in seen_self:
                seen_self.add(marker)
                violations.append(
                    Violation(
                        path=edge.path,
                        line=edge.line,
                        col=edge.col,
                        rule=R010_CODE,
                        message=(
                            f"non-reentrant lock `{edge.source}` acquired while "
                            f"already held ({edge.via}): guaranteed self-deadlock"
                        ),
                        severity=Severity.ERROR,
                    )
                )
            continue
        adjacency.setdefault(edge.source, set()).add(edge.target)
        first_edge.setdefault((edge.source, edge.target), edge)

    def _witness(start: str, goal: str) -> Optional[list[str]]:
        parents: dict[str, Optional[str]] = {start: None}
        queue = [start]
        while queue:
            node = queue.pop(0)
            if node == goal:
                chain = [node]
                while parents[chain[-1]] is not None:
                    chain.append(parents[chain[-1]])  # type: ignore[arg-type]
                return list(reversed(chain))
            for succ in sorted(adjacency.get(node, ())):
                if succ not in parents:
                    parents[succ] = node
                    queue.append(succ)
        return None

    reported: set[tuple[str, str, str, int]] = set()
    for (source, target), edge in sorted(first_edge.items()):
        chain = _witness(target, source)
        if chain is None:
            continue
        counter = first_edge.get((chain[0], chain[1]))
        site = f"{counter.path}:{counter.line}" if counter is not None else "elsewhere"
        marker = (source, target, edge.path, edge.line)
        if marker in reported:
            continue
        reported.add(marker)
        cycle = " -> ".join([source, *chain])
        violations.append(
            Violation(
                path=edge.path,
                line=edge.line,
                col=edge.col,
                rule=R010_CODE,
                message=(
                    f"lock-order inversion: `{target}` acquired while holding "
                    f"`{source}` ({edge.via}), but the opposite order is taken "
                    f"at {site}; cycle {cycle} can deadlock"
                ),
                severity=Severity.ERROR,
            )
        )
    return violations


def module_concurrency(module: "LintModule") -> ModuleConcurrency:  # noqa: F821
    """Per-:class:`~repro.analysis.linter.LintModule` summary, memoized."""
    cached = getattr(module, "_concurrency_summary", None)
    if cached is None:
        cached = analyze_source(module.tree, module.path)
        module._concurrency_summary = cached
    return cached
