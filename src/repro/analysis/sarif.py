"""SARIF 2.1.0 emission for repolint findings.

``repro lint --format sarif`` renders the violation list as a Static
Analysis Results Interchange Format document so GitHub code scanning (via
``github/codeql-action/upload-sarif``) and SARIF-aware editors can
annotate the offending lines.  The emitter covers the core of the spec:
one run, one tool driver with per-rule metadata, one result per finding
with a physical location.  :func:`validate_sarif` is a structural checker
for the subset we emit — the tests run every generated document through
it, and it doubles as an executable reading of the spec's MUST clauses
(§3.13-3.28) without needing a JSON-Schema dependency.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.diagnostics import Severity, Violation
from repro.analysis.rules import ALL_RULES, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

TOOL_NAME = "repolint"
TOOL_INFORMATION_URI = "https://github.com/ioannidis-poosala-repro"

#: repolint severity -> SARIF result level (§3.27.10).
_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _relative_uri(path: str, base: Optional[Path]) -> str:
    """Render *path* as a forward-slash URI, relative to *base* if under it."""
    candidate = Path(path)
    if base is not None:
        try:
            candidate = candidate.resolve().relative_to(base.resolve())
        except (ValueError, OSError):
            pass
    return candidate.as_posix()


def _rule_descriptor(rule: type[Rule]) -> dict[str, object]:
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.summary or rule.name},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
    }


def to_sarif(
    violations: Sequence[Violation],
    *,
    rules: Iterable[type[Rule]] = ALL_RULES,
    base_dir: Optional[Path | str] = None,
) -> dict[str, object]:
    """Build a SARIF 2.1.0 document (as a plain dict) from *violations*.

    Every registered rule is described in the driver metadata even when it
    produced no findings, so rule indices stay stable across runs and
    dashboards can distinguish "clean" from "not checked".  Paths are
    emitted relative to *base_dir* (default: the current directory) so the
    artifact URIs match the repository layout code scanning expects.
    """
    base = Path.cwd() if base_dir is None else Path(base_dir)
    rule_list = list(rules)
    rule_index = {rule.code: index for index, rule in enumerate(rule_list)}
    results: list[dict[str, object]] = []
    for violation in sorted(violations):
        result: dict[str, object] = {
            "ruleId": violation.rule,
            "level": _LEVELS[violation.severity],
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(violation.path, base),
                        },
                        "region": {
                            "startLine": max(violation.line, 1),
                            # repolint columns are 0-based; SARIF is 1-based.
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
        }
        if violation.rule in rule_index:
            result["ruleIndex"] = rule_index[violation.rule]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_INFORMATION_URI,
                        "rules": [_rule_descriptor(rule) for rule in rule_list],
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def to_sarif_json(
    violations: Sequence[Violation],
    *,
    rules: Iterable[type[Rule]] = ALL_RULES,
    base_dir: Optional[Path | str] = None,
) -> str:
    """The SARIF document serialized with a trailing newline."""
    document = to_sarif(violations, rules=rules, base_dir=base_dir)
    return json.dumps(document, indent=2, sort_keys=False) + "\n"


class SarifValidationError(ValueError):
    """The document violates a SARIF 2.1.0 structural requirement."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SarifValidationError(message)


def validate_sarif(document: object) -> None:
    """Check the SARIF 2.1.0 structural constraints the emitter relies on.

    Raises :class:`SarifValidationError` naming the first failed clause.
    This is not a full JSON-Schema validation — it enforces the MUST
    requirements for the subset of the format we produce: top-level
    version/runs, driver name, rule descriptors with stable ids, and for
    each result a ruleId, level, message text, and 1-based region.
    """
    _require(isinstance(document, dict), "document must be a JSON object")
    assert isinstance(document, dict)
    _require(document.get("version") == SARIF_VERSION, "version must be '2.1.0'")
    runs = document.get("runs")
    _require(isinstance(runs, list) and len(runs) >= 1, "runs must be a non-empty array")
    for run in runs:  # type: ignore[union-attr]
        _require(isinstance(run, dict), "each run must be an object")
        driver = run.get("tool", {}).get("driver") if isinstance(run.get("tool"), dict) else None
        _require(isinstance(driver, dict), "run.tool.driver is required")
        _require(
            isinstance(driver.get("name"), str) and bool(driver["name"]),
            "driver.name must be a non-empty string",
        )
        rule_ids = set()
        for rule in driver.get("rules", []):
            _require(isinstance(rule, dict), "each rule descriptor must be an object")
            _require(isinstance(rule.get("id"), str), "rule.id must be a string")
            _require(rule["id"] not in rule_ids, f"duplicate rule id {rule['id']!r}")
            rule_ids.add(rule["id"])
        results = run.get("results", [])
        _require(isinstance(results, list), "run.results must be an array")
        for result in results:
            _require(isinstance(result, dict), "each result must be an object")
            _require(isinstance(result.get("ruleId"), str), "result.ruleId is required")
            _require(
                result.get("level") in {"none", "note", "warning", "error"},
                "result.level must be a SARIF level",
            )
            message = result.get("message")
            _require(
                isinstance(message, dict) and isinstance(message.get("text"), str),
                "result.message.text is required",
            )
            if "ruleIndex" in result:
                index = result["ruleIndex"]
                rules_array = driver.get("rules", [])
                _require(
                    isinstance(index, int)
                    and 0 <= index < len(rules_array)
                    and rules_array[index].get("id") == result["ruleId"],
                    "result.ruleIndex must point at the descriptor for ruleId",
                )
            for location in result.get("locations", []):
                physical = location.get("physicalLocation", {})
                artifact = physical.get("artifactLocation", {})
                uri = artifact.get("uri")
                _require(isinstance(uri, str) and bool(uri), "artifactLocation.uri required")
                _require(not uri.startswith("/"), "artifact uri must be relative")
                _require("\\" not in uri, "artifact uri must use forward slashes")
                region = physical.get("region", {})
                for key in ("startLine", "startColumn"):
                    if key in region:
                        _require(
                            isinstance(region[key], int) and region[key] >= 1,
                            f"region.{key} must be a positive integer",
                        )
