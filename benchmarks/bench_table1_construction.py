"""Table 1: construction cost of optimal serial vs end-biased histograms.

The paper's table (DEC ALPHA, 1995) shows exhaustive V-OptHist times
exploding with the frequency-set cardinality and the bucket count, against
a V-OptBiasHist that is essentially flat across β and near-linear in M
(timed up to one million attribute values).  Absolute seconds differ on a
2020s machine running Python, but the asymptotic shape is the result.
"""

from __future__ import annotations

from _reporting import record_report

from repro.experiments.config import TimingExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.timing import construction_timing_table

CONFIG = TimingExperimentConfig(
    serial_sizes=(10, 15, 20, 25, 30),
    serial_buckets=(3, 5),
    end_biased_sizes=(100, 1_000, 10_000, 100_000, 1_000_000),
    end_biased_buckets=10,
    repeats=3,
    seed=1995,
)


def test_table1_construction_cost(benchmark):
    rows = benchmark.pedantic(
        lambda: construction_timing_table(CONFIG), rounds=1, iterations=1
    )

    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.set_size,
                row.serial_seconds.get(3),
                row.serial_seconds.get(5),
                row.end_biased_seconds,
            ]
        )
    record_report(
        "Table 1 — construction time (seconds): exhaustive serial (beta=3,5) "
        "vs end-biased (beta=10)",
        format_table(
            ["attribute values", "serial b=3", "serial b=5", "end-biased b=10"],
            table_rows,
            precision=5,
        ),
    )

    by_size = {r.set_size: r for r in rows}
    # Serial blow-up: beta=5 dwarfs beta=3 at M=30 (C(29,4) vs C(29,2)).
    assert by_size[30].serial_seconds[5] > by_size[30].serial_seconds[3]
    # Serial cost grows steeply with M at fixed beta.
    assert by_size[30].serial_seconds[5] > by_size[15].serial_seconds[5]
    # End-biased stays cheap even at 1M values, and far below the serial
    # cost of a set four orders of magnitude smaller.
    assert by_size[1_000_000].end_biased_seconds < 30.0
    assert by_size[100].end_biased_seconds < by_size[30].serial_seconds[5]
