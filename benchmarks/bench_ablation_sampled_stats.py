"""Ablation: exact Matrix + V-OptBiasHist vs the Section 4.2 sampling shortcut.

The paper recommends finding the β−1 highest frequencies by sampling (as
DB2/MVS does) instead of the full ``Matrix`` scan + sort.  This bench
compares the resulting compact end-biased statistics on self-join and
hot-value selection estimates against the exact construction, across skews.
For Zipf-like data the sketch matches the exact statistics almost exactly;
for the reverse-Zipf shape the shortcut degrades, as the paper predicts
("this approach will not work when ... low frequencies will be chosen").
"""

from __future__ import annotations

import numpy as np
from _reporting import record_report

from repro.core.biased import v_opt_bias_hist
from repro.util.rng import derive_rng
from repro.data.quantize import quantize_to_integers
from repro.data.synthetic import reverse_zipf_frequencies
from repro.data.zipf import zipf_frequencies
from repro.engine.catalog import CompactEndBiased
from repro.engine.sampling import sampled_end_biased_histogram
from repro.experiments.report import format_table

DOMAIN = 200
TOTAL = 20_000
BETA = 11  # ten explicit values, the DB2 default


def _column(freqs, rng):
    column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
    rng.shuffle(column)
    return column


def _self_join(compact: CompactEndBiased) -> float:
    estimate = sum(f * f for f in compact.explicit.values())
    if compact.remainder_count:
        estimate += compact.remainder_count * compact.remainder_average**2
    return estimate


def run_sampled_ablation():
    rng = derive_rng(1995)
    rows = []
    for label, base in (
        ("zipf z=1", zipf_frequencies(TOTAL, DOMAIN, 1.0)),
        ("zipf z=2", zipf_frequencies(TOTAL, DOMAIN, 2.0)),
        ("reverse-zipf z=2", reverse_zipf_frequencies(TOTAL, DOMAIN, 2.0)),
    ):
        freqs = quantize_to_integers(base).astype(float)
        truth = float(np.dot(freqs, freqs))
        values = list(range(DOMAIN))
        exact_hist = v_opt_bias_hist(freqs, BETA, values=values)
        exact_compact = CompactEndBiased.from_histogram(exact_hist)
        sampled = sampled_end_biased_histogram(
            _column(freqs, rng), BETA, int(freqs.sum()), DOMAIN
        )
        rows.append(
            (
                label,
                abs(truth - _self_join(exact_compact)) / truth,
                abs(truth - _self_join(sampled)) / truth,
            )
        )
    return rows


def test_ablation_sampled_statistics(benchmark):
    rows = benchmark.pedantic(run_sampled_ablation, rounds=1, iterations=1)

    record_report(
        "Ablation — exact vs sketch-sampled end-biased statistics "
        f"(M={DOMAIN}, beta={BETA}): relative self-join error",
        format_table(
            ["distribution", "exact V-OptBiasHist", "sampled (Space-Saving)"],
            [list(r) for r in rows],
            precision=5,
        ),
    )

    by_label = {r[0]: r for r in rows}
    # On Zipf data the sketch shortcut is nearly as good as exact stats.
    assert by_label["zipf z=2"][2] < by_label["zipf z=2"][1] + 0.05
    # On reverse-Zipf it is strictly worse than the exact construction,
    # which places *low* frequencies in the univalued buckets.
    assert by_label["reverse-zipf z=2"][2] >= by_label["reverse-zipf z=2"][1]
