"""End-to-end SQL workload: estimate quality by catalog histogram kind.

Runs a mixed selection/join workload through the SQL front-end four times —
once per histogram kind in the catalog — and reports the mean relative
error between the optimizer's EXPLAIN estimate and the true result size.
This is the paper's whole argument compressed into one table: the same
engine, the same queries, only the histogram class changes.
"""

from __future__ import annotations

import numpy as np
from _reporting import record_report

from repro.data.quantize import quantize_to_integers
from repro.util.rng import derive_rng
from repro.data.zipf import zipf_frequencies
from repro.experiments.report import format_table
from repro.sql import Database

KINDS = ("trivial", "equi-depth", "end-biased", "serial")

WORKLOAD = [
    "SELECT * FROM orders WHERE cust = 0",
    "SELECT * FROM orders WHERE cust = 25",
    "SELECT * FROM orders WHERE qty BETWEEN 3 AND 5",
    "SELECT * FROM orders WHERE item IN (0, 1, 2)",
    "SELECT * FROM orders WHERE item <> 0",
    "SELECT * FROM orders o, customers c WHERE o.cust = c.cust",
    "SELECT * FROM orders o, items i WHERE o.item = i.item",
    (
        "SELECT o.item FROM orders o, customers c, items i "
        "WHERE o.cust = c.cust AND o.item = i.item AND o.qty > 7"
    ),
]


def build_database(kind):
    rng = derive_rng(1995)

    def zipf_column(total, domain, z):
        freqs = quantize_to_integers(zipf_frequencies(total, domain, z))
        column = [value for value, f in enumerate(freqs) for _ in range(int(f))]
        rng.shuffle(column)
        return column

    db = Database()
    db.create(
        "orders",
        {
            "cust": zipf_column(2000, 50, 1.5),
            "item": zipf_column(2000, 30, 0.8),
            "qty": list(rng.integers(1, 10, 2000)),
        },
    )
    db.create("customers", {"cust": list(range(50))})
    db.create("items", {"item": zipf_column(600, 30, 1.0)})
    db.analyze(kind=kind, buckets=10)
    return db


def run_workload():
    rows = []
    for kind in KINDS:
        db = build_database(kind)
        errors = []
        for sql in WORKLOAD:
            truth = db.execute(sql).cardinality
            estimate = db.estimate(sql)
            if truth > 0:
                errors.append(abs(estimate - truth) / truth)
        rows.append((kind, float(np.mean(errors)), float(np.max(errors))))
    return rows


def test_sql_workload_estimates(benchmark):
    rows = benchmark.pedantic(run_workload, rounds=1, iterations=1)

    record_report(
        f"SQL workload — estimate quality by catalog histogram kind "
        f"({len(WORKLOAD)} queries)",
        format_table(
            ["histogram kind", "mean rel. error", "max rel. error"],
            [list(r) for r in rows],
            precision=4,
        ),
    )

    by_kind = {r[0]: r for r in rows}
    # The frequency-aware histograms dominate the uniform assumption by a
    # wide margin.  (Equi-depth can edge out end-biased on join-heavy
    # workloads because it stores approximations for *every* value; the
    # paper's case for end-biased is its construction/storage cost and its
    # σ behaviour on selections of skewed values, not per-workload wins.)
    assert by_kind["end-biased"][1] <= by_kind["trivial"][1] / 5
    assert by_kind["serial"][1] <= by_kind["trivial"][1] / 5
    assert by_kind["equi-depth"][1] <= by_kind["trivial"][1] / 5
