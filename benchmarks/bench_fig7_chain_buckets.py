"""Figure 7: mean relative error versus number of buckets (five joins).

Paper shape: errors decrease with β for every class; "even with a small
number of buckets (β = 5), the errors drop significantly to a tolerable
level"; the v-optimal serial histogram is *not* always better than
end-biased on arbitrary queries (observed for mixed-skew at small β), but
their average difference is small — the justification for shipping
end-biased histograms.
"""

from __future__ import annotations

from _reporting import record_report

from repro.experiments.chains import sweep_chain_buckets
from repro.experiments.config import ChainExperimentConfig
from repro.experiments.report import format_series
from repro.experiments.selfjoin import HistogramType
from repro.queries.workload import QueryClass

CONFIG = ChainExperimentConfig(
    bucket_sweep=(1, 2, 3, 5, 7, 10, 15, 20, 30),
    num_joins=5,
    permutations=20,
    queries_per_class=5,
    seed=1995,
)


def test_fig7_error_vs_buckets(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_chain_buckets(CONFIG), rounds=1, iterations=1
    )

    for query_class in QueryClass:
        class_points = [p for p in points if p.query_class is query_class]
        series = {
            t.value: {p.parameter: p.errors[t] for p in class_points}
            for t in class_points[0].errors
        }
        record_report(
            f"Figure 7 — E[|S−S'|/S] vs number of buckets (5 joins, {query_class.value})",
            format_series("beta", series, precision=4),
        )

    by_class = {c: [p for p in points if p.query_class is c] for c in QueryClass}
    for query_class, class_points in by_class.items():
        for t in (HistogramType.SERIAL, HistogramType.END_BIASED):
            errors = [p.errors[t] for p in class_points]
            # Errors fall overall with more buckets...
            assert errors[-1] < errors[0]
        # ...and β = 5 already recovers most of the drop.
        eb = [p.errors[HistogramType.END_BIASED] for p in class_points]
        beta5 = next(
            p.errors[HistogramType.END_BIASED]
            for p in class_points
            if p.parameter == 5
        )
        assert beta5 - eb[-1] < 0.7 * (eb[0] - eb[-1]) + 1e-9

    # Serial and end-biased stay close on average (within 2x either way).
    gaps = []
    for p in points:
        serial = p.errors[HistogramType.SERIAL]
        eb = p.errors[HistogramType.END_BIASED]
        if max(serial, eb) > 1e-12:
            gaps.append(min(serial, eb) / max(serial, eb))
    assert sum(gaps) / len(gaps) > 0.4
