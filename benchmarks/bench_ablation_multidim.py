"""Ablation: multi-attribute statistics — 2-D histograms vs independence.

The paper's related work (Muralikrishna & DeWitt) motivates
multi-dimensional histograms for multi-attribute selections.  This bench
builds a correlated two-attribute frequency matrix and compares three ways
of estimating rectangular (range x range) selections:

* per-attribute marginals + independence assumption (1-D statistics only);
* a grid histogram (rectangular buckets, variance-guided equi-depth splits);
* a serial histogram applied to the matrix cells (frequency bucketing —
  accurate per cell but needing the full cell->bucket map).
"""

from __future__ import annotations

import numpy as np
from _reporting import record_report

from repro.core.matrix import FrequencyMatrix
from repro.util.rng import derive_rng
from repro.core.multidim import GridHistogram, independence_matrix
from repro.core.serial import v_optimal_serial_histogram
from repro.experiments.report import format_table

SIZE = 16
BUCKETS = 16
QUERIES = 60


def build_correlated_matrix(rng, correlation: float) -> FrequencyMatrix:
    """Mixture of a diagonal band (correlated) and a rank-1 background."""
    rows = np.sort(rng.uniform(1, 10, size=SIZE))[::-1]
    cols = np.sort(rng.uniform(1, 10, size=SIZE))[::-1]
    background = np.outer(rows, cols)
    band = np.zeros((SIZE, SIZE))
    for offset in (-1, 0, 1):
        band += np.diag(np.full(SIZE - abs(offset), 50.0), k=offset)
    mixed = (1 - correlation) * background / background.sum() + correlation * band / band.sum()
    return FrequencyMatrix(mixed * 10_000)


def run_multidim():
    gen = derive_rng(1995)
    rows = []
    for correlation in (0.0, 0.5, 0.9):
        matrix = build_correlated_matrix(gen, correlation)
        grid = GridHistogram.build(matrix, BUCKETS)
        serial = v_optimal_serial_histogram(
            matrix.array.ravel(), BUCKETS, method="dp"
        )
        serial_matrix = serial.approximate_array(matrix.array)
        indep_matrix = independence_matrix(matrix)

        errors = {"independence": 0.0, "grid": 0.0, "serial-cells": 0.0}
        for _ in range(QUERIES):
            r0, r1 = sorted(gen.integers(0, SIZE + 1, size=2))
            c0, c1 = sorted(gen.integers(0, SIZE + 1, size=2))
            if r0 == r1 or c0 == c1:
                continue
            truth = float(matrix.array[r0:r1, c0:c1].sum())
            if truth <= 0:
                continue
            errors["independence"] += abs(truth - float(indep_matrix[r0:r1, c0:c1].sum())) / truth
            errors["grid"] += abs(truth - grid.estimate_region(r0, r1, c0, c1)) / truth
            errors["serial-cells"] += abs(truth - float(serial_matrix[r0:r1, c0:c1].sum())) / truth
        rows.append(
            (
                correlation,
                errors["independence"] / QUERIES,
                errors["grid"] / QUERIES,
                errors["serial-cells"] / QUERIES,
            )
        )
    return rows


def test_ablation_multidim(benchmark):
    rows = benchmark.pedantic(run_multidim, rounds=1, iterations=1)

    record_report(
        "Ablation — 2-D range-selection estimation: independence vs grid "
        f"histogram vs serial-on-cells ({SIZE}x{SIZE}, {BUCKETS} buckets)",
        format_table(
            ["correlation", "independence", "grid histogram", "serial on cells"],
            [list(r) for r in rows],
            precision=4,
        ),
    )

    by_corr = {r[0]: r for r in rows}
    # With no correlation the rank-1 independence model is exact.
    assert by_corr[0.0][1] < 1e-9
    # Under strong correlation the 2-D structures beat independence.
    assert by_corr[0.9][2] < by_corr[0.9][1]
    # Independence degrades monotonically with correlation.
    assert by_corr[0.9][1] > by_corr[0.5][1] > by_corr[0.0][1]
