"""Ablation: histogram quality → optimizer plan quality (the paper's opening
motivation, via Selinger et al. and the error-propagation result).

Builds a three-relation tree query over skewed data, lets the
System-R-style orderer pick a plan under catalogs built with each histogram
kind, and replays every chosen plan on the real data.  Better statistics
should never lead to a (much) worse true cost, and the trivial catalog's
estimate of its own plan is the least accurate.
"""

from __future__ import annotations

import numpy as np
from _reporting import record_report

from repro.data.quantize import quantize_to_integers
from repro.util.rng import derive_rng
from repro.data.zipf import zipf_frequencies
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.relation import Relation
from repro.experiments.report import format_table
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.joinorder import JoinEdge, JoinGraph, optimal_join_order
from repro.optimizer.truth import CountedTruth

KINDS = ("trivial", "equi-depth", "end-biased", "serial")


def build_database(rng):
    def zipf_col(total, domain, z):
        freqs = quantize_to_integers(zipf_frequencies(total, domain, z))
        column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
        rng.shuffle(column)
        return column

    relations = [
        Relation.from_columns("A", {"x": zipf_col(600, 12, 2.0)}),
        Relation.from_columns(
            "B", {"x": zipf_col(500, 12, 0.3), "y": zipf_col(500, 10, 1.5)}
        ),
        Relation.from_columns("C", {"y": zipf_col(400, 10, 1.0)}),
    ]
    edges = [JoinEdge("A", "x", "B", "x"), JoinEdge("B", "y", "C", "y")]
    return JoinGraph(relations, edges)


def run_optimizer_ablation():
    graph = build_database(derive_rng(1995))
    truth = CountedTruth(graph)
    cost_model = CostModel()
    rows = []
    for kind in KINDS:
        catalog = StatsCatalog()
        for relation in graph.relations.values():
            for attr in relation.schema.names:
                analyze_relation(relation, attr, catalog, kind=kind, buckets=6)
        estimator = CardinalityEstimator(catalog)
        plan = optimal_join_order(graph, estimator)
        sizes = truth.plan_rows(plan)
        true_cost = cost_model.plan_cost(plan, row_source=lambda node: sizes[node])
        true_rows = sizes[plan]
        est_error = abs(true_rows - plan.estimated_rows) / max(true_rows, 1.0)
        rows.append((kind, plan.estimated_rows, true_rows, est_error, true_cost))
    return rows


def test_ablation_optimizer_plan_quality(benchmark):
    rows = benchmark.pedantic(run_optimizer_ablation, rounds=1, iterations=1)

    record_report(
        "Ablation — plan choice under different catalog histograms "
        "(3-relation tree query, skewed data)",
        format_table(
            ["histogram kind", "est rows", "true rows", "rel est error", "true plan cost"],
            [list(r) for r in rows],
            precision=3,
        ),
    )

    by_kind = {r[0]: r for r in rows}
    # Frequency-aware histograms estimate the final size better than trivial.
    assert by_kind["end-biased"][3] <= by_kind["trivial"][3] + 1e-9
    assert by_kind["serial"][3] <= by_kind["trivial"][3] + 1e-9
    # And the plan they pick is never worse than the trivial catalog's pick.
    assert by_kind["end-biased"][4] <= by_kind["trivial"][4] * 1.001
