"""Tree-query extension: star queries via frequency tensors.

The paper proves its results for chain queries and states that arbitrary
tree queries follow with tensor machinery.  This bench exercises that
generalisation on star queries (the bushiest trees): per-relation
frequency-set-only histograms versus the trivial histogram, with exact
sizes computed by tensor contraction.

Expected shape (mirroring Figure 6): errors grow with the hub's degree,
high skew is much harder than low, and the v-optimal histograms beat the
trivial one by orders of magnitude on skewed data.
"""

from __future__ import annotations

from _reporting import record_report

from repro.experiments.report import format_series
from repro.experiments.selfjoin import HistogramType
from repro.experiments.trees import sweep_star_leaves
from repro.queries.workload import QueryClass

LEAVES = (1, 2, 3, 4)


def test_tree_star_queries(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_star_leaves(
            LEAVES, buckets=5, domain=5, permutations=15, queries_per_class=3
        ),
        rounds=1,
        iterations=1,
    )

    for query_class in (QueryClass.LOW_SKEW, QueryClass.HIGH_SKEW):
        class_points = [p for p in points if p.query_class is query_class]
        series = {
            t.value: {float(p.num_leaves): p.errors[t] for p in class_points}
            for t in class_points[0].errors
        }
        record_report(
            f"Tree extension — E[|S−S'|/S] vs star degree (beta=5, {query_class.value})",
            format_series("leaves", series, precision=4),
        )

    high = [p for p in points if p.query_class is QueryClass.HIGH_SKEW]
    low = [p for p in points if p.query_class is QueryClass.LOW_SKEW]
    # Trivial degrades sharply with skew; optimal families stay tolerable.
    assert high[-1].errors[HistogramType.TRIVIAL] > 5 * high[-1].errors[HistogramType.END_BIASED]
    assert high[-1].errors[HistogramType.TRIVIAL] > low[-1].errors[HistogramType.TRIVIAL]
    # Larger stars are harder than single joins for every type (high skew).
    assert high[-1].errors[HistogramType.END_BIASED] >= high[0].errors[HistogramType.END_BIASED]
