"""Ablation: exact bucket averages vs the paper's integer rounding.

Section 2.3 defines the histogram matrix entry as "the integer closest to"
the bucket average.  The analysis (Proposition 3.1 etc.) uses exact
averages; this ablation quantifies how little the rounding matters at
realistic scales — and that it matters most for tiny relation sizes.
"""

from __future__ import annotations

import numpy as np
from _reporting import record_report

from repro.core.serial import v_opt_hist_dp
from repro.data.zipf import zipf_frequencies
from repro.experiments.report import format_table

TOTALS = (100, 1_000, 10_000, 100_000)
DOMAIN = 100
BETA = 5


def run_rounding():
    rows = []
    for total in TOTALS:
        freqs = zipf_frequencies(total, DOMAIN, 1.0)
        exact_size = float(np.dot(freqs, freqs))
        hist = v_opt_hist_dp(freqs, BETA)
        approx = hist.approximate_frequencies()
        rounded = hist.approximate_frequencies(rounded=True)
        estimate_exact = float(np.dot(approx, approx))
        estimate_rounded = float(np.dot(rounded, rounded))
        rows.append(
            (
                total,
                abs(exact_size - estimate_exact) / exact_size,
                abs(exact_size - estimate_rounded) / exact_size,
            )
        )
    return rows


def test_ablation_rounding_effect(benchmark):
    rows = benchmark.pedantic(run_rounding, rounds=1, iterations=1)

    record_report(
        "Ablation — relative self-join error: exact vs rounded bucket "
        f"averages (M={DOMAIN}, beta={BETA}, z=1)",
        format_table(
            ["T", "rel err (exact avg)", "rel err (rounded avg)"],
            [list(r) for r in rows],
            precision=6,
        ),
    )

    # Rounding perturbs the estimate by at most a small relative amount,
    # shrinking as T grows (rounding is ±0.5 against averages of T/M scale).
    gaps = [abs(r[2] - r[1]) for r in rows]
    assert gaps[-1] <= gaps[0] + 1e-9
    assert all(gap < 0.05 for gap in gaps)
