"""Ablation: frequency-order vs value-order bucketing, by query type.

The paper's serial histograms bucket by frequency; the traditional families
bucket value ranges.  This bench makes the trade-off explicit by scoring
both families on *both* workloads over the same shuffled-Zipf attribute:

* **self-join / equality error** — frequency bucketing should win
  (Theorem 3.1's regime);
* **range-selection error** — value-range bucketing (and its DP optimum)
  should win, since ranges integrate over value order.
"""

from __future__ import annotations

import numpy as np
from _reporting import record_report

from repro.core.biased import v_opt_bias_hist
from repro.util.rng import derive_rng
from repro.core.estimator import estimate_range
from repro.core.frequency import AttributeDistribution
from repro.core.heuristic import equi_depth_histogram, equi_width_histogram
from repro.core.serial import v_opt_hist_dp
from repro.core.valueorder import v_optimal_value_histogram
from repro.data.zipf import zipf_frequencies
from repro.experiments.report import format_table

DOMAIN = 60
BETA = 8
RANGE_QUERIES = 80
TRIALS = 10


def run_valueorder():
    gen = derive_rng(1995)
    base = zipf_frequencies(3000, DOMAIN, 1.2)
    builders = {
        "equi-width": lambda d: equi_width_histogram(d, BETA),
        "equi-depth": lambda d: equi_depth_histogram(d, BETA),
        "v-opt value-range": lambda d: v_optimal_value_histogram(d, BETA),
        "end-biased": lambda d: v_opt_bias_hist(d.frequencies, BETA, values=d.values),
        "v-opt serial": lambda d: v_opt_hist_dp(d.frequencies, BETA, values=d.values),
    }
    sums = {name: [0.0, 0.0] for name in builders}  # [selfjoin, range]
    exact_self = float(np.dot(base, base))
    for _ in range(TRIALS):
        dist = AttributeDistribution(range(DOMAIN), gen.permutation(base))
        for name, build in builders.items():
            hist = build(dist)
            approx = hist.approximate_frequencies()
            estimate = float(np.dot(approx, approx))
            sums[name][0] += abs(exact_self - estimate) / exact_self
            range_error = 0.0
            for _ in range(RANGE_QUERIES // TRIALS):
                lo, hi = sorted(gen.integers(0, DOMAIN, size=2))
                truth = sum(dist.frequency_of(v) for v in range(lo, hi + 1))
                if truth <= 0:
                    continue
                est = estimate_range(hist, low=lo, high=hi)
                range_error += abs(truth - est) / truth
            sums[name][1] += range_error / (RANGE_QUERIES // TRIALS)
    return [
        (name, values[0] / TRIALS, values[1] / TRIALS)
        for name, values in sums.items()
    ]


def test_ablation_value_vs_frequency_order(benchmark):
    rows = benchmark.pedantic(run_valueorder, rounds=1, iterations=1)

    record_report(
        "Ablation — frequency-order vs value-order bucketing "
        f"(M={DOMAIN}, beta={BETA}, shuffled Zipf z=1.2): mean relative error",
        format_table(
            ["histogram", "self-join", "range selections"],
            [list(r) for r in rows],
            precision=4,
        ),
    )

    by_name = {r[0]: r for r in rows}
    # Frequency bucketing wins equality-style errors...
    assert by_name["v-opt serial"][1] <= by_name["v-opt value-range"][1] + 1e-9
    assert by_name["end-biased"][1] < by_name["equi-width"][1]
    # ...value-range DP wins its own family on both metrics...
    assert by_name["v-opt value-range"][1] <= by_name["equi-width"][1] + 1e-9
    assert by_name["v-opt value-range"][2] <= by_name["equi-width"][2] + 1e-9
    # ...and value-aware serial histograms remain competitive on ranges
    # because they store every value's bucket explicitly.
    assert by_name["v-opt serial"][2] <= by_name["equi-width"][2] * 1.5
