"""Section 6 operators: ``≠`` joins and range joins.

The paper's conclusions argue serial histograms remain (v-)optimal for the
complement (``≠``) operator and for range predicates.  This bench measures
estimation quality of the v-optimal end-biased histograms on ``≠`` and
``<`` joins over Zipf data, against the trivial histogram, and checks the
complement identity |S_≠ − S'_≠| = |S_= − S'_=| numerically.
"""

from __future__ import annotations

import numpy as np
from _reporting import record_report

from repro.core.biased import v_opt_bias_hist
from repro.util.rng import derive_rng
from repro.core.frequency import AttributeDistribution
from repro.core.heuristic import trivial_histogram
from repro.core.inequality import (
    estimate_not_equals_join,
    estimate_range_join,
    not_equals_join_size,
    range_join_size,
)
from repro.data.zipf import zipf_frequencies
from repro.experiments.report import format_table

DOMAIN = 30
BETA = 6
TRIALS = 25


def run_operators():
    gen = derive_rng(1995)
    rows = []
    for z_left, z_right in ((0.5, 1.0), (1.5, 1.5), (2.5, 1.0)):
        base_left = zipf_frequencies(1000, DOMAIN, z_left)
        base_right = zipf_frequencies(800, DOMAIN, z_right)
        sums = {"ne_opt": 0.0, "ne_triv": 0.0, "lt_opt": 0.0, "lt_triv": 0.0}
        for _ in range(TRIALS):
            left = AttributeDistribution(range(DOMAIN), gen.permutation(base_left))
            right = AttributeDistribution(range(DOMAIN), gen.permutation(base_right))
            h_left = v_opt_bias_hist(left.frequencies, BETA, values=left.values)
            h_right = v_opt_bias_hist(right.frequencies, BETA, values=right.values)
            t_left = trivial_histogram(left)
            t_right = trivial_histogram(right)

            ne_true = not_equals_join_size(left, right)
            sums["ne_opt"] += abs(ne_true - estimate_not_equals_join(h_left, h_right)) / ne_true
            sums["ne_triv"] += abs(ne_true - estimate_not_equals_join(t_left, t_right)) / ne_true

            lt_true = range_join_size(left, right, "<")
            sums["lt_opt"] += abs(lt_true - estimate_range_join(h_left, h_right, "<")) / lt_true
            sums["lt_triv"] += abs(lt_true - estimate_range_join(t_left, t_right, "<")) / lt_true
        rows.append(
            (
                f"z=({z_left:g},{z_right:g})",
                sums["ne_triv"] / TRIALS,
                sums["ne_opt"] / TRIALS,
                sums["lt_triv"] / TRIALS,
                sums["lt_opt"] / TRIALS,
            )
        )
    return rows


def test_sec6_operator_estimates(benchmark):
    rows = benchmark.pedantic(run_operators, rounds=1, iterations=1)

    record_report(
        "Section 6 — mean relative error on ≠ and < joins "
        f"(M={DOMAIN}, beta={BETA}, {TRIALS} arrangements)",
        format_table(
            ["skews", "≠ trivial", "≠ end-biased", "< trivial", "< end-biased"],
            [list(r) for r in rows],
            precision=5,
        ),
    )

    for label, ne_triv, ne_opt, lt_triv, lt_opt in rows:
        # Optimal histograms never lose to trivial on these operators.
        assert ne_opt <= ne_triv + 1e-9, label
        assert lt_opt <= lt_triv + 1e-9, label
    # ≠ relative errors are tiny in absolute terms: the complement of a
    # small equality error against a huge Cartesian base.
    assert all(r[2] < 0.05 for r in rows)
