"""Ablation: uniform vs optimal allocation of a global bucket budget.

Real catalogs cap total statistics space.  The naive policy gives every
attribute the same β; the exact DP allocator
(`repro.core.advisor.allocate_bucket_budget`) spends the same budget where
the error formula says it matters.  This bench compares total (and worst
per-attribute) relative self-join error across a mixed-skew schema at
several budgets.
"""

from __future__ import annotations

import numpy as np
from _reporting import record_report

from repro.core.advisor import allocate_bucket_budget, optimal_error_for_buckets
from repro.data.zipf import zipf_frequencies
from repro.experiments.report import format_table

SKEWS = (0.02, 0.3, 1.0, 1.8, 3.0)
DOMAIN = 120
TOTAL = 10_000
BUDGETS = (10, 20, 40)


def run_budget_ablation():
    sets = [zipf_frequencies(TOTAL, DOMAIN, z) for z in SKEWS]
    exacts = [float(np.dot(s, s)) for s in sets]
    rows = []
    for budget in BUDGETS:
        uniform_beta = budget // len(sets)
        uniform_errors = [
            optimal_error_for_buckets(s, max(1, uniform_beta)) / e
            for s, e in zip(sets, exacts)
        ]
        allocation = allocate_bucket_budget(sets, budget)
        dp_errors = [
            optimal_error_for_buckets(s, k) / e
            for s, k, e in zip(sets, allocation, exacts)
        ]
        rows.append(
            (
                budget,
                "/".join(str(max(1, uniform_beta)) for _ in sets),
                sum(uniform_errors),
                "/".join(str(k) for k in allocation),
                sum(dp_errors),
            )
        )
    return rows


def test_ablation_budget_allocation(benchmark):
    rows = benchmark.pedantic(run_budget_ablation, rounds=1, iterations=1)

    record_report(
        "Ablation — global bucket budget: uniform split vs exact DP "
        f"allocation ({len(SKEWS)} attributes, z={SKEWS}, M={DOMAIN})",
        format_table(
            ["budget", "uniform betas", "uniform Σ rel.err", "DP betas", "DP Σ rel.err"],
            [list(r) for r in rows],
            precision=4,
        ),
    )

    for budget, _, uniform_total, _, dp_total in rows:
        # Same budget, never worse in total error.
        assert dp_total <= uniform_total + 1e-9
    # At tight budgets the advantage is substantial.
    tightest = rows[0]
    assert tightest[4] < tightest[2]
