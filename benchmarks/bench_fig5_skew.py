"""Figure 5: self-join σ versus Zipf skew z (β=5, M=100, T=1000).

Paper shape: the frequency-based histograms (serial, end-biased,
equi-depth) exhibit a maximum — low skew is easy (bucket choice barely
matters) and high skew is easy (few huge frequencies get univalued buckets,
the flat tail goes in one multivalued bucket) — while equi-width and the
trivial histogram deteriorate monotonically and "fall out of the chart".
"""

from __future__ import annotations

from _reporting import record_report

from repro.experiments.config import SelfJoinExperimentConfig
from repro.experiments.report import format_series
from repro.experiments.selfjoin import HistogramType, sweep_skew

CONFIG = SelfJoinExperimentConfig(
    z_sweep=(0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5),
    buckets=5,
    trials=50,
    seed=1995,
)


def test_fig5_sigma_vs_skew(benchmark):
    points = benchmark.pedantic(lambda: sweep_skew(CONFIG), rounds=1, iterations=1)

    series = {
        t.value: {p.parameter: p.sigmas[t] for p in points if t in p.sigmas}
        for t in HistogramType
    }
    record_report(
        "Figure 5 — σ vs Zipf skew z (self-join, beta=5, M=100, T=1000)",
        format_series("z", series, precision=1),
    )

    end_biased = [p.sigmas[HistogramType.END_BIASED] for p in points]
    serial = [p.sigmas[HistogramType.SERIAL] for p in points]
    trivial = [p.sigmas[HistogramType.TRIVIAL] for p in points]

    # Frequency-based histograms peak in the middle of the sweep.
    for curve in (end_biased, serial):
        peak_index = curve.index(max(curve))
        assert 0 < peak_index < len(curve) - 1
        assert curve[0] < max(curve) * 0.01  # z=0 is trivial to capture
        assert curve[-1] < max(curve)
    # Trivial/equi-width blow up monotonically (checked loosely: endpoints).
    assert trivial[-1] > trivial[0]
    assert trivial[-1] > 10 * max(end_biased)
