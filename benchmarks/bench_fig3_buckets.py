"""Figure 3: self-join σ versus number of buckets (M=100, z=1, T=1000).

Paper shape: ranking trivial ≈ equi-width > equi-depth > end-biased >
serial; serial/end-biased improve steeply for small β then flatten; the
trivial curve is flat.  The paper could only plot the serial curve to β=5
(exponential V-OptHist); we use the equivalent dynamic program and plot the
whole range, marking the paper's cut-off in the ablation bench instead.
"""

from __future__ import annotations

import pytest
from _reporting import record_report

from repro.experiments.config import SelfJoinExperimentConfig
from repro.experiments.report import format_series
from repro.experiments.selfjoin import HistogramType, sweep_buckets

CONFIG = SelfJoinExperimentConfig(
    bucket_sweep=(1, 2, 3, 4, 5, 7, 10, 15, 20, 25, 30),
    trials=50,
    seed=1995,
)


def test_fig3_sigma_vs_buckets(benchmark):
    points = benchmark.pedantic(lambda: sweep_buckets(CONFIG), rounds=1, iterations=1)

    series = {
        t.value: {p.parameter: p.sigmas[t] for p in points if t in p.sigmas}
        for t in HistogramType
    }
    record_report(
        "Figure 3 — σ vs number of buckets (self-join, M=100, z=1, T=1000)",
        format_series("beta", series, precision=1),
    )

    # Paper-shape assertions at the canonical β = 5 point.
    at5 = next(p for p in points if p.parameter == 5)
    assert at5.sigmas[HistogramType.SERIAL] <= at5.sigmas[HistogramType.END_BIASED]
    assert at5.sigmas[HistogramType.END_BIASED] < 0.5 * at5.sigmas[HistogramType.EQUI_DEPTH]
    assert at5.sigmas[HistogramType.EQUI_DEPTH] <= at5.sigmas[HistogramType.TRIVIAL] * 1.05
    # Serial & end-biased strictly improve with buckets; trivial is flat.
    serial = [p.sigmas[HistogramType.SERIAL] for p in points]
    assert serial == sorted(serial, reverse=True)
    trivial = [p.sigmas[HistogramType.TRIVIAL] for p in points]
    assert max(trivial) == pytest.approx(min(trivial))
    # Diminishing returns: most of the improvement happens by β ≈ 5.
    drop_early = serial[0] - serial[4]
    drop_late = serial[4] - serial[-1]
    assert drop_early > drop_late
