"""Ablation: exhaustive V-OptHist vs the equivalent dynamic program.

DESIGN.md substitutes the O(M²β) DP for the paper's exponential exhaustive
search in the large-M figure sweeps.  This bench justifies the substitution:
identical errors on every feasible instance, with the DP flat where the
exhaustive algorithm blows up — i.e. the paper's β=5 serial cut-off in
Figure 3 is an artefact of the algorithm, not of the histogram class.
"""

from __future__ import annotations

import time

import pytest
from _reporting import record_report

from repro.core.serial import serial_partition_count, v_opt_hist_dp, v_opt_hist_exhaustive
from repro.data.zipf import zipf_frequencies
from repro.experiments.report import format_table

SIZES = (10, 14, 18, 22, 26)
BETA = 4


def run_comparison():
    rows = []
    for size in SIZES:
        freqs = zipf_frequencies(1000, size, 1.0)
        start = time.perf_counter()
        exhaustive = v_opt_hist_exhaustive(freqs, BETA)
        exhaustive_seconds = time.perf_counter() - start
        start = time.perf_counter()
        dp = v_opt_hist_dp(freqs, BETA)
        dp_seconds = time.perf_counter() - start
        rows.append(
            (
                size,
                serial_partition_count(size, BETA),
                exhaustive_seconds,
                dp_seconds,
                exhaustive.self_join_error(),
                dp.self_join_error(),
            )
        )
    return rows


def test_ablation_dp_equals_exhaustive(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    record_report(
        f"Ablation — exhaustive V-OptHist vs dynamic program (beta={BETA})",
        format_table(
            ["M", "partitions", "exhaustive s", "dp s", "exhaustive err", "dp err"],
            [list(r) for r in rows],
            precision=5,
        ),
    )

    for size, partitions, exh_s, dp_s, exh_err, dp_err in rows:
        assert dp_err == pytest.approx(exh_err, rel=1e-9, abs=1e-7)
    # Exhaustive cost grows with the partition count; the DP does not track it.
    assert rows[-1][2] > rows[0][2]
    growth_exhaustive = rows[-1][2] / max(rows[0][2], 1e-9)
    growth_dp = rows[-1][3] / max(rows[0][3], 1e-9)
    assert growth_exhaustive > growth_dp
