"""Observability overhead: the instrumented serving path must stay cheap.

The telemetry layer was built around one budget: spans and counters on
the batch boundary, never per probe.  This bench drives the same
10k-probe batch with instrumentation enabled and disabled
(:func:`repro.obs.set_instrumentation`) and checks the enabled path
costs at most 5% extra wall time (plus a small absolute epsilon so
sub-millisecond jitter cannot fail the gate on fast machines).  The
measured pair is also written to ``benchmarks/results/BENCH_obs.json``
so overhead can be tracked across revisions.
"""

from __future__ import annotations

import json
from pathlib import Path
from time import perf_counter

import numpy as np
from _reporting import record_report

from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.relation import Relation
from repro.experiments.report import format_table
from repro.obs import runtime
from repro.serve import EqualityProbe, EstimationService, RangeProbe
from repro.util.rng import derive_rng

N_RELATIONS = 4
TOTAL = 4000
DOMAIN = 100
N_PROBES = 10_000
ROUNDS = 15
MAX_OVERHEAD = 0.05
#: Absolute slack for scheduler jitter only.  This must stay well under
#: ``off_seconds * MAX_OVERHEAD`` (≈250µs for the ~5ms batch measured
#: here) or the fractional budget is dead code and a real regression
#: passes silently — which is exactly what happened when this was 2ms:
#: a 7.6% overhead sailed through the gate.
EPSILON_SECONDS = 2e-4
RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_obs.json"


def build_service(gen):
    catalog = StatsCatalog()
    for index in range(N_RELATIONS):
        freqs = quantize_to_integers(
            zipf_frequencies(TOTAL, DOMAIN, 0.5 + 0.4 * index)
        )
        column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
        gen.shuffle(column)
        relation = Relation.from_columns(f"R{index}", {"a": column})
        analyze_relation(relation, "a", catalog, kind="end-biased", buckets=8)
    return EstimationService(catalog, name="bench-obs")


def build_probes(gen):
    probes = []
    for _ in range(N_PROBES):
        relation = f"R{gen.integers(N_RELATIONS)}"
        if gen.random() < 0.6:
            probes.append(EqualityProbe(relation, "a", int(gen.integers(DOMAIN))))
        else:
            low, high = sorted(int(v) for v in gen.integers(0, DOMAIN, size=2))
            probes.append(RangeProbe(relation, "a", low, high))
    return probes


def _timed_batch(service, probes):
    started = perf_counter()
    answer = service.estimate_batch(probes)
    return perf_counter() - started, answer


def run_obs_overhead():
    gen = derive_rng(1995)
    service = build_service(gen)
    probes = build_probes(gen)

    # Warm the compiled-table cache so neither arm pays compile time.
    service.estimate_batch(probes[:100])

    # Interleave the arms round by round: background-load drift then hits
    # both arms equally instead of landing on whichever arm ran second,
    # and best-of-N damps whatever jitter remains.  Measured sequentially
    # on a single-core box, the on-vs-off delta wobbled by ±8% — far
    # above the 5% budget this gate enforces.
    on_seconds = off_seconds = float("inf")
    on_answer = off_answer = None
    try:
        for _ in range(ROUNDS):
            runtime.set_instrumentation(True)
            elapsed, on_answer = _timed_batch(service, probes)
            on_seconds = min(on_seconds, elapsed)
            runtime.set_instrumentation(False)
            elapsed, off_answer = _timed_batch(service, probes)
            off_seconds = min(off_seconds, elapsed)
    finally:
        runtime.set_instrumentation(True)

    return {
        "on_seconds": on_seconds,
        "off_seconds": off_seconds,
        "on_answer": on_answer,
        "off_answer": off_answer,
        "stats": service.stats(),
    }


def test_obs_overhead_within_budget(benchmark):
    result = benchmark.pedantic(run_obs_overhead, rounds=1, iterations=1)
    on, off = result["on_seconds"], result["off_seconds"]
    overhead = (on - off) / off if off > 0 else 0.0

    record_report(
        f"Observability overhead — {N_PROBES}-probe batch, instrumentation "
        f"on vs off (interleaved, best of {ROUNDS})",
        format_table(
            ["arm", "seconds", "probes/sec"],
            [
                ["instrumented", on, N_PROBES / on],
                ["disabled", off, N_PROBES / off],
                ["overhead", overhead, float("nan")],
            ],
            precision=4,
        ),
    )

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "bench": "obs_overhead",
                "probes": N_PROBES,
                "rounds": ROUNDS,
                "instrumented_seconds": on,
                "disabled_seconds": off,
                "overhead_fraction": overhead,
                "budget_fraction": MAX_OVERHEAD,
            },
            indent=2,
        )
        + "\n"
    )

    # Estimates are identical with telemetry on or off.
    assert np.array_equal(result["on_answer"], result["off_answer"])
    # The off arm still keeps its plain ServiceMetrics counters.
    assert result["stats"].probes_served >= (ROUNDS * 2 + 1) * 100
    # The budget: within 5%, plus jitter-sized absolute slack.  The
    # epsilon is deliberately small relative to the batch time so an
    # over-budget run fails here instead of hiding inside the slack.
    assert on <= max(off * (1.0 + MAX_OVERHEAD), off + EPSILON_SECONDS), (
        f"instrumentation overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} "
        f"(on={on:.4f}s off={off:.4f}s)"
    )
