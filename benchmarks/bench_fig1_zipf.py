"""Figure 1: the Zipf frequency-distribution family (Section 2, eq. (1)).

Regenerates the plotted series — frequency versus rank for
``T = 1000, M = 100`` and ``z = 0, 0.02, ..., 0.1`` — and, as in the rest of
the evaluation, the wider skews used later.  The paper's visual claims are
checked numerically: curves cross exactly once (higher z is higher at low
rank, lower at high rank) and z = 0 is flat.
"""

from __future__ import annotations

from _reporting import record_report

from repro.data.zipf import zipf_skew_series
from repro.experiments.report import format_series


def run_figure1():
    z_values = [0.0, 0.02, 0.04, 0.05, 0.08, 0.1, 0.5, 1.0]
    series = zipf_skew_series(1000, 100, z_values)
    sampled_ranks = [1, 2, 5, 10, 20, 50, 100]
    table = {
        f"z={z:g}": {float(rank): float(series[z][rank - 1]) for rank in sampled_ranks}
        for z in z_values
    }
    return series, table


def test_fig1_zipf_family(benchmark):
    series, table = benchmark(run_figure1)
    # Numeric checks of the figure's visual content.
    flat = series[0.0]
    assert abs(flat[0] - flat[-1]) < 1e-9
    assert series[0.1][0] > series[0.02][0]
    assert series[0.1][-1] < series[0.02][-1]
    record_report(
        "Figure 1 — Zipf frequency distribution (T=1000, M=100), "
        "frequency at sampled ranks",
        format_series("rank", table, precision=2),
    )
