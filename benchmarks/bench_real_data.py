"""Section 5.1.2: real-life data (NBA player statistics surrogate).

The paper ran the self-join comparison on NBA player performance measures
and reports the results "verified what was observed for the Zipf
distribution, despite the wide variety of distributions exhibited by the
data".  The original dataset is unavailable; a documented synthetic
surrogate with the same qualitative shapes stands in (see DESIGN.md).
"""

from __future__ import annotations

from _reporting import record_report

from repro.data.realworld import STAT_ATTRIBUTES, nba_player_statistics, player_stat_frequency_set
from repro.experiments.report import format_table
from repro.experiments.selfjoin import HistogramType, self_join_sigmas

BETA = 5
TRIALS = 40


def run_real_data():
    seasons = nba_player_statistics(players=400)
    rows = {}
    for attribute in STAT_ATTRIBUTES:
        freqs = player_stat_frequency_set(seasons, attribute)
        beta = min(BETA, freqs.size)
        rows[attribute] = (
            freqs.size,
            self_join_sigmas(freqs, beta, trials=TRIALS, rng=1995),
        )
    return rows


def test_real_data_histogram_ranking(benchmark):
    rows = benchmark.pedantic(run_real_data, rounds=1, iterations=1)

    table = [
        [
            attribute,
            size,
            sigmas[HistogramType.TRIVIAL],
            sigmas[HistogramType.EQUI_WIDTH],
            sigmas[HistogramType.EQUI_DEPTH],
            sigmas[HistogramType.END_BIASED],
            sigmas[HistogramType.SERIAL],
        ]
        for attribute, (size, sigmas) in rows.items()
    ]
    record_report(
        "Section 5.1.2 — self-join σ on real-life-style data "
        f"(NBA surrogate, beta={BETA})",
        format_table(
            ["attribute", "M", "trivial", "equi-width", "equi-depth", "end-biased", "serial"],
            table,
            precision=1,
        ),
    )

    # The Zipf ranking holds per attribute, across very different shapes.
    for attribute, (size, sigmas) in rows.items():
        assert sigmas[HistogramType.SERIAL] <= sigmas[HistogramType.END_BIASED] + 1e-9, attribute
        assert sigmas[HistogramType.END_BIASED] <= sigmas[HistogramType.TRIVIAL] + 1e-9, attribute
        assert sigmas[HistogramType.EQUI_DEPTH] <= sigmas[HistogramType.TRIVIAL] * 1.1, attribute
