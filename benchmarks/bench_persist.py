"""Persistence benchmark: snapshot save/load and journal replay at scale.

Crash safety must not make statistics maintenance unaffordable.  This
bench builds a 100-relation catalog (a realistic warehouse-sized stats
store), then times the three durability paths a production deployment
exercises continuously:

* atomic checksummed snapshot **save** (serialise + tmp + fsync + rename);
* verified snapshot **load** (parse + per-entry checksum check);
* write-ahead **append** (fsync per acknowledged delta) and the
  **replay** of those deltas onto a freshly loaded snapshot.

Alongside the timings it checks the round trip is exact and that
recovery of the snapshot+journal pair reports clean.  Medians land in
``benchmarks/results/BENCH_persist.json`` (like BENCH_serve.json and
BENCH_net.json) so regressions are diffable across runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from time import perf_counter

from _reporting import record_report

from repro.engine.catalog import CatalogEntry, CompactEndBiased, StatsCatalog
from repro.engine.journal import MaintenanceJournal, read_journal, replay_records
from repro.engine.persist import catalog_to_dict, load_catalog, save_catalog
from repro.experiments.report import format_table
from repro.util.rng import derive_rng

N_RELATIONS = 100
EXPLICIT_PER_RELATION = 40
N_DELTAS = 1_000

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_persist.json"


def build_catalog(gen):
    catalog = StatsCatalog()
    for index in range(N_RELATIONS):
        frequencies = gen.integers(1, 500, size=EXPLICIT_PER_RELATION)
        explicit = {
            f"v{value_index}": float(frequency)
            for value_index, frequency in enumerate(frequencies)
        }
        compact = CompactEndBiased(
            explicit=explicit,
            remainder_count=int(gen.integers(10, 200)),
            remainder_average=float(gen.integers(1, 20)),
        )
        catalog.put(
            CatalogEntry(
                relation=f"R{index}",
                attribute="a",
                kind="end-biased",
                histogram=None,
                compact=compact,
                distinct_count=compact.distinct_count,
                total_tuples=compact.total,
            )
        )
    return catalog


def run_persist_bench(tmp_path):
    gen = derive_rng(2026)
    catalog = build_catalog(gen)
    snapshot = tmp_path / "catalog.json"
    wal = tmp_path / "wal.jsonl"

    started = perf_counter()
    save_catalog(catalog, snapshot)
    save_seconds = perf_counter() - started

    started = perf_counter()
    loaded = load_catalog(snapshot)
    load_seconds = perf_counter() - started

    journal = MaintenanceJournal(wal)
    relations = [f"R{int(r)}" for r in gen.integers(0, N_RELATIONS, size=N_DELTAS)]
    values = [f"v{int(v)}" for v in gen.integers(0, EXPLICIT_PER_RELATION, size=N_DELTAS)]
    started = perf_counter()
    for relation, value in zip(relations, values):
        journal.append_insert(relation, "a", value)
    append_seconds = perf_counter() - started

    started = perf_counter()
    records, torn = read_journal(wal)
    stats = replay_records(loaded, records)
    replay_seconds = perf_counter() - started

    report = load_catalog(snapshot, recover=True, journal=wal)

    return {
        "round_trip_exact": catalog_to_dict(load_catalog(snapshot))
        == catalog_to_dict(catalog),
        "torn": torn,
        "replay_applied": stats.applied,
        "recovery_clean": report.clean,
        "recovery_replayed": report.journal_replayed,
        "save_seconds": save_seconds,
        "load_seconds": load_seconds,
        "append_seconds": append_seconds,
        "replay_seconds": replay_seconds,
    }


def test_persist_throughput(benchmark, tmp_path):
    result = benchmark.pedantic(run_persist_bench, args=(tmp_path,), rounds=1, iterations=1)

    record_report(
        f"Durability — {N_RELATIONS}-relation catalog snapshot + {N_DELTAS}-delta WAL",
        format_table(
            ["path", "seconds", "items/sec"],
            [
                ["snapshot save", result["save_seconds"], N_RELATIONS / result["save_seconds"]],
                ["snapshot load", result["load_seconds"], N_RELATIONS / result["load_seconds"]],
                ["journal append", result["append_seconds"], N_DELTAS / result["append_seconds"]],
                ["journal replay", result["replay_seconds"], N_DELTAS / result["replay_seconds"]],
            ],
            precision=4,
        ),
    )

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "bench": "persist",
                "relations": N_RELATIONS,
                "explicit_per_relation": EXPLICIT_PER_RELATION,
                "deltas": N_DELTAS,
                "save_seconds": result["save_seconds"],
                "load_seconds": result["load_seconds"],
                "append_seconds": result["append_seconds"],
                "replay_seconds": result["replay_seconds"],
                "saves_per_sec": N_RELATIONS / result["save_seconds"],
                "loads_per_sec": N_RELATIONS / result["load_seconds"],
                "appends_per_sec": N_DELTAS / result["append_seconds"],
                "replays_per_sec": N_DELTAS / result["replay_seconds"],
                "recovery_clean": result["recovery_clean"],
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    assert result["round_trip_exact"], "snapshot round trip must be exact"
    assert not result["torn"]
    assert result["replay_applied"] == N_DELTAS
    assert result["recovery_clean"]
    assert result["recovery_replayed"] == N_DELTAS
