"""Ablation: successor histogram classes (MaxDiff, Compressed) vs this paper's.

The paper's practicality argument (Section 4) spawned cheaper heuristics in
the authors' SIGMOD'96 follow-up.  This bench positions them against the
classes studied here on self-join error and construction time across skews:
the expected picture is a quality ladder v-optimal serial ≤ {MaxDiff,
Compressed, end-biased} ≪ trivial, with all heuristics far cheaper to build
than the exhaustive (or even DP) serial optimum.
"""

from __future__ import annotations

import time

import numpy as np
from _reporting import record_report

from repro.core.biased import v_opt_bias_hist
from repro.core.serial import v_opt_hist_dp
from repro.core.successors import compressed_histogram, max_diff_histogram
from repro.data.zipf import zipf_frequencies
from repro.experiments.report import format_table

DOMAIN = 1000
BETA = 10

BUILDERS = {
    "v-opt serial (DP)": v_opt_hist_dp,
    "max-diff": max_diff_histogram,
    "compressed": compressed_histogram,
    "end-biased": v_opt_bias_hist,
}


def run_successors():
    rows = []
    for z in (0.5, 1.0, 2.0):
        freqs = zipf_frequencies(100_000, DOMAIN, z)
        exact = float(np.dot(freqs, freqs))
        row = [f"z={z:g}"]
        for name, builder in BUILDERS.items():
            start = time.perf_counter()
            hist = builder(freqs, BETA)
            seconds = time.perf_counter() - start
            row.extend([hist.self_join_error() / exact, seconds])
        rows.append(row)
    return rows


def test_ablation_successor_histograms(benchmark):
    rows = benchmark.pedantic(run_successors, rounds=1, iterations=1)

    headers = ["skew"]
    for name in BUILDERS:
        headers.extend([f"{name} rel.err", f"{name} s"])
    record_report(
        f"Ablation — successor histogram classes (M={DOMAIN}, beta={BETA}): "
        "relative self-join error and build time",
        format_table(headers, rows, precision=5),
    )

    for row in rows:
        serial_err, serial_s = row[1], row[2]
        maxdiff_err, maxdiff_s = row[3], row[4]
        compressed_err, _ = row[5], row[6]
        end_biased_err, _ = row[7], row[8]
        # The serial optimum lower-bounds every serial heuristic.
        assert serial_err <= maxdiff_err + 1e-12
        assert serial_err <= compressed_err + 1e-12
        assert serial_err <= end_biased_err + 1e-12
        # And the heuristics build much faster than the DP.
        assert maxdiff_s < serial_s
