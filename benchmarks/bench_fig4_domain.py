"""Figure 4: self-join σ versus join-domain size (β=5, z=1, T=1000).

Paper shape: error rises just beyond M=5 (five buckets stop sufficing),
peaks, then falls as growing M at fixed T drives the distribution toward
uniform; serial/end-biased dominate throughout.
"""

from __future__ import annotations

from _reporting import record_report

from repro.experiments.config import SelfJoinExperimentConfig
from repro.experiments.report import format_series
from repro.experiments.selfjoin import HistogramType, sweep_domain_size

CONFIG = SelfJoinExperimentConfig(
    domain_sweep=(5, 10, 20, 30, 50, 75, 100, 150, 200, 300),
    buckets=5,
    trials=50,
    seed=1995,
)


def test_fig4_sigma_vs_domain_size(benchmark):
    points = benchmark.pedantic(lambda: sweep_domain_size(CONFIG), rounds=1, iterations=1)

    series = {
        t.value: {p.parameter: p.sigmas[t] for p in points if t in p.sigmas}
        for t in HistogramType
    }
    record_report(
        "Figure 4 — σ vs join-domain size M (self-join, beta=5, z=1, T=1000)",
        format_series("M", series, precision=1),
    )

    by_m = {p.parameter: p.sigmas for p in points}
    # M = 5 with five buckets is exact for the frequency-based histograms.
    assert by_m[5][HistogramType.SERIAL] < 1e-6
    # Error rises past M=5, then decays toward uniformity at large M.
    serial = [p.sigmas[HistogramType.SERIAL] for p in points]
    peak = max(serial)
    assert serial[-1] < peak
    assert peak > serial[0]
    # Ranking holds at every M.
    for p in points:
        assert p.sigmas[HistogramType.SERIAL] <= p.sigmas[HistogramType.END_BIASED] + 1e-9
        assert p.sigmas[HistogramType.END_BIASED] <= p.sigmas[HistogramType.TRIVIAL] + 1e-9
