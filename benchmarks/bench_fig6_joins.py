"""Figure 6: mean relative error E[|S−S'|/S] versus number of joins (β=5).

Setup follows Section 5.2: join domains of 10 values (interior relations
carry 100-entry frequency sets), per-relation Zipf skews drawn from the
low / mixed / high-skew grids, errors averaged over twenty random
arrangements of the frequency sets (and over several sampled queries).

Paper shape: errors grow with the number of joins for every histogram and
every class; high skew ≫ mixed ≫ low; trivial is off the chart for all but
the low-skew class; serial and end-biased stay close to each other.
"""

from __future__ import annotations

from _reporting import record_report

from repro.experiments.chains import sweep_joins
from repro.experiments.config import ChainExperimentConfig
from repro.experiments.propagation import fit_error_growth
from repro.experiments.report import format_series, format_table
from repro.experiments.selfjoin import HistogramType
from repro.queries.workload import QueryClass

CONFIG = ChainExperimentConfig(
    join_sweep=(1, 2, 3, 4, 5, 6, 7, 8),
    buckets=5,
    permutations=20,
    queries_per_class=5,
    seed=1995,
)


def test_fig6_error_vs_joins(benchmark):
    points = benchmark.pedantic(lambda: sweep_joins(CONFIG), rounds=1, iterations=1)

    for query_class in QueryClass:
        class_points = [p for p in points if p.query_class is query_class]
        series = {
            t.value: {p.parameter: p.errors[t] for p in class_points}
            for t in class_points[0].errors
        }
        record_report(
            f"Figure 6 — E[|S−S'|/S] vs number of joins (beta=5, {query_class.value})",
            format_series("joins", series, precision=4),
        )

    fits = fit_error_growth(points)
    record_report(
        "Figure 6 analysis — fitted per-join error growth factor "
        "(the exponential propagation of reference [10])",
        format_table(
            ["class", "histogram", "growth/join", "R²"],
            [
                [f.query_class.value, f.histogram_type.value, f.growth_factor, f.r_squared]
                for f in fits
            ],
            precision=3,
        ),
    )

    by_class = {
        c: [p for p in points if p.query_class is c] for c in QueryClass
    }
    # Errors grow with join count (compare endpoints; individual steps are noisy).
    for query_class, class_points in by_class.items():
        for t in (HistogramType.SERIAL, HistogramType.END_BIASED, HistogramType.TRIVIAL):
            assert class_points[-1].errors[t] > class_points[0].errors[t] * 0.5
        assert (
            class_points[-1].errors[HistogramType.TRIVIAL]
            > class_points[0].errors[HistogramType.TRIVIAL]
        )
    # High skew is much harder than low skew at the longest chain.
    assert (
        by_class[QueryClass.HIGH_SKEW][-1].errors[HistogramType.END_BIASED]
        > by_class[QueryClass.LOW_SKEW][-1].errors[HistogramType.END_BIASED]
    )
    # Trivial is far worse than the optimal families on high skew.
    high_last = by_class[QueryClass.HIGH_SKEW][-1]
    assert high_last.errors[HistogramType.TRIVIAL] > 5 * high_last.errors[HistogramType.END_BIASED]
