"""Network front-end throughput: probes/sec and batch latency over loopback.

Drives the asyncio estimation server with 1, 8, and 64 concurrent sync
SDK clients (one thread each, the supported concurrency model) submitting
mixed equality/range batches, and records probes/sec plus p50/p99 batch
latency per concurrency level into ``benchmarks/results/BENCH_net.json``.

Smoke-friendly: ``REPRO_BENCH_NET_BATCHES`` caps the per-client batch
count so CI can run the full concurrency ladder in seconds.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from time import perf_counter

import numpy as np
from _reporting import record_report

from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.relation import Relation
from repro.experiments.report import format_table
from repro.net import EstimationClient, serve_in_thread
from repro.serve import EqualityProbe, EstimationService, RangeProbe
from repro.util.rng import derive_rng

N_RELATIONS = 4
TOTAL = 4000
DOMAIN = 100
BATCH_PROBES = 500
CONCURRENCY_LEVELS = (1, 8, 64)
BATCHES_PER_CLIENT = int(os.environ.get("REPRO_BENCH_NET_BATCHES", "20"))
RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_net.json"


def build_service(gen):
    catalog = StatsCatalog()
    for index in range(N_RELATIONS):
        freqs = quantize_to_integers(
            zipf_frequencies(TOTAL, DOMAIN, 0.5 + 0.4 * index)
        )
        column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
        gen.shuffle(column)
        relation = Relation.from_columns(f"R{index}", {"a": column})
        analyze_relation(relation, "a", catalog, kind="end-biased", buckets=8)
    return EstimationService(catalog, name="bench-net")


def build_batch(gen):
    probes = []
    for _ in range(BATCH_PROBES):
        relation = f"R{gen.integers(N_RELATIONS)}"
        if gen.random() < 0.6:
            probes.append(EqualityProbe(relation, "a", int(gen.integers(DOMAIN))))
        else:
            low, high = sorted(int(v) for v in gen.integers(0, DOMAIN, size=2))
            probes.append(RangeProbe(relation, "a", low, high))
    return probes


def _drive_client(address, probes, latencies, failures):
    host, port = address
    try:
        with EstimationClient(host, port) as client:
            for _ in range(BATCHES_PER_CLIENT):
                started = perf_counter()
                out = client.estimate_batch(probes)
                latencies.append(perf_counter() - started)
                assert out.shape == (len(probes),)
    except Exception as exc:  # collected, not swallowed: the test asserts
        failures.append(exc)


def _run_level(address, probes, clients):
    latencies: list[float] = []
    failures: list[Exception] = []
    threads = [
        threading.Thread(
            target=_drive_client, args=(address, probes, latencies, failures)
        )
        for _ in range(clients)
    ]
    started = perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = perf_counter() - started
    if failures:
        raise failures[0]
    total_probes = clients * BATCHES_PER_CLIENT * BATCH_PROBES
    lat = np.asarray(sorted(latencies))
    return {
        "clients": clients,
        "batches": clients * BATCHES_PER_CLIENT,
        "probes": total_probes,
        "seconds": elapsed,
        "probes_per_sec": total_probes / elapsed,
        "p50_batch_seconds": float(np.quantile(lat, 0.50)),
        "p99_batch_seconds": float(np.quantile(lat, 0.99)),
    }


def run_net_throughput():
    gen = derive_rng(1995)
    service = build_service(gen)
    probes = build_batch(gen)
    # Warm the compiled-table cache so the first client doesn't pay it.
    service.estimate_batch(probes[:50])
    levels = []
    with serve_in_thread(service, name="bench-net") as handle:
        for clients in CONCURRENCY_LEVELS:
            levels.append(_run_level(handle.address, probes, clients))
    return {"levels": levels, "stats": service.stats()}


def test_net_throughput(benchmark):
    result = benchmark.pedantic(run_net_throughput, rounds=1, iterations=1)
    levels = result["levels"]

    record_report(
        f"Network serving throughput — {BATCH_PROBES}-probe batches, "
        f"{BATCHES_PER_CLIENT} per client, sync SDK over loopback",
        format_table(
            ["clients", "probes/sec", "p50 batch (s)", "p99 batch (s)"],
            [
                [
                    level["clients"],
                    level["probes_per_sec"],
                    level["p50_batch_seconds"],
                    level["p99_batch_seconds"],
                ]
                for level in levels
            ],
            precision=4,
        ),
    )

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "bench": "net_throughput",
                "batch_probes": BATCH_PROBES,
                "batches_per_client": BATCHES_PER_CLIENT,
                "levels": levels,
            },
            indent=2,
        )
        + "\n"
    )

    assert [level["clients"] for level in levels] == list(CONCURRENCY_LEVELS)
    # Every batch at every level was answered in full.
    expected = sum(c * BATCHES_PER_CLIENT * BATCH_PROBES for c in CONCURRENCY_LEVELS)
    assert result["stats"].probes_served >= expected
    for level in levels:
        assert level["probes_per_sec"] > 0
        assert level["p50_batch_seconds"] <= level["p99_batch_seconds"]
