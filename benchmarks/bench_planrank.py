"""Plan-ranking study — the paper's closing open question, measured.

For 4-relation chain databases, all five bushy plan shapes are enumerated,
costed with each histogram kind, and compared with exact (counting-based)
plan costs.  Reported per kind: how often the estimated-best plan is truly
best, the true-cost regret of the choice, and the Spearman correlation of
the full plan rankings — both for uncorrelated and for skew-aligned
(correlated) join columns, where the Theorem 3.2 unbiasedness of the
trivial histogram no longer protects it.
"""

from __future__ import annotations

from _reporting import record_report

from repro.experiments.planrank import plan_ranking_study
from repro.experiments.report import format_table

DATABASES = 25


def run_study():
    independent = plan_ranking_study(databases=DATABASES, rng=1995, correlated=False)
    correlated = plan_ranking_study(databases=DATABASES, rng=1995, correlated=True)
    return independent, correlated


def test_plan_ranking(benchmark):
    independent, correlated = benchmark.pedantic(run_study, rounds=1, iterations=1)

    for label, results in (("random arrangements", independent), ("correlated", correlated)):
        record_report(
            f"Plan ranking (open question) — {DATABASES} four-relation chain "
            f"databases, {label}",
            format_table(
                ["histogram kind", "best-plan hit rate", "mean regret", "Spearman rho"],
                [
                    [r.kind, r.hit_rate, r.mean_regret, r.mean_rank_correlation]
                    for r in results
                ],
                precision=3,
            ),
        )

    by_kind_ind = {r.kind: r for r in independent}
    by_kind_cor = {r.kind: r for r in correlated}
    # Informed histograms rank plans at least as faithfully as trivial.
    for results in (by_kind_ind, by_kind_cor):
        assert (
            results["end-biased"].mean_rank_correlation
            >= results["trivial"].mean_rank_correlation - 1e-9
        )
        assert results["end-biased"].mean_regret <= results["trivial"].mean_regret + 1e-9
    # Regret is bounded below by 1 by construction.
    assert all(r.mean_regret >= 1.0 - 1e-9 for r in independent + correlated)
