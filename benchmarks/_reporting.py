"""Shared result-reporting registry for the benchmark harness.

Benchmarks register the tables/series they regenerate; the conftest's
``pytest_terminal_summary`` hook prints everything after the benchmark
timings, so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
captures both the timings and the reproduced figures.
"""

from __future__ import annotations

_REPORTS: list[tuple[str, str]] = []


def record_report(title: str, body: str) -> None:
    """Queue one rendered table for the end-of-session summary."""
    _REPORTS.append((title, body))


def drain_reports() -> list[tuple[str, str]]:
    """Return and clear all queued reports."""
    global _REPORTS
    reports, _REPORTS = _REPORTS, []
    return reports
