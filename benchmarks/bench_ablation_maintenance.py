"""Ablation: histogram staleness under updates (Section 2.3's warning).

"Delaying the propagation of database updates to the histogram may
introduce additional errors."  This bench drives an update stream at a
frozen, an incrementally-maintained, and a periodically-rebuilt end-biased
histogram and tracks the self-join estimation error of each.
"""

from __future__ import annotations

import numpy as np
from _reporting import record_report

from repro.core.frequency import AttributeDistribution
from repro.util.rng import derive_rng
from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.maint.update import MaintainedEndBiased, MaintenancePolicy
from repro.experiments.report import format_table

DOMAIN = 50
TOTAL = 5_000
BETA = 8
BATCHES = 8
BATCH_SIZE = 250


def run_maintenance():
    freqs = quantize_to_integers(zipf_frequencies(TOTAL, DOMAIN, 1.2)).astype(float)
    values = list(range(DOMAIN))
    base = AttributeDistribution(values, freqs)

    frozen = MaintainedEndBiased(base, BETA)
    maintained = MaintainedEndBiased(base, BETA)
    rebuilt = MaintainedEndBiased(
        base, BETA, policy=MaintenancePolicy(update_fraction=0.04)
    )
    frozen_snapshot = frozen.self_join_estimate()

    truth = dict(zip(values, freqs))
    gen = derive_rng(3)
    # Skew-shifting stream: cold values heat up, so stale stats go wrong.
    cold = sorted(values, key=lambda v: truth[v])[:10]
    rows = []
    for batch in range(1, BATCHES + 1):
        for _ in range(BATCH_SIZE):
            value = cold[gen.integers(0, len(cold))]
            truth[value] += 1
            maintained.insert(value)
            rebuilt.insert(value)
        if rebuilt.needs_rebuild():
            rebuilt.rebuild(AttributeDistribution(values, list(truth.values())))
        true_size = sum(f * f for f in truth.values())
        rows.append(
            (
                batch * BATCH_SIZE,
                abs(true_size - frozen_snapshot) / true_size,
                abs(true_size - maintained.self_join_estimate()) / true_size,
                abs(true_size - rebuilt.self_join_estimate()) / true_size,
            )
        )
    return rows


def test_ablation_maintenance_drift(benchmark):
    rows = benchmark.pedantic(run_maintenance, rounds=1, iterations=1)

    record_report(
        "Ablation — relative self-join error under an update stream "
        f"(M={DOMAIN}, beta={BETA}): frozen vs maintained vs rebuild-on-drift",
        format_table(
            ["updates", "frozen", "incremental", "rebuild policy"],
            [list(r) for r in rows],
            precision=4,
        ),
    )

    last = rows[-1]
    # A frozen histogram drifts worst; incremental maintenance helps;
    # drift-triggered rebuilds track the data best.
    assert last[1] > last[2] >= 0.0
    assert last[3] <= last[2] + 1e-9
    # Frozen error grows monotonically with the stream (endpoints).
    assert rows[-1][1] > rows[0][1]
