"""Benchmark-session conftest: prints and archives every regenerated table."""

from __future__ import annotations

import re
from pathlib import Path

from _reporting import drain_reports

#: Rendered tables are also archived here, one text file per report.
RESULTS_DIR = Path(__file__).parent / "results"


def _slug(title: str) -> str:
    slug = re.sub(r"[^a-zA-Z0-9]+", "-", title.lower()).strip("-")
    return slug[:80] or "report"


def pytest_terminal_summary(terminalreporter):
    reports = drain_reports()
    if not reports:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for title, body in reports:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", title)
        for line in body.splitlines():
            terminalreporter.write_line(line)
        (RESULTS_DIR / f"{_slug(title)}.txt").write_text(f"{title}\n\n{body}\n")
    terminalreporter.write_line("")
    terminalreporter.write_line(f"(tables archived under {RESULTS_DIR})")
