"""Serving-layer benchmark: scalar loop vs batch vs pre-grouped frame.

The batched interface exists to amortize per-probe Python dispatch:
:meth:`~repro.serve.EstimationService.estimate_batch` groups probes by
(relation, attribute, kind) and answers each group with one vectorized
sweep over the compiled tables.  Since the hot path went array-native,
the grouping walk itself is the remaining Python-object cost — callers
with a stable workload skip even that by pre-building a
:class:`~repro.serve.ProbeFrame` once and re-answering it.

This bench drives 10k mixed equality/range probes (plus a sprinkle of
joins) through all three arms — scalar loop, ``estimate_batch(list)``,
``estimate_batch(frame)`` — interleaved round by round (the
``bench_obs_overhead`` pattern: background-load drift hits every arm
equally) and checks the serving guarantees:

* all three arms are **bit-identical** (they read the same compiled
  tables through the same code paths);
* the batch path amortizes dispatch (``MIN_LIST_SPEEDUP``) and the frame
  path additionally amortizes grouping (``MIN_FRAME_SPEEDUP``,
  ``MIN_FRAME_VS_LIST``);
* repeated batches never recompile — the table-miss counter stays flat;
* a poisoned batch (unknown relations sprinkled in) still completes under
  the default ``on_error`` policy, with healthy positions bit-identical to
  the clean run and the degraded counter accounting for the poison.

Medians land in ``benchmarks/results/BENCH_serve.json`` (alongside the
pre-vectorization in-tree reference) so the speedup is tracked across
revisions; CI's perf job gates on this file.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path
from time import perf_counter

import numpy as np
from _reporting import record_report

from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.relation import Relation
from repro.experiments.report import format_table
from repro.serve import (
    EqualityProbe,
    EstimationService,
    JoinProbe,
    ProbeFrame,
    RangeProbe,
)
from repro.util.rng import derive_rng

N_RELATIONS = 4
TOTAL = 4000
DOMAIN = 100
N_PROBES = 10_000
#: Interleaved measurement rounds per arm (medians are reported).
ROUNDS = 9
#: estimate_batch(list) vs the scalar loop.
MIN_LIST_SPEEDUP = 10.0
#: estimate_batch(prebuilt frame) vs the scalar loop.
MIN_FRAME_SPEEDUP = 40.0
#: The frame arm must beat the list arm by enough to prove the answer
#: sweep itself (not just dispatch amortization) went array-native.
#: Measured on the reference box: list ≈5.5ms, frame ≈1.1–1.3ms (≈4–5x),
#: vs the 6.5ms pre-vectorization in-tree batch (≈5x+).
MIN_FRAME_VS_LIST = 3.0
#: The batch seconds recorded in-tree before the hot path went
#: array-native (benchmarks/results/serving-layer-…txt) — kept in the
#: JSON so the cross-revision speedup stays visible.  Absolute seconds
#: are machine-specific, so no gate compares against this directly.
RECORDED_BASELINE_BATCH_SECONDS = 0.0065
RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_serve.json"


def zipf_column(total, domain, z, gen):
    freqs = quantize_to_integers(zipf_frequencies(total, domain, z))
    column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
    gen.shuffle(column)
    return column


def build_service(gen):
    catalog = StatsCatalog()
    kinds = ("end-biased", "serial")
    for index in range(N_RELATIONS):
        name = f"R{index}"
        relation = Relation.from_columns(
            name, {"a": zipf_column(TOTAL, DOMAIN, 0.5 + 0.4 * index, gen)}
        )
        analyze_relation(
            relation, "a", catalog, kind=kinds[index % len(kinds)], buckets=8
        )
    return EstimationService(catalog)


def build_probes(gen):
    probes = []
    for _ in range(N_PROBES):
        roll = gen.random()
        relation = f"R{gen.integers(N_RELATIONS)}"
        if roll < 0.6:
            # Probe past the domain edge too: misses exercise the fallback.
            probes.append(EqualityProbe(relation, "a", int(gen.integers(DOMAIN + 10))))
        elif roll < 0.995:
            low, high = sorted(int(v) for v in gen.integers(0, DOMAIN, size=2))
            probes.append(RangeProbe(relation, "a", low, high))
        else:
            other = f"R{gen.integers(N_RELATIONS)}"
            probes.append(JoinProbe(relation, "a", other, "a"))
    return probes


def scalar_loop(service, probes):
    out = np.empty(len(probes), dtype=np.float64)
    for position, probe in enumerate(probes):
        if isinstance(probe, EqualityProbe):
            out[position] = service.estimate_equality(
                probe.relation, probe.attribute, probe.value
            )
        elif isinstance(probe, RangeProbe):
            out[position] = service.estimate_range(
                probe.relation,
                probe.attribute,
                probe.low,
                probe.high,
                include_low=probe.include_low,
                include_high=probe.include_high,
            )
        else:
            out[position] = service.estimate_join(
                probe.left_relation,
                probe.left_attribute,
                probe.right_relation,
                probe.right_attribute,
            )
    return out


def run_serve_batch():
    gen = derive_rng(1995)
    service = build_service(gen)
    probes = build_probes(gen)

    # Warm the compiled-table cache so no arm pays compile time.
    service.estimate_batch(probes[:100])
    misses_after_warmup = service.stats().table_misses

    frame = ProbeFrame.from_probes(probes)

    scalar_times, list_times, frame_times, build_times = [], [], [], []
    scalar = batched = framed = None
    for round_index in range(ROUNDS):
        # The scalar loop is ~50x the batch time; three rounds bound the
        # bench's wall clock while still damping jitter on its median.
        if round_index < 3:
            started = perf_counter()
            scalar = scalar_loop(service, probes)
            scalar_times.append(perf_counter() - started)

        started = perf_counter()
        batched = service.estimate_batch(probes)
        list_times.append(perf_counter() - started)

        started = perf_counter()
        framed = service.estimate_batch(frame)
        frame_times.append(perf_counter() - started)

        started = perf_counter()
        ProbeFrame.from_probes(probes)
        build_times.append(perf_counter() - started)

    # Fault-isolation smoke: poison every 100th slot with an unknown
    # relation; the batch must still complete with the healthy positions
    # unchanged and the poison accounted for in the degraded counter.
    poisoned = list(probes)
    poison_positions = range(0, len(poisoned), 100)
    for position in poison_positions:
        poisoned[position] = EqualityProbe("UNANALYZED", "a", position)
    degraded_before = service.stats().degraded_probes
    poisoned_out = service.estimate_batch(poisoned)
    degraded_delta = service.stats().degraded_probes - degraded_before

    return {
        "scalar": scalar,
        "batched": batched,
        "framed": framed,
        "poisoned_out": poisoned_out,
        "poison_positions": list(poison_positions),
        "degraded_delta": degraded_delta,
        "scalar_seconds": statistics.median(scalar_times),
        "list_seconds": statistics.median(list_times),
        "frame_seconds": statistics.median(frame_times),
        "build_seconds": statistics.median(build_times),
        "misses_after_warmup": misses_after_warmup,
        "misses_final": service.stats().table_misses,
    }


def test_serve_batch_speedup(benchmark):
    result = benchmark.pedantic(run_serve_batch, rounds=1, iterations=1)
    scalar_s = result["scalar_seconds"]
    list_s = result["list_seconds"]
    frame_s = result["frame_seconds"]
    list_speedup = scalar_s / list_s
    frame_speedup = scalar_s / frame_s
    frame_vs_list = list_s / frame_s

    record_report(
        f"Serving layer — {N_PROBES} mixed probes over {N_RELATIONS} relations: "
        "scalar loop vs estimate_batch vs prebuilt frame",
        format_table(
            ["path", "seconds", "probes/sec", "speedup vs scalar"],
            [
                ["scalar loop", scalar_s, N_PROBES / scalar_s, 1.0],
                ["estimate_batch(list)", list_s, N_PROBES / list_s, list_speedup],
                ["estimate_batch(frame)", frame_s, N_PROBES / frame_s, frame_speedup],
                [
                    "frame build (one-time)",
                    result["build_seconds"],
                    N_PROBES / result["build_seconds"],
                    float("nan"),
                ],
            ],
            precision=4,
        ),
    )

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "bench": "serve_batch",
                "probes": N_PROBES,
                "relations": N_RELATIONS,
                "rounds": ROUNDS,
                "scalar_seconds": scalar_s,
                "list_batch_seconds": list_s,
                "frame_batch_seconds": frame_s,
                "frame_build_seconds": result["build_seconds"],
                "list_speedup_vs_scalar": list_speedup,
                "frame_speedup_vs_scalar": frame_speedup,
                "frame_speedup_vs_list": frame_vs_list,
                "recorded_baseline_batch_seconds": RECORDED_BASELINE_BATCH_SECONDS,
                "frame_speedup_vs_recorded_baseline": (
                    RECORDED_BASELINE_BATCH_SECONDS / frame_s
                ),
                "gates": {
                    "min_list_speedup": MIN_LIST_SPEEDUP,
                    "min_frame_speedup": MIN_FRAME_SPEEDUP,
                    "min_frame_vs_list": MIN_FRAME_VS_LIST,
                },
            },
            indent=2,
        )
        + "\n"
    )

    # Bit-identical answers: all arms read the same compiled tables.
    assert np.array_equal(result["scalar"], result["batched"])
    assert np.array_equal(result["batched"], result["framed"])
    # Repeated batches never recompile.
    assert result["misses_final"] == result["misses_after_warmup"]
    # Fault isolation: poisoned positions degrade to the documented 0.0
    # fallback, healthy positions stay bit-identical, counters account
    # for exactly the poison.
    poison = set(result["poison_positions"])
    assert result["degraded_delta"] == len(poison)
    for position, value in enumerate(result["poisoned_out"]):
        if position in poison:
            assert value == 0.0
        else:
            assert value == result["batched"][position]
    assert list_speedup >= MIN_LIST_SPEEDUP, (
        f"estimate_batch(list) only {list_speedup:.1f}x faster than the "
        f"scalar loop (needs {MIN_LIST_SPEEDUP:.0f}x)"
    )
    assert frame_speedup >= MIN_FRAME_SPEEDUP, (
        f"estimate_batch(frame) only {frame_speedup:.1f}x faster than the "
        f"scalar loop (needs {MIN_FRAME_SPEEDUP:.0f}x)"
    )
    assert frame_vs_list >= MIN_FRAME_VS_LIST, (
        f"prebuilt frame only {frame_vs_list:.1f}x faster than the list "
        f"path (needs {MIN_FRAME_VS_LIST:.0f}x) — the answer sweep is "
        "paying per-probe costs again"
    )
