"""Serving-layer benchmark: batched probes vs the scalar estimation loop.

The batched interface exists to amortize per-probe Python dispatch:
:meth:`~repro.serve.EstimationService.estimate_batch` groups probes by
(relation, attribute) and answers each group with one vectorized sweep
over the compiled tables.  This bench drives 10k mixed equality/range
probes (plus a sprinkle of joins) through both paths and checks the
three serving guarantees:

* the batch answer vector is **bit-identical** to the scalar loop
  (both paths read the same compiled tables);
* the batch path is at least an order of magnitude faster;
* repeated batches never recompile — the table-miss counter stays flat;
* a poisoned batch (unknown relations sprinkled in) still completes under
  the default ``on_error`` policy, with healthy positions bit-identical to
  the clean run and the degraded counter accounting for the poison.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np
from _reporting import record_report

from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.relation import Relation
from repro.experiments.report import format_table
from repro.serve import EqualityProbe, EstimationService, JoinProbe, RangeProbe
from repro.util.rng import derive_rng

N_RELATIONS = 4
TOTAL = 4000
DOMAIN = 100
N_PROBES = 10_000
MIN_SPEEDUP = 10.0


def zipf_column(total, domain, z, gen):
    freqs = quantize_to_integers(zipf_frequencies(total, domain, z))
    column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
    gen.shuffle(column)
    return column


def build_service(gen):
    catalog = StatsCatalog()
    kinds = ("end-biased", "serial")
    for index in range(N_RELATIONS):
        name = f"R{index}"
        relation = Relation.from_columns(
            name, {"a": zipf_column(TOTAL, DOMAIN, 0.5 + 0.4 * index, gen)}
        )
        analyze_relation(
            relation, "a", catalog, kind=kinds[index % len(kinds)], buckets=8
        )
    return EstimationService(catalog)


def build_probes(gen):
    probes = []
    for _ in range(N_PROBES):
        roll = gen.random()
        relation = f"R{gen.integers(N_RELATIONS)}"
        if roll < 0.6:
            # Probe past the domain edge too: misses exercise the fallback.
            probes.append(EqualityProbe(relation, "a", int(gen.integers(DOMAIN + 10))))
        elif roll < 0.995:
            low, high = sorted(int(v) for v in gen.integers(0, DOMAIN, size=2))
            probes.append(RangeProbe(relation, "a", low, high))
        else:
            other = f"R{gen.integers(N_RELATIONS)}"
            probes.append(JoinProbe(relation, "a", other, "a"))
    return probes


def scalar_loop(service, probes):
    out = np.empty(len(probes), dtype=np.float64)
    for position, probe in enumerate(probes):
        if isinstance(probe, EqualityProbe):
            out[position] = service.estimate_equality(
                probe.relation, probe.attribute, probe.value
            )
        elif isinstance(probe, RangeProbe):
            out[position] = service.estimate_range(
                probe.relation,
                probe.attribute,
                probe.low,
                probe.high,
                include_low=probe.include_low,
                include_high=probe.include_high,
            )
        else:
            out[position] = service.estimate_join(
                probe.left_relation,
                probe.left_attribute,
                probe.right_relation,
                probe.right_attribute,
            )
    return out


def run_serve_batch():
    gen = derive_rng(1995)
    service = build_service(gen)
    probes = build_probes(gen)

    # Warm the compiled-table cache so neither path pays compile time.
    service.estimate_batch(probes[:100])
    misses_after_warmup = service.stats().table_misses

    started = perf_counter()
    scalar = scalar_loop(service, probes)
    scalar_seconds = perf_counter() - started

    started = perf_counter()
    batched = service.estimate_batch(probes)
    batch_seconds = perf_counter() - started

    repeat = service.estimate_batch(probes)

    # Fault-isolation smoke: poison every 100th slot with an unknown
    # relation; the batch must still complete with the healthy positions
    # unchanged and the poison accounted for in the degraded counter.
    poisoned = list(probes)
    poison_positions = range(0, len(poisoned), 100)
    for position in poison_positions:
        poisoned[position] = EqualityProbe("UNANALYZED", "a", position)
    degraded_before = service.stats().degraded_probes
    poisoned_out = service.estimate_batch(poisoned)
    degraded_delta = service.stats().degraded_probes - degraded_before

    return {
        "scalar": scalar,
        "batched": batched,
        "repeat": repeat,
        "poisoned_out": poisoned_out,
        "poison_positions": list(poison_positions),
        "degraded_delta": degraded_delta,
        "scalar_seconds": scalar_seconds,
        "batch_seconds": batch_seconds,
        "misses_after_warmup": misses_after_warmup,
        "misses_final": service.stats().table_misses,
    }


def test_serve_batch_speedup(benchmark):
    result = benchmark.pedantic(run_serve_batch, rounds=1, iterations=1)
    speedup = result["scalar_seconds"] / result["batch_seconds"]

    record_report(
        f"Serving layer — {N_PROBES} mixed probes over {N_RELATIONS} relations: "
        "scalar loop vs estimate_batch",
        format_table(
            ["path", "seconds", "probes/sec"],
            [
                [
                    "scalar loop",
                    result["scalar_seconds"],
                    N_PROBES / result["scalar_seconds"],
                ],
                [
                    "estimate_batch",
                    result["batch_seconds"],
                    N_PROBES / result["batch_seconds"],
                ],
                ["speedup", speedup, float("nan")],
            ],
            precision=4,
        ),
    )

    # Bit-identical answers: both paths read the same compiled tables.
    assert np.array_equal(result["scalar"], result["batched"])
    assert np.array_equal(result["batched"], result["repeat"])
    # Repeated batches never recompile.
    assert result["misses_final"] == result["misses_after_warmup"]
    # Fault isolation: poisoned positions degrade to the documented 0.0
    # fallback, healthy positions stay bit-identical, counters account
    # for exactly the poison.
    poison = set(result["poison_positions"])
    assert result["degraded_delta"] == len(poison)
    for position, value in enumerate(result["poisoned_out"]):
        if position in poison:
            assert value == 0.0
        else:
            assert value == result["batched"][position]
    assert speedup >= MIN_SPEEDUP, (
        f"estimate_batch only {speedup:.1f}x faster than the scalar loop"
    )
