"""Section 3.1 experiment: optimal biased pairs on arbitrary arrangements.

The paper reports that for 2-way joins of Zipf-distributed relations,
"in approximately 90% of all arrangements, the optimal histogram pair ...
has at least one of the two histograms be end-biased" and "in about 20% of
all arrangements, both histograms are end-biased".  This bench reruns the
study across several Zipf skew pairs, enumerating all arrangements of
six-value domains and solving each exactly.
"""

from __future__ import annotations

from _reporting import record_report

from repro.data.zipf import zipf_frequencies
from repro.experiments.arrangements import optimal_biased_pair_study
from repro.experiments.report import format_table

SKEW_PAIRS = [(0.5, 1.0), (1.0, 1.0), (1.0, 2.0), (2.0, 3.0)]
DOMAIN = 6
BUCKETS = 3


def run_study():
    results = []
    for z_left, z_right in SKEW_PAIRS:
        study = optimal_biased_pair_study(
            zipf_frequencies(1000, DOMAIN, z_left),
            zipf_frequencies(1000, DOMAIN, z_right),
            BUCKETS,
            max_arrangements=720,
            rng=0,
        )
        results.append(((z_left, z_right), study))
    return results


def test_sec31_arrangement_study(benchmark):
    results = benchmark.pedantic(run_study, rounds=1, iterations=1)

    rows = [
        [
            f"z=({z[0]:g},{z[1]:g})",
            study.arrangements,
            study.at_least_one_end_biased,
            study.both_end_biased,
            study.aligned_singletons,
        ]
        for z, study in results
    ]
    record_report(
        "Section 3.1 — fraction of arrangements whose optimal biased pair "
        "is (partly) end-biased (M=6, beta=3, all 720 arrangements)",
        format_table(
            ["skews", "arrangements", ">=1 end-biased", "both end-biased", "aligned"],
            rows,
            precision=3,
        ),
    )

    # Shape: a clear majority of arrangements have an end-biased member,
    # and 'both end-biased' is a substantial minority — matching the
    # paper's ~90% / ~20% qualitative finding.
    avg_one = sum(s.at_least_one_end_biased for _, s in results) / len(results)
    avg_both = sum(s.both_end_biased for _, s in results) / len(results)
    assert avg_one > 0.5
    assert 0.05 < avg_both < avg_one
