"""SQL demo: the whole reproduction behind a query interface.

Creates a small order-processing database, ANALYZEs it with end-biased
histograms (the paper's recommendation), and runs a workload through the
SQL front-end — each query showing the optimizer's estimate (EXPLAIN) next
to the true result size.

Run:  python examples/sql_demo.py
"""

import numpy as np

from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.sql import Database


def zipf_column(total, domain, z, rng):
    freqs = quantize_to_integers(zipf_frequencies(total, domain, z))
    column = [value for value, f in enumerate(freqs) for _ in range(int(f))]
    rng.shuffle(column)
    return column


def main():
    rng = np.random.default_rng(11)
    db = Database()
    db.create(
        "orders",
        {
            "cust": zipf_column(2000, 50, 1.5, rng),   # skewed: big customers
            "item": zipf_column(2000, 30, 0.8, rng),
            "qty": list(rng.integers(1, 10, 2000)),
        },
    )
    db.create(
        "customers",
        {"cust": list(range(50)), "region": [("east", "west", "north")[i % 3] for i in range(50)]},
    )
    db.create("items", {"item": zipf_column(600, 30, 1.0, rng)})
    analyzed = db.analyze(kind="end-biased", buckets=10)
    print(f"ANALYZE collected statistics for {analyzed} attributes\n")

    workload = [
        "SELECT * FROM orders WHERE cust = 0",
        "SELECT * FROM orders WHERE qty BETWEEN 3 AND 5",
        "SELECT * FROM orders WHERE item IN (0, 1, 2)",
        "SELECT * FROM orders o, customers c WHERE o.cust = c.cust AND c.region = 'east'",
        (
            "SELECT o.item FROM orders o, customers c, items i "
            "WHERE o.cust = c.cust AND o.item = i.item AND o.qty > 7"
        ),
    ]

    for sql in workload:
        estimate = db.estimate(sql)
        truth = db.execute(sql).cardinality
        error = abs(estimate - truth) / truth if truth else 0.0
        print(sql)
        print(f"  estimated {estimate:,.0f}   actual {truth:,}   rel.err {error:.1%}\n")

    print("EXPLAIN of the three-way join:")
    print(db.explain(workload[-1]).pretty())


if __name__ == "__main__":
    main()
