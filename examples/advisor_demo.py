"""Advisor demo: "how many buckets does this attribute need?"

Section 3.1's practical application of the error formula: "administrators
can determine the minimum number of buckets required for tolerable errors".
The demo profiles three very different distributions and asks the advisor
for the smallest end-biased histogram within a 1% relative self-join error.

Run:  python examples/advisor_demo.py
"""

from repro import advisory_report, minimum_buckets, zipf_frequencies
from repro.data.synthetic import reverse_zipf_frequencies, step_frequencies


def profile(name, freqs, tolerance=0.01):
    print(f"\n=== {name} ===")
    for row in advisory_report(freqs, [1, 2, 5, 10, 20], kind="end-biased"):
        print(f"  {row}")
    needed = minimum_buckets(freqs, tolerance, kind="end-biased")
    needed_serial = minimum_buckets(freqs, tolerance, kind="serial")
    print(
        f"  -> buckets for {tolerance:.0%} relative error: "
        f"end-biased needs {needed}, general serial needs {needed_serial}"
    )


def budget_allocation_demo():
    """Split one global catalog budget across attributes of mixed skew."""
    from repro.core.advisor import allocate_bucket_budget, optimal_error_for_buckets

    sets = {
        "near-uniform": zipf_frequencies(10_000, 200, 0.05),
        "moderate (z=1)": zipf_frequencies(10_000, 200, 1.0),
        "heavy (z=2.5)": zipf_frequencies(10_000, 200, 2.5),
    }
    budget = 24
    allocation = allocate_bucket_budget(list(sets.values()), budget)
    print(f"\n=== global budget of {budget} buckets across three attributes ===")
    for (name, freqs), buckets in zip(sets.items(), allocation):
        error = optimal_error_for_buckets(freqs, buckets)
        exact = float(sum(f * f for f in freqs))
        print(f"  {name:<16} -> {buckets:>2} buckets (rel.err {error / exact:.3%})")
    print("  The near-uniform attribute is starved in favour of the skewed ones.")


def main():
    # Near-uniform: the paper's example of "one or two buckets will suffice".
    profile("near-uniform (Zipf z=0.05)", zipf_frequencies(10_000, 200, 0.05))

    # Classic Zipf skew: a handful of univalued buckets does the job.
    profile("skewed (Zipf z=1.5)", zipf_frequencies(10_000, 200, 1.5))

    # Two-level step: once beta-1 covers the high step the error vanishes.
    profile(
        "step (10% hot values, 10x ratio)",
        step_frequencies(10_000, 200, high_fraction=0.1, ratio=10.0),
    )

    # Reverse Zipf — the Section 4.2 hard case for the sampling shortcut;
    # the advisor still works because it sees the full frequency set.
    profile("reverse Zipf (z=2)", reverse_zipf_frequencies(10_000, 200, 2.0))

    budget_allocation_demo()


if __name__ == "__main__":
    main()
