"""Real-life-style workload: the NBA player-statistics scenario (§5.1.2).

Loads the synthetic surrogate for the paper's NBA dataset, stores it in the
engine, ANALYZEs it, and answers a mixed selection/join workload with
histogram estimates checked against exact execution — including a range
query, which Section 6 reduces to a disjunctive equality selection.

Run:  python examples/nba_workload.py
"""

from repro.core.estimator import relative_error
from repro.data.realworld import nba_player_statistics
from repro.engine import Relation, StatsCatalog, analyze_relation
from repro.engine.operators import hash_join, select
from repro.optimizer import CardinalityEstimator


def main():
    seasons = nba_player_statistics(players=400)
    players = Relation.from_columns(
        "players",
        {
            "player_id": [s.player_id for s in seasons],
            "games": [s.games for s in seasons],
            "points": [s.points for s in seasons],
            "threes": [s.threes for s in seasons],
        },
    )
    # A second relation of season award votes, one row per vote, keyed by
    # the player's games-played count — so the join on games is skewed (the
    # common game counts of durable players dominate both sides).
    allstars = Relation.from_columns(
        "allstars",
        {"games": [s.games for s in seasons for _ in range(s.points // 400)]},
    )

    catalog = StatsCatalog()
    for attr in ("games", "points", "threes"):
        analyze_relation(players, attr, catalog, kind="end-biased", buckets=11)
    analyze_relation(allstars, "games", catalog, kind="end-biased", buckets=11)
    estimator = CardinalityEstimator(catalog)

    # A second catalog with serial histograms: better for range queries,
    # because every bucket stores its value list explicitly (Section 4.1).
    serial_catalog = StatsCatalog()
    analyze_relation(players, "games", serial_catalog, kind="serial", buckets=11)
    serial_estimator = CardinalityEstimator(serial_catalog)

    print("Q1: SELECT * FROM players WHERE threes = 0")
    true_q1 = sum(1 for s in seasons if s.threes == 0)
    est_q1 = estimator.equality_selection("players", "threes", 0)
    print(f"  true={true_q1}  estimated={est_q1:.0f}  "
          f"rel.err={relative_error(true_q1, est_q1):.1%}")
    print("  (zero-inflation puts the spike in a univalued bucket: exact)\n")

    print("Q2: SELECT * FROM players WHERE 70 <= games <= 82  (range, §6)")
    true_q2 = sum(1 for s in seasons if 70 <= s.games <= 82)
    est_q2_eb = estimator.range_selection("players", "games", low=70, high=82)
    est_q2_serial = serial_estimator.range_selection("players", "games", low=70, high=82)
    print(f"  true={true_q2}  end-biased estimate={est_q2_eb:.0f}  "
          f"serial estimate={est_q2_serial:.0f}")
    print("  (end-biased smears the tail into one average; the serial\n"
          "   histogram keeps per-bucket value lists and lands closer)\n")

    print("Q3: SELECT * FROM players p JOIN allstars a ON p.games = a.games")
    true_q3 = hash_join(players, allstars, "games", "games").cardinality
    est_q3 = estimator.join_cardinality("players", "games", "allstars", "games")
    entry_p = catalog.require("players", "games")
    entry_a = catalog.require("allstars", "games")
    uniform_q3 = estimator._uniform_join(entry_p, entry_a)
    print(f"  true={true_q3}  histogram estimate={est_q3:.0f}  "
          f"uniform assumption={uniform_q3:.0f}")
    print(f"  rel.err histogram={relative_error(true_q3, est_q3):.1%}  "
          f"uniform={relative_error(true_q3, uniform_q3):.1%}")
    print("  (value-aware histograms intersect the recorded domains and\n"
          "   match hot values exactly; the uniform model overcounts\n"
          "   because the two games domains only partially overlap)\n")

    print("Q4: self-join of players on games (the v-optimality criterion)")
    true_q4 = hash_join(players, players, "games", "games").cardinality
    entry = catalog.require("players", "games")
    est_q4 = entry.histogram.self_join_estimate()
    print(f"  true={true_q4}  estimated={est_q4:.0f}  "
          f"rel.err={relative_error(true_q4, est_q4):.1%}")


if __name__ == "__main__":
    main()
