"""Quickstart: build optimal histograms and estimate query result sizes.

Walks the paper's core loop end to end on synthetic Zipf data:

1. generate a frequency distribution (equation (1));
2. build the five histogram types of Section 5;
3. compare their self-join estimates against the exact size
   (Proposition 3.1);
4. show Theorem 3.3 in action — the same per-relation histograms estimate a
   join against a *different* relation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AttributeDistribution,
    equi_depth_histogram,
    equi_width_histogram,
    estimate_join,
    relative_error,
    self_join_size,
    trivial_histogram,
    v_opt_bias_hist,
    v_optimal_serial_histogram,
    zipf_frequencies,
)


def main():
    rng = np.random.default_rng(42)

    # A relation with T=1000 tuples over M=100 attribute values, Zipf z=1,
    # with frequencies randomly associated to values (no value/frequency
    # correlation — the realistic case the paper models).
    freqs = zipf_frequencies(total=1000, domain_size=100, z=1.0)
    dist = AttributeDistribution(range(100), rng.permutation(freqs))

    exact = self_join_size(dist.frequencies)
    print(f"exact self-join size: {exact:,.0f}\n")

    histograms = {
        "trivial (uniform assumption)": trivial_histogram(dist),
        "equi-width": equi_width_histogram(dist, 5),
        "equi-depth": equi_depth_histogram(dist, 5),
        "v-optimal end-biased (V-OptBiasHist)": v_opt_bias_hist(
            dist.frequencies, 5, values=dist.values
        ),
        "v-optimal serial (V-OptHist)": v_optimal_serial_histogram(
            dist.frequencies, 5, values=dist.values
        ),
    }

    print(f"{'histogram (5 buckets)':<40} {'estimate':>10} {'rel. error':>10}")
    for name, hist in histograms.items():
        approx = hist.approximate_frequencies()
        estimate = float(np.dot(approx, approx))
        print(f"{name:<40} {estimate:>10,.0f} {relative_error(exact, estimate):>10.2%}")

    # Theorem 3.3: the same histogram — chosen from the relation's own
    # frequency set via a *self-join* criterion — serves any join partner.
    partner_freqs = zipf_frequencies(total=800, domain_size=100, z=0.5)
    partner = AttributeDistribution(range(100), rng.permutation(partner_freqs))
    partner_hist = v_opt_bias_hist(partner.frequencies, 5, values=partner.values)

    true_join = dist.join_size(partner)
    est_join = estimate_join(
        histograms["v-optimal end-biased (V-OptBiasHist)"], partner_hist
    )
    print(
        f"\njoin against an unrelated relation: true={true_join:,.0f} "
        f"estimated={est_join:,.0f} "
        f"(rel. error {relative_error(true_join, est_join):.2%})"
    )
    print(
        "\nThe per-relation histograms were built without knowing the query "
        "or the partner relation — that is Theorem 3.3."
    )


if __name__ == "__main__":
    main()
