"""Optimizer demo: histogram quality decides join orders.

The paper's opening motivation: optimizers pick plans from estimated result
sizes, so bad histograms mean bad plans.  This demo builds a small
star-ish database with one badly skewed attribute, runs ANALYZE with the
trivial histogram and with the paper's recommended end-biased histogram,
lets a System-R-style dynamic-programming orderer pick plans under each
catalog, and replays both plans on the real data.

Run:  python examples/optimizer_demo.py
"""

import numpy as np

from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.engine import Relation, StatsCatalog, analyze_relation
from repro.optimizer import (
    CardinalityEstimator,
    JoinEdge,
    JoinGraph,
    optimal_join_order,
    plan_true_cost,
    plan_true_rows,
)


def zipf_column(total, domain, z, rng):
    freqs = quantize_to_integers(zipf_frequencies(total, domain, z))
    column = [value for value, f in enumerate(freqs) for _ in range(int(f))]
    rng.shuffle(column)
    return column


def main():
    rng = np.random.default_rng(7)

    orders = Relation.from_columns(
        "orders",
        {
            # Highly skewed customer column: a few customers dominate.
            "cust": zipf_column(1500, 40, 2.0, rng),
            "item": zipf_column(1500, 25, 0.3, rng),
        },
    )
    customers = Relation.from_columns(
        "customers", {"cust": list(range(40)) * 3}
    )
    items = Relation.from_columns("items", {"item": zipf_column(500, 25, 1.0, rng)})

    graph = JoinGraph(
        [orders, customers, items],
        [
            JoinEdge("customers", "cust", "orders", "cust"),
            JoinEdge("orders", "item", "items", "item"),
        ],
    )

    for kind in ("trivial", "end-biased"):
        catalog = StatsCatalog()
        for relation in (orders, customers, items):
            for attr in relation.schema.names:
                analyze_relation(relation, attr, catalog, kind=kind, buckets=8)
        estimator = CardinalityEstimator(catalog)
        plan = optimal_join_order(graph, estimator)
        true_rows = plan_true_rows(plan, graph)[plan]
        print(f"=== catalog histograms: {kind} ===")
        print(plan.pretty())
        print(
            f"estimated result rows: {plan.estimated_rows:,.0f}   "
            f"actual: {true_rows:,.0f}"
        )
        print(f"true cost of the chosen plan: {plan_true_cost(plan, graph):,.0f}\n")

    print(
        "With end-biased histograms the optimizer sees the skew in "
        "orders.cust and prices the plans accordingly; the trivial catalog "
        "works from averages only."
    )


if __name__ == "__main__":
    main()
