"""Maintenance demo: keeping an end-biased histogram fresh under updates.

Section 2.3 notes that delaying update propagation "may introduce
additional errors" but leaves schedules out of scope.  This demo implements
the natural policy for the end-biased layout: incremental counter updates,
a Space-Saving watch for values outgrowing the explicit set, and
drift-triggered rebuilds — and shows the error of a frozen histogram
running away while the maintained one tracks the data.

Run:  python examples/maintenance_demo.py
"""

import numpy as np

from repro.core.frequency import AttributeDistribution
from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.maint import MaintainedEndBiased, MaintenancePolicy


def main():
    rng = np.random.default_rng(1)
    domain = 40
    freqs = quantize_to_integers(zipf_frequencies(4000, domain, 1.3)).astype(float)
    values = list(range(domain))
    base = AttributeDistribution(values, freqs)

    frozen_estimate = MaintainedEndBiased(base, 8).self_join_estimate()
    maintained = MaintainedEndBiased(
        base, 8, policy=MaintenancePolicy(update_fraction=0.05)
    )

    truth = dict(zip(values, freqs))
    cold = sorted(values, key=lambda v: truth[v])[:8]
    rebuilds = 0

    print(f"{'updates':>8} {'frozen err':>12} {'maintained err':>15} {'rebuilds':>9}")
    for batch in range(1, 11):
        for _ in range(200):
            value = cold[rng.integers(0, len(cold))]
            truth[value] += 1
            maintained.insert(value)
        if maintained.needs_rebuild():
            maintained.rebuild(AttributeDistribution(values, list(truth.values())))
            rebuilds += 1
        true_size = sum(f * f for f in truth.values())
        frozen_err = abs(true_size - frozen_estimate) / true_size
        maintained_err = abs(true_size - maintained.self_join_estimate()) / true_size
        print(f"{batch * 200:>8} {frozen_err:>12.2%} {maintained_err:>15.2%} {rebuilds:>9}")

    print(
        "\nThe frozen histogram's error grows with every batch; the "
        "maintained one absorbs updates incrementally and rebuilds when the "
        "drift policy fires."
    )


if __name__ == "__main__":
    main()
