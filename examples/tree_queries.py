"""Tree queries demo: the paper's tensor generalisation in action.

Section 2.2 proves everything for chain queries and notes that arbitrary
tree queries need tensors but "its essence remains unchanged".  This demo
builds a star query (one fact-like hub joined with three dimension-like
leaves), shows the exact result size as a tensor contraction, and verifies
that the practical recipe — per-relation v-optimal histograms built from
frequency sets alone — keeps working on bushy shapes.

Run:  python examples/tree_queries.py
"""

import numpy as np

from repro.core.biased import v_opt_bias_hist
from repro.core.histogram import Histogram
from repro.core.serial import v_optimal_serial_histogram
from repro.queries.tree import make_zipf_star, random_tree_query


def compare(query, label, permutations=20, buckets=5, seed=0):
    gen = np.random.default_rng(seed)
    factories = {
        "trivial": lambda f: Histogram.single_bucket(f.frequencies),
        "end-biased": lambda f: v_opt_bias_hist(f.frequencies, min(buckets, f.size)),
        "serial": lambda f: v_optimal_serial_histogram(
            f.frequencies, min(buckets, f.size), method="dp"
        ),
    }
    histograms = {name: query.build_histograms(fac) for name, fac in factories.items()}
    sums = {name: 0.0 for name in factories}
    for _ in range(permutations):
        arrangement = query.sample_arrangement(gen)
        exact = query.exact_size(arrangement)
        for name, hists in histograms.items():
            estimate = query.estimate_size(arrangement, hists)
            sums[name] += abs(exact - estimate) / exact
    print(f"{label} ({query.num_joins} joins):")
    for name, total in sums.items():
        print(f"  {name:>11s}  E[|S-S'|/S] = {total / permutations:.4f}")
    print()


def main():
    # A 3-leaf star: the hub holds a 5x5x5 frequency tensor (125 cells).
    star = make_zipf_star(3, domain=5, z_values=[1.5, 1.0, 2.0, 0.5])
    arrangement = star.sample_arrangement(1)
    print(
        f"star hub tensor shape: {arrangement[0].shape}  "
        f"exact size of one arrangement: {star.exact_size(arrangement):,.0f}\n"
    )
    compare(star, "star query, mixed skews")

    # Random tree shapes: chains, stars, and everything between.
    for seed in (3, 4):
        tree = random_tree_query(5, domain=4, rng=seed)
        degrees = [tree.degree(i) for i in range(tree.num_relations)]
        compare(tree, f"random tree (degrees {degrees})", seed=seed)

    print(
        "Same conclusion as the chain experiments: frequency-set-only\n"
        "v-optimal histograms (Theorem 3.3) transfer to arbitrary tree shapes."
    )


if __name__ == "__main__":
    main()
